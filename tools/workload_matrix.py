#!/usr/bin/env python3
"""Run the conformance battery over every registered workload (CI gate).

Usage::

    PYTHONPATH=src python tools/workload_matrix.py [--report FILE]
    PYTHONPATH=src python tools/workload_matrix.py --key trace-replay

Iterates :func:`repro.workloads.conformance.conformance_keys` — so a
workload registered after this tool shipped is still covered with no
edits — runs the four-check battery (smoke, seed stability, config
round trip, constant-memory streaming) per key, prints one status line
each, and exits non-zero when any workload fails.  ``--report`` writes
the full per-workload check map as JSON for the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.workloads.conformance import conformance_keys, run_conformance

__all__ = ["main", "run_matrix"]


def run_matrix(only: str | None = None) -> list:
    """Battery reports for every registered workload key."""
    reports = []
    for key in conformance_keys():
        if only is not None and key != only:
            continue
        report = run_conformance(key)
        status = "ok" if report.passed else "FAIL"
        print(
            f"  {status:<4} {key:<18} "
            f"hit_ratio={report.hit_ratio:6.2f}  "
            f"mem_delta={report.memory_delta:>7d}B  "
            f"checks={'/'.join(k for k, v in sorted(report.checks.items()) if v)}"
        )
        if not report.passed:
            for failure in report.failures:
                print(f"       - {failure}")
        reports.append(report)
    return reports


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--key",
        default=None,
        help="restrict the matrix to one workload key",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the per-workload JSON report here",
    )
    args = parser.parse_args(argv)

    print("workload conformance matrix:")
    reports = run_matrix(args.key)
    failed = [r for r in reports if not r.passed]

    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "workloads": [r.as_dict() for r in reports],
            "total": len(reports),
            "failed": len(failed),
        }
        args.report.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {args.report}")

    print(
        f"{len(reports)} workloads, {len(reports) - len(failed)} passed, "
        f"{len(failed)} failed"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
