#!/usr/bin/env python3
"""Fill EXPERIMENTS.md's ``{FIGn}`` placeholders from results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/fill_experiments.py

Keeps a template copy in ``tools/EXPERIMENTS.template.md`` the first time
so the fill is repeatable after future benchmark runs.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TEMPLATE = ROOT / "tools" / "EXPERIMENTS.template.md"
TARGET = ROOT / "EXPERIMENTS.md"
RESULTS = ROOT / "results"

PLACEHOLDERS = {
    "FIG2": "fig2_cache_size.txt",
    "FIG3": "fig3_skewness.txt",
    "FIG4": "fig4_access_range.txt",
    "FIG5": "fig5_group_size.txt",
    "FIG6": "fig6_update_rate.txt",
    "FIG7": "fig7_scalability.txt",
    "FIG8": "fig8_disconnection.txt",
    "FIGLOSS": "fig_link_loss.txt",
    "FIGPOLICY": "fig_peer_policy.txt",
    "FIGWORKLOAD": "fig_workload.txt",
}


def fill(template: Path, target: Path, results: Path) -> list:
    """Substitute placeholders; returns the list of missing results files."""
    source = template if template.exists() else target
    text = source.read_text()
    if not re.search(r"\{FIG\d\}", text):
        raise ValueError("no placeholders found; is the template gone?")
    if not template.exists():
        template.parent.mkdir(exist_ok=True)
        template.write_text(text)
    missing = []
    for key, filename in PLACEHOLDERS.items():
        path = results / filename
        if not path.exists():
            missing.append(filename)
            continue
        text = text.replace("{" + key + "}", path.read_text().rstrip())
    if not missing:
        target.write_text(text)
    return missing


def main() -> int:
    """Fill EXPERIMENTS.md in the repository root."""
    try:
        missing = fill(TEMPLATE, TARGET, RESULTS)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 1
    if missing:
        print(f"missing results files: {missing}", file=sys.stderr)
        return 1
    print(f"wrote {TARGET}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
