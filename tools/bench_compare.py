#!/usr/bin/env python3
"""Compare two ``BENCH_<date>.json`` snapshots and gate on regressions.

Usage::

    python tools/bench_compare.py results/BENCH_old.json results/BENCH_new.json
    python tools/bench_compare.py old.json new.json --threshold 0.15

Prints a per-benchmark speedup table (micro benches matched by name, plus
the sweep's aggregate events/sec) and exits non-zero when any compared
series regresses by more than ``--threshold`` (default 15%).  Benches that
exist on only one side are reported but never gate — adding or retiring a
micro suite must not fail CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["compare", "main"]


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")


def _fmt_ratio(speedup: float) -> str:
    """Human-readable change: >1 is faster, <1 is slower."""
    if speedup >= 1.0:
        return f"{speedup:.2f}x faster"
    return f"{1.0 / speedup:.2f}x slower"


def compare(old: dict, new: dict, threshold: float) -> tuple:
    """Diff two snapshots; return (report lines, regression lines).

    Micro benches compare ``mean_s`` (lower is better); the sweep compares
    ``aggregate_events_per_sec`` (higher is better).  A series regresses
    when its throughput falls below ``1 - threshold`` of the old value.
    """
    lines = []
    regressions = []
    floor = 1.0 - threshold

    old_micro = {bench["name"]: bench for bench in old.get("micro", [])}
    new_micro = {bench["name"]: bench for bench in new.get("micro", [])}
    for name in sorted(old_micro.keys() | new_micro.keys()):
        before = old_micro.get(name)
        after = new_micro.get(name)
        if before is None or after is None:
            side = "new" if before is None else "old"
            lines.append(f"  {name}: only in {side} snapshot (not compared)")
            continue
        if after["mean_s"] <= 0 or before["mean_s"] <= 0:
            lines.append(f"  {name}: non-positive timing (not compared)")
            continue
        speedup = before["mean_s"] / after["mean_s"]
        lines.append(
            f"  {name}: {before['mean_s'] * 1e3:.2f}ms -> "
            f"{after['mean_s'] * 1e3:.2f}ms ({_fmt_ratio(speedup)})"
        )
        if speedup < floor:
            regressions.append(
                f"{name}: {_fmt_ratio(speedup)} exceeds the "
                f"{threshold:.0%} regression budget"
            )

    old_agg = old.get("sweep", {}).get("aggregate_events_per_sec", 0.0)
    new_agg = new.get("sweep", {}).get("aggregate_events_per_sec", 0.0)
    if old_agg > 0 and new_agg > 0:
        speedup = new_agg / old_agg
        lines.append(
            f"  sweep aggregate: {old_agg:,.0f} -> {new_agg:,.0f} events/s "
            f"({_fmt_ratio(speedup)})"
        )
        if speedup < floor:
            regressions.append(
                f"sweep aggregate events/sec: {_fmt_ratio(speedup)} exceeds "
                f"the {threshold:.0%} regression budget"
            )
    else:
        lines.append("  sweep aggregate: missing on one side (not compared)")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("new", type=Path, help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional throughput loss before failing (default 0.15)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")

    old, new = _load(args.old), _load(args.new)
    print(
        f"baseline {args.old.name} ({old.get('date', '?')}, "
        f"queue={old.get('kernel_queue', '?')}, rev={old.get('git_rev', '?')})"
    )
    print(
        f"candidate {args.new.name} ({new.get('date', '?')}, "
        f"queue={new.get('kernel_queue', '?')}, rev={new.get('git_rev', '?')})"
    )
    lines, regressions = compare(old, new, args.threshold)
    print("\n".join(lines))
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        return 1
    print(f"ok: no series regressed beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
