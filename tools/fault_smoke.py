#!/usr/bin/env python3
"""CI fault-matrix smoke: the failure-aware retrieve layer under fire.

Usage::

    PYTHONPATH=src REPRO_PROFILE=quick python tools/fault_smoke.py

Two gates, both fast at the quick profile:

1. **Monitored adaptive runs** — one GroCoCa run per adaptive scoring
   policy under a bursty fault plan, each with the
   :class:`~repro.check.monitor.InvariantMonitor` attached in ``collect``
   mode.  Any invariant violation — including the breaker-discipline and
   hedge-conservation checks — fails the smoke.
2. **Micro policy sweep** — a two-point :func:`sweep_peer_policy` matrix
   executed with ``salvage=True``; any crashed or missing run fails the
   smoke (a fault plan must degrade a run, never kill it).

Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import sys

from repro.check.monitor import InvariantMonitor
from repro.core.simulation import run_simulation
from repro.experiments.parallel import RunFailure
from repro.experiments.runner import base_config
from repro.experiments.sweeps import _policy_fault_plan, sweep_peer_policy
from repro.net.health import SCORING_POLICIES

#: P2P loss rate of the monitored runs — hostile enough to trip breakers.
SMOKE_LOSS = 0.25

#: Sweep points of the micro matrix (clean + lossy).
SWEEP_VALUES = (0.0, 0.25)


def _adaptive_config(policy: str):
    return base_config(
        faults=_policy_fault_plan(SMOKE_LOSS),
        search_retry_limit=1,
        retrieve_retry_limit=2,
        uplink_retry_limit=3,
        peer_policy=policy,
        breaker_threshold=3,
        breaker_cooldown=2.0,
        hedge_quantile=0.9,
        retrieve_deadline=5.0,
        crash_failover=True,
        retry_jitter=0.1,
    )


def check_monitored_runs() -> int:
    """Every adaptive policy survives a monitored run under faults."""
    failures = 0
    for policy in sorted(SCORING_POLICIES):
        if policy == "arrival":
            continue  # the legacy path is golden-gated elsewhere
        monitor = InvariantMonitor(mode="collect")
        results = run_simulation(_adaptive_config(policy), monitor=monitor)
        report = monitor.report()
        status = "ok" if report.ok else "VIOLATIONS"
        print(
            f"  {policy:>14}: {status}  "
            f"lat={results.access_latency:.4f}s  "
            f"trips={results.health.get('breaker_trip', 0)}  "
            f"hedges={results.health.get('hedge', 0)}"
        )
        if not report.ok:
            failures += 1
            for violation in report.violations:
                print(f"    {violation}")
    return failures


def check_policy_sweep() -> int:
    """The micro policy matrix completes with no crashed runs."""
    failures: list[RunFailure] = []
    table = sweep_peer_policy(
        values=SWEEP_VALUES,
        attempts=2,
        salvage=True,
        failures_out=failures,
    )
    problems = len(failures)
    for failure in failures:
        print(f"  CRASHED: {failure.label}: {failure.error}")
    for policy in table.rows:
        for value in table.values:
            if table.result(policy, value) is None:
                problems += 1
                print(f"  MISSING: policy={policy} p2p_loss={value}")
    if problems == 0:
        runs = len(table.rows) * len(table.values)
        print(f"  {runs} runs, all completed")
    return problems


def main() -> int:
    print("fault smoke: monitored adaptive runs")
    problems = check_monitored_runs()
    print("fault smoke: micro policy sweep")
    problems += check_policy_sweep()
    if problems:
        print(f"fault smoke: FAILED ({problems} problem(s))")
        return 1
    print("fault smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
