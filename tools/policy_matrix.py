#!/usr/bin/env python3
"""Run the conformance battery over every registered policy (CI gate).

Usage::

    PYTHONPATH=src python tools/policy_matrix.py [--report FILE]
    PYTHONPATH=src python tools/policy_matrix.py --namespace replacement

Iterates :func:`repro.policies.conformance.conformance_keys` — so a
policy registered after this tool shipped is still covered with no
edits — runs the four-check battery per key, prints one status line
each, and exits non-zero when any policy fails.  ``--report`` writes the
full per-policy check map as JSON for the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.policies import registry
from repro.policies.conformance import conformance_keys, run_conformance

__all__ = ["main", "run_matrix"]


def run_matrix(namespace: str | None = None) -> list:
    """Battery reports for every registered ``(namespace, key)`` pair."""
    reports = []
    for ns, key in conformance_keys():
        if namespace is not None and ns != namespace:
            continue
        report = run_conformance(ns, key)
        status = "ok" if report.passed else "FAIL"
        print(
            f"  {status:<4} {ns + ':' + key:<30} "
            f"hit_ratio={report.hit_ratio:6.2f}  "
            f"checks={'/'.join(k for k, v in sorted(report.checks.items()) if v)}"
        )
        if not report.passed:
            for failure in report.failures:
                print(f"       - {failure}")
        reports.append(report)
    return reports


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--namespace",
        choices=registry.NAMESPACES,
        default=None,
        help="restrict the matrix to one namespace",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the per-policy JSON report here",
    )
    args = parser.parse_args(argv)

    print("policy conformance matrix:")
    reports = run_matrix(args.namespace)
    failed = [r for r in reports if not r.passed]

    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "policies": [r.as_dict() for r in reports],
            "total": len(reports),
            "failed": len(failed),
        }
        args.report.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {args.report}")

    print(
        f"{len(reports)} policies, {len(reports) - len(failed)} passed, "
        f"{len(failed)} failed"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
