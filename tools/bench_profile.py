#!/usr/bin/env python3
"""Run the micro-benchmarks and one profiled quick sweep; emit BENCH_<date>.json.

Produces a single machine-readable snapshot of the simulator's hot-path
performance:

* the pytest-benchmark stats for the two micro suites (DES kernel event
  throughput, signature build/match), via ``--benchmark-json``;
* a quick-profile figure sweep executed in-process with per-run
  :class:`~repro.sim.profile.RunProfile` data (wall-clock, events
  processed, events/sec, subsystem counters).

Usage::

    python tools/bench_profile.py [--figure fig2] [--jobs N] [--skip-micro]

Writes ``results/BENCH_<YYYY-MM-DD>.json``.
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

MICRO_SUITES = [
    "benchmarks/test_micro_kernel.py",
    "benchmarks/test_micro_signatures.py",
]

#: Rounds per micro bench: the sims are deterministic, so multiple rounds
#: exist purely to measure machine noise — the recorded stddev is real.
MICRO_ROUNDS = 5


def git_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def run_micro_benchmarks() -> list:
    """Run the micro suites under pytest-benchmark; return per-bench stats."""
    with tempfile.TemporaryDirectory() as scratch:
        report = Path(scratch) / "micro.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *MICRO_SUITES,
            "--benchmark-only",
            f"--benchmark-json={report}",
            "-q",
        ]
        completed = subprocess.run(
            command,
            cwd=ROOT,
            env={
                "PYTHONPATH": str(ROOT / "src"),
                "PATH": "/usr/bin:/bin",
                "REPRO_BENCH_ROUNDS": str(MICRO_ROUNDS),
            },
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            print(completed.stdout, file=sys.stderr)
            print(completed.stderr, file=sys.stderr)
            raise RuntimeError("micro benchmarks failed")
        payload = json.loads(report.read_text())
    return [
        {
            "name": bench["name"],
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
            "ops_per_sec": bench["stats"]["ops"],
        }
        for bench in payload.get("benchmarks", [])
    ]


def run_profiled_sweep(figure: str, jobs: int, rounds: int = 3) -> dict:
    """Run one quick-scale figure sweep in-process and collect run profiles.

    The sweep is executed ``rounds`` times and each (scheme, value) point
    keeps its *fastest* wall-clock observation: simulated outcomes are
    deterministic, so min-of-N is the standard way to strip scheduler and
    container timing noise (observed at ±30% on shared machines) from the
    recorded throughput.
    """
    import os

    os.environ["REPRO_PROFILE"] = "quick"
    os.environ.pop("REPRO_FULL", None)
    from repro.cli import FIGURES
    from repro.experiments import sweeps

    sweep_name, _ = FIGURES[figure]
    best: dict = {}
    table = None
    for _ in range(max(1, rounds)):
        table = getattr(sweeps, sweep_name)(jobs=jobs)
        for scheme, results in sorted(table.rows.items()):
            for value, result in zip(table.values, results):
                profile = result.profile
                if profile is None:
                    continue
                key = (scheme, value)
                held = best.get(key)
                if held is not None and held["wall_time_s"] <= profile.wall_time:
                    continue
                entry = {
                    "scheme": scheme,
                    table.parameter: value,
                    "wall_time_s": profile.wall_time,
                    "events": profile.events,
                    "events_per_sec": profile.events_per_sec,
                }
                entry.update(profile.counters)
                best[key] = entry
    runs = [best[key] for key in sorted(best)]
    total_wall = sum(run["wall_time_s"] for run in runs)
    total_events = sum(run["events"] for run in runs)
    return {
        "figure": table.figure,
        "parameter": table.parameter,
        "scale": "quick",
        "jobs": jobs,
        "rounds": max(1, rounds),
        "runs": runs,
        "total_wall_time_s": total_wall,
        "total_events": total_events,
        "aggregate_events_per_sec": (
            total_events / total_wall if total_wall > 0 else 0.0
        ),
    }


def main(argv=None) -> int:
    """Run both stages and write the dated JSON snapshot."""
    from repro.cli import FIGURES

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figure",
        default="fig2",
        choices=sorted(FIGURES),
        help="figure sweep to profile",
    )
    parser.add_argument("--jobs", type=int, default=1, help="parallel workers")
    parser.add_argument(
        "--sweep-rounds",
        type=int,
        default=3,
        help="sweep repetitions; each point keeps its fastest observation",
    )
    parser.add_argument(
        "--skip-micro", action="store_true", help="skip the pytest micro suites"
    )
    args = parser.parse_args(argv)

    from repro.sim.kernel import default_queue_name

    snapshot = {
        "date": datetime.date.today().isoformat(),
        "python": sys.version.split()[0],
        "git_rev": git_revision(),
        "kernel_queue": default_queue_name(),
        "micro": [] if args.skip_micro else run_micro_benchmarks(),
        "sweep": run_profiled_sweep(args.figure, args.jobs, args.sweep_rounds),
    }
    target = ROOT / "results" / f"BENCH_{snapshot['date']}.json"
    target.write_text(json.dumps(snapshot, indent=2) + "\n")
    sweep = snapshot["sweep"]
    print(
        f"wrote {target}: {len(snapshot['micro'])} micro benches, "
        f"{len(sweep['runs'])} profiled runs, "
        f"{sweep['aggregate_events_per_sec']:,.0f} events/s aggregate"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
