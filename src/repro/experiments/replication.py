"""Multi-replication runs with confidence intervals.

The paper reports single long runs; a reproduction at reduced scale should
quantify its noise instead.  :func:`run_replications` repeats a
configuration over independent seeds and summarises each metric with its
sample mean, standard deviation and a Student-t confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from scipy import stats as scipy_stats

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Results
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunSpec, execute_runs

__all__ = ["MetricSummary", "ReplicationSummary", "run_replications"]

#: Metrics summarised per replication set.
METRICS = (
    "access_latency",
    "server_request_ratio",
    "gch_ratio",
    "lch_ratio",
    "power_per_gch",
)


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± half-width at the requested confidence level."""

    mean: float
    stddev: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


@dataclass
class ReplicationSummary:
    """All metric summaries for one scheme."""

    scheme: str
    runs: List[Results]
    metrics: Dict[str, MetricSummary]

    def __getitem__(self, metric: str) -> MetricSummary:
        return self.metrics[metric]


def summarise(values: Sequence[float], confidence: float) -> MetricSummary:
    """Student-t summary of a sample (half-width 0 for n < 2 or inf data)."""
    finite = [v for v in values if math.isfinite(v)]
    n = len(finite)
    if n == 0:
        return MetricSummary(math.inf, 0.0, 0.0, 0)
    mean = sum(finite) / n
    if n < 2:
        return MetricSummary(mean, 0.0, 0.0, n)
    variance = sum((v - mean) ** 2 for v in finite) / (n - 1)
    stddev = math.sqrt(variance)
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return MetricSummary(mean, stddev, t_value * stddev / math.sqrt(n), n)


def run_replications(
    config: SimulationConfig,
    replications: int = 5,
    schemes: Sequence[CachingScheme] = (CachingScheme.GC,),
    confidence: float = 0.95,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, ReplicationSummary]:
    """Run ``replications`` independent seeds per scheme and summarise.

    Seeds are ``config.seed, config.seed + 1, ...`` so replication sets are
    themselves reproducible; schemes are paired on the same seed sequence
    (the pairing lives in the specs, so it is preserved under ``jobs > 1``
    parallel execution and cache resolution alike).
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    specs = [
        RunSpec(
            config=config.replace(scheme=scheme, seed=config.seed + replica),
            label=f"replication: scheme={scheme.value} replica={replica}",
        )
        for scheme in schemes
        for replica in range(replications)
    ]
    results = execute_runs(specs, jobs=jobs, cache=cache)
    outcome: Dict[str, ReplicationSummary] = {}
    for position, scheme in enumerate(schemes):
        # execute_runs without salvage raises rather than return holes, so
        # the filter is a no-op that narrows Optional[Results] to Results.
        runs = [
            run
            for run in results[position * replications : (position + 1) * replications]
            if run is not None
        ]
        metrics = {
            metric: summarise(
                [getattr(run, metric) for run in runs], confidence
            )
            for metric in METRICS
        }
        outcome[scheme.value] = ReplicationSummary(
            scheme=scheme.value, runs=runs, metrics=metrics
        )
    return outcome
