"""One sweep per figure of the paper's Section VI.

Each function returns a :class:`~repro.experiments.runner.SweepTable` whose
rows are the LC / CC / GC series of the corresponding figure's four panels
(access latency, server request ratio, GCH ratio, power per GCH).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunSpec, execute_runs
from repro.experiments.runner import (
    SweepTable,
    active_profile,
    base_config,
    run_sweep,
)
from repro.core.config import CachingScheme, SimulationConfig
from repro.net.faults import CrashFaults, FaultPlan, LinkFaults
from repro.net.health import SCORING_POLICIES
from repro.workloads import registry as workload_registry

__all__ = [
    "GENERATIVE_WORKLOADS",
    "sweep_access_range",
    "sweep_cache_size",
    "sweep_disconnection",
    "sweep_group_size",
    "sweep_link_loss",
    "sweep_n_clients",
    "sweep_peer_policy",
    "sweep_policy_matrix",
    "sweep_skewness",
    "sweep_update_rate",
    "sweep_workload",
]

Progress = Optional[Callable[[str], None]]

#: Every sweep forwards ``jobs`` (worker processes; 1 = serial, 0 = one per
#: core), ``cache`` (a :class:`ResultCache`) and any extra keyword
#: arguments (``timeout``, ``attempts``, ``salvage``, ``failures_out`` —
#: the fault-tolerance knobs of
#: :func:`~repro.experiments.parallel.execute_runs`) to :func:`run_sweep`.


def sweep_cache_size(
    values: Optional[Sequence[int]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 2: effect of cache size (50..250 data items).

    The quick profile shrinks the x-axis with its access range so caches
    never cover the whole working set.
    """
    if values is None:
        values = (
            (10, 20, 30, 40, 60)
            if active_profile() == "quick"
            else (50, 100, 150, 200, 250)
        )
    values = list(values)
    return run_sweep(
        "Fig2",
        "cache_size",
        values,
        lambda v: base_config(cache_size=v),
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


def sweep_skewness(
    values: Optional[Sequence[float]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 3: effect of the Zipf skewness parameter θ (0..1)."""
    values = list(values or (0.0, 0.25, 0.5, 0.75, 1.0))
    return run_sweep(
        "Fig3",
        "theta",
        values,
        lambda v: base_config(theta=v),
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


def sweep_access_range(
    values: Optional[Sequence[int]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 4: effect of the access range (500..10,000 data items)."""
    if values is None:
        values = (
            (100, 200, 500, 1000)
            if active_profile() == "quick"
            else (500, 1000, 2000, 5000, 10_000)
        )
    values = list(values)

    def config_for(value: int) -> SimulationConfig:
        # Wider ranges dilute the sampled access pattern (Σp² shrinks), so
        # TCG discovery needs a longer settling window before recording.
        settle = min(300.0 + value / 20.0, 800.0)
        return base_config(access_range=value, warmup_min_time=settle)

    return run_sweep(
        "Fig4",
        "access_range",
        values,
        config_for,
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


def sweep_group_size(
    values: Optional[Sequence[int]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 5: effect of the motion group size (1..20 MHs)."""
    values = list(values or (1, 5, 10, 15, 20))
    return run_sweep(
        "Fig5",
        "group_size",
        values,
        lambda v: base_config(group_size=v),
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


def sweep_update_rate(
    values: Optional[Sequence[float]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 6: effect of the data item update rate (0..10 items/s).

    The quick profile's database is 5x smaller, so the same per-item churn
    needs proportionally lower aggregate rates; its top rate is raised so
    the effect is visible within the short measurement window.
    """
    if values is None:
        values = (
            (0.0, 1.0, 2.0, 5.0, 20.0)
            if active_profile() == "quick"
            else (0.0, 1.0, 2.0, 5.0, 10.0)
        )
    values = list(values)
    return run_sweep(
        "Fig6",
        "data_update_rate",
        values,
        lambda v: base_config(data_update_rate=v),
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


def sweep_n_clients(
    values: Optional[Sequence[int]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 7: system scalability against the number of MHs.

    The sweep range is profile-dependent so the downlink saturation point
    (the figure's knee) always falls inside the plotted range.
    """
    if values is None:
        profile = active_profile()
        if profile == "quick":
            values = (10, 20, 40, 80)
        elif profile == "bench":
            values = (30, 60, 120, 180, 240)
        else:
            values = (50, 100, 200, 300, 400)
    values = list(values)

    def config_for(value: int) -> SimulationConfig:
        # Past the downlink knee the closed loop slows every client, so the
        # MSS observes patterns more slowly; stretch the settling window.
        settle = max(300.0, 2.5 * value)
        return base_config(n_clients=value, warmup_min_time=settle)

    return run_sweep(
        "Fig7",
        "n_clients",
        values,
        config_for,
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


def sweep_link_loss(
    values: Optional[Sequence[float]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 8-style robustness sweep: wireless message loss (0..30%).

    Not a figure of the paper — its channel model is ideal — but the same
    story told against a lossy radio: cooperative caching should degrade
    smoothly as the P2P medium loses frames, with the MSS fallback keeping
    latency bounded.  The swept value is the i.i.d. P2P frame-loss
    probability; a Gilbert–Elliott bursty component and a quarter-rate
    loss on the MSS links scale along with it, and the protocol's bounded
    recovery (one search re-flood, one retrieve failover, three server
    retries) is enabled so losses cost retries instead of stranding runs.
    """
    values = list(values if values is not None else (0.0, 0.05, 0.1, 0.2, 0.3))

    def config_for(value: float) -> SimulationConfig:
        plan = FaultPlan(
            p2p=LinkFaults(
                loss=value,
                burst_loss=min(1.0, 2.0 * value),
                burst_on=0.05 if value > 0 else 0.0,
                burst_off=0.5,
            ),
            uplink=LinkFaults(loss=value / 4.0),
            downlink=LinkFaults(loss=value / 4.0),
        )
        return base_config(
            faults=plan,
            search_retry_limit=1,
            retrieve_retry_limit=1,
            uplink_retry_limit=3,
        )

    return run_sweep(
        "FigLoss",
        "link_loss",
        values,
        config_for,
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


def _policy_fault_plan(value: float) -> FaultPlan:
    """The FigPolicy fault matrix at one loss level ``value``.

    The sweep_link_loss recipe (i.i.d. + bursty P2P loss, quarter-rate MSS
    loss) plus a low-rate crash-stop process, so the circuit breakers and
    the crash fast-failover actually have outages to react to.
    """
    return FaultPlan(
        p2p=LinkFaults(
            loss=value,
            burst_loss=min(1.0, 2.0 * value),
            burst_on=0.05 if value > 0 else 0.0,
            burst_off=0.5,
        ),
        uplink=LinkFaults(loss=value / 4.0),
        downlink=LinkFaults(loss=value / 4.0),
        crash=CrashFaults(
            rate=0.0005 if value > 0 else 0.0, down_min=2.0, down_max=8.0
        ),
    )


def sweep_peer_policy(
    values: Optional[Sequence[float]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    policies: Optional[Sequence[str]] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """FigPolicy: replier-scoring policy × P2P fault rate, GroCoCa only.

    Rows are the retrieve scoring policies of :mod:`repro.net.health`
    instead of caching schemes: ``arrival`` runs today's legacy retrieve
    path untouched (no health layer at all — the golden-default baseline),
    while every adaptive policy additionally gets circuit breakers, a
    hedged second request, a per-query deadline budget, crash fast-failover
    and jittered backoff.  The swept value is the i.i.d. P2P frame-loss
    probability; bursty loss, quarter-rate MSS loss and a low-rate
    crash-stop process scale along with it (see
    :func:`_policy_fault_plan`).  Same seed across policies at each sweep
    point — paired comparisons under common random numbers.
    """
    values = list(values if values is not None else (0.0, 0.1, 0.2, 0.3))
    policies = list(policies if policies is not None else SCORING_POLICIES)
    unknown = [p for p in policies if p not in SCORING_POLICIES]
    if unknown:
        raise ValueError(
            f"unknown scoring policies {unknown}; "
            f"pick from {sorted(SCORING_POLICIES)}"
        )

    def config_for(value: float, policy: str) -> SimulationConfig:
        common: Dict[str, Any] = dict(
            faults=_policy_fault_plan(value),
            search_retry_limit=1,
            retrieve_retry_limit=2,
            uplink_retry_limit=3,
        )
        if policy != "arrival":
            common.update(
                peer_policy=policy,
                breaker_threshold=3,
                breaker_cooldown=2.0,
                hedge_quantile=0.9,
                retrieve_deadline=5.0,
                crash_failover=True,
                retry_jitter=0.1,
            )
        return base_config(**common)

    table = SweepTable(figure="FigPolicy", parameter="p2p_loss", values=values)
    specs: List[RunSpec] = []
    spec_policies: List[str] = []
    for value in values:
        for policy in policies:
            specs.append(
                RunSpec(
                    config=config_for(value, policy),
                    label=f"FigPolicy: p2p_loss={value} policy={policy}",
                )
            )
            spec_policies.append(policy)
    results = execute_runs(
        specs, jobs=jobs, cache=cache, progress=progress, **execute_kwargs
    )
    for policy in policies:
        table.rows[policy] = []
    for policy, result in zip(spec_policies, results):
        table.rows[policy].append(result)
    return table


#: The FigWorkload columns: every registered workload that needs no input
#: file.  ``trace-replay`` is deliberately absent — it requires a trace
#: ``path`` parameter, so it has no meaningful figure default.
GENERATIVE_WORKLOADS = (
    "stationary-zipf",
    "ycsb",
    "flash-crowd",
    "diurnal",
    "popularity-drift",
)


def sweep_workload(
    values: Optional[Sequence[str]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """FigWorkload: registered workload engines × caching scheme.

    The swept "values" are workload registry keys rather than a numeric
    knob: ``stationary-zipf`` is the paper's stationary baseline (bit-for-
    bit the legacy process), and each non-stationary engine stresses a
    different assumption behind cooperative caching — YCSB mix A flattens
    group locality, ``flash-crowd`` injects transient global hot sets,
    ``diurnal`` swings the request rate, and ``popularity-drift`` churns
    which items are hot.  Same seed across schemes at each workload
    (common random numbers), like every paper figure.
    """
    values = list(values if values is not None else GENERATIVE_WORKLOADS)
    known = workload_registry.available()
    unknown = [value for value in values if value not in known]
    if unknown:
        raise ValueError(
            f"unknown workloads {unknown}; pick from {', '.join(known)}"
        )
    return run_sweep(
        "FigWorkload",
        "workload",
        values,
        lambda value: base_config(workload=str(value)),
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )


#: The FigMatrix rows: label -> config overrides.  The three schemes are
#: the paper's baselines; the GC variants swap exactly one registry key,
#: so every column is a paired ablation of that axis against stock
#: GroCoCa under common random numbers.
_MATRIX_ROWS: Dict[str, Dict[str, Any]] = {
    "LC": {"scheme": CachingScheme.LC},
    "CC": {"scheme": CachingScheme.CC},
    "GC": {},
    "GC+probcache": {"admission_policy": "probcache"},
    "GC+lcd": {"admission_policy": "lcd"},
    "GC+lru-min": {"replacement_policy": "lru-min"},
    "GC+greedy-dual": {"replacement_policy": "greedy-dual"},
    "GC+popularity": {"replacement_policy": "popularity-rank"},
}


def sweep_policy_matrix(
    values: Optional[Sequence[float]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    rows: Optional[Sequence[str]] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """FigMatrix: registered admission/replacement policies × Zipf θ.

    Rows are policy variants instead of schemes: the LC/CC/GC baselines
    plus one GroCoCa row per registered non-legacy admission and
    replacement key (see ``repro policies list``).  The swept value is the
    Zipf skewness — the knob that separates popularity-aware policies
    from recency-only ones — and every run takes a non-zero update rate
    so the TTL-aware policies (``lru-min``, ``greedy-dual``) have finite
    expiries to rank.  Same seed across rows at each sweep point (common
    random numbers).
    """
    values = list(values if values is not None else (0.5, 0.8, 0.95))
    rows = list(rows if rows is not None else _MATRIX_ROWS)
    unknown = [r for r in rows if r not in _MATRIX_ROWS]
    if unknown:
        raise ValueError(
            f"unknown matrix rows {unknown}; pick from {sorted(_MATRIX_ROWS)}"
        )

    table = SweepTable(figure="FigMatrix", parameter="theta", values=values)
    specs: List[RunSpec] = []
    spec_rows: List[str] = []
    for value in values:
        for row in rows:
            config = base_config(
                theta=value, data_update_rate=1.0, **_MATRIX_ROWS[row]
            )
            specs.append(
                RunSpec(
                    config=config,
                    label=f"FigMatrix: theta={value} row={row}",
                )
            )
            spec_rows.append(row)
    results = execute_runs(
        specs, jobs=jobs, cache=cache, progress=progress, **execute_kwargs
    )
    for row in rows:
        table.rows[row] = []
    for row, result in zip(spec_rows, results):
        table.rows[row].append(result)
    return table


def sweep_disconnection(
    values: Optional[Sequence[float]] = None,
    progress: Progress = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Fig. 8: effect of the client disconnection probability (0..0.3)."""
    values = list(values or (0.0, 0.05, 0.1, 0.2, 0.3))
    return run_sweep(
        "Fig8",
        "p_disc",
        values,
        lambda v: base_config(p_disc=v),
        progress=progress,
        jobs=jobs,
        cache=cache,
        **execute_kwargs,
    )
