"""Exports of sweep results for downstream tooling.

``sweep_to_csv`` flattens a :class:`~repro.experiments.runner.SweepTable`
into tidy rows (one row per sweep value x scheme) so the figures can be
re-plotted with any external tool; ``sweep_to_rows`` gives the same data
as dictionaries for programmatic use.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.runner import SweepTable

__all__ = ["CSV_COLUMNS", "sweep_to_csv", "sweep_to_rows"]

CSV_COLUMNS = [
    "figure",
    "parameter",
    "value",
    "scheme",
    "requests",
    "access_latency",
    "latency_stddev",
    "server_request_ratio",
    "gch_ratio",
    "lch_ratio",
    "failure_ratio",
    "power_per_gch",
    "power_data",
    "power_signature",
    "power_beacon",
    "validations",
    "peer_searches",
    "bypassed_searches",
    "measured_time",
]


def sweep_to_rows(table: SweepTable) -> List[Dict[str, object]]:
    """Tidy rows: one per (sweep value, scheme)."""
    rows: List[Dict[str, object]] = []
    for scheme, results in table.rows.items():
        for value, result in zip(table.values, results):
            row: Dict[str, object] = {
                "figure": table.figure,
                "parameter": table.parameter,
                "value": value,
                "scheme": scheme,
            }
            for column in CSV_COLUMNS[4:]:
                # Quarantined sweep points (salvage mode) export as blanks.
                row[column] = getattr(result, column) if result is not None else ""
            rows.append(row)
    return rows


def sweep_to_csv(
    table: SweepTable, path: Optional[Union[str, Path]] = None
) -> str:
    """Render the sweep as CSV text; optionally write it to ``path``."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS, lineterminator="\n")
    writer.writeheader()
    for row in sweep_to_rows(table):
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
