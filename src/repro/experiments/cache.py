"""Persistent on-disk cache of simulation results.

Re-running a figure bench after touching only one parameter should only
simulate the points whose configuration actually changed.  The cache maps
a **stable key** — the SHA-256 of the canonicalised
:class:`~repro.core.config.SimulationConfig` plus a code-version string —
to the pickled :class:`~repro.core.metrics.Results` of that run.

Invalidation rules:

* any config field change (scheme, seed, every Table II parameter)
  changes the canonical JSON and therefore the key;
* a new package version (``repro.__version__``) or cache format bump
  (:data:`CACHE_FORMAT`) invalidates every prior entry, because simulated
  trajectories are only reproducible for the code that produced them;
* unreadable or mismatching entries (corrupt file, hash collision) are
  treated as misses, never as errors.

Entries are written atomically (temp file + ``os.replace``) so a crashed
or concurrent writer can never leave a torn entry behind.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
from pathlib import Path
from typing import Optional, Union

from repro import __version__
from repro.core.config import SimulationConfig
from repro.core.metrics import Results

__all__ = ["CACHE_FORMAT", "ResultCache", "canonical_config", "config_key"]

#: Bump when the on-disk entry layout (not the simulator) changes.
CACHE_FORMAT = 1

#: Distinguishes temp files of concurrent writers within one process
#: (threads share a pid, so the pid alone is not collision-free).
_TEMP_COUNTER = itertools.count()


def default_code_version() -> str:
    """The code-version string mixed into every cache key."""
    return f"repro-{__version__}/cache-{CACHE_FORMAT}"


def canonical_config(config: SimulationConfig) -> str:
    """Deterministic JSON text of a configuration (sorted keys, enum values)."""
    return json.dumps(config.as_dict(), sort_keys=True)


def config_key(config: SimulationConfig, code_version: Optional[str] = None) -> str:
    """The cache key: SHA-256 over canonical config + code version."""
    version = code_version if code_version is not None else default_code_version()
    digest = hashlib.sha256()
    digest.update(canonical_config(config).encode("utf-8"))
    digest.update(b"\n")
    digest.update(version.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """A directory of pickled per-configuration :class:`Results`.

    ``hits`` / ``misses`` / ``stores`` count this instance's traffic, so
    tests (and the CLI's cache summary) can assert e.g. that a repeated
    sweep resolved entirely from disk.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        code_version: Optional[str] = None,
    ) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as error:
            raise ValueError(
                f"cache path {self.directory} is not a usable directory: "
                f"{error}"
            ) from error
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, config: SimulationConfig) -> str:
        """The stable key of a configuration under this cache's version."""
        return config_key(config, self.code_version)

    def path_for(self, config: SimulationConfig) -> Path:
        """Where a configuration's entry lives (whether or not it exists)."""
        return self.directory / f"{self.key(config)}.pkl"

    def get(self, config: SimulationConfig) -> Optional[Results]:
        """The cached results for ``config``, or None on any kind of miss."""
        path = self.path_for(config)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        # A damaged entry can raise almost anything out of the unpickler
        # (ValueError, ImportError, IndexError, ...): any failure to read
        # is a miss, never a crash.
        except Exception:
            self.misses += 1
            return None
        # Guard against hash collisions and stale formats: the stored
        # canonical config must match the requested one exactly.
        if (
            not isinstance(payload, dict)
            or payload.get("config") != canonical_config(config)
            or not isinstance(payload.get("results"), Results)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["results"]

    def put(self, config: SimulationConfig, results: Results) -> Path:
        """Store one run's results; returns the entry path."""
        path = self.path_for(config)
        payload = {
            "config": canonical_config(config),
            "code_version": self.code_version,
            "results": results,
        }
        temporary = path.with_name(
            path.name + f".tmp{os.getpid()}-{next(_TEMP_COUNTER)}"
        )
        with temporary.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temporary, path)
        self.stores += 1
        return path

    def __len__(self) -> int:
        """Entries currently on disk."""
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink()
            removed += 1
        return removed
