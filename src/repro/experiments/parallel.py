"""Parallel execution of independent simulation runs.

Sweeps and replication sets are embarrassingly parallel: every run is
hermetic — all randomness flows from ``RandomStreams(config.seed)``, and a
fully resolved :class:`~repro.core.config.SimulationConfig` (scheme and
seed baked in) is the run's complete input.  Fanning a flattened list of
:class:`RunSpec` tasks across a ``ProcessPoolExecutor`` therefore produces
**bit-identical results to the serial path**; only the ``profile`` field
(wall-clock timing, excluded from equality) differs.

The paper's paired-seed (common random numbers) methodology is preserved
by construction: pairing happens when the specs are *built* — the same
seed goes into every scheme's config at a sweep point — not by any
ordering of execution, so schemes stay paired no matter how the pool
schedules them.

An optional :class:`~repro.experiments.cache.ResultCache` short-circuits
specs whose configuration was already simulated by this or any earlier
process; only the misses are dispatched.

The harness tolerates misbehaving runs instead of losing the sweep:

* every spec gets up to ``attempts`` executions; a run that raises is
  retried and only **quarantined** (reported as a :class:`RunFailure`)
  after its last attempt fails,
* a crashed worker process (``BrokenProcessPool``) poisons every future
  on the pool, so the pool is rebuilt and the innocent casualties are
  re-dispatched *without* being charged an attempt,
* an optional per-run ``timeout`` (pool mode only) kills the stuck
  workers and re-dispatches the unfinished remainder the same way,
* with ``salvage=True`` a sweep with quarantined specs still returns —
  the failed positions hold ``None`` — instead of raising
  :class:`RunCrashed`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.metrics import Results
from repro.core.simulation import run_simulation
from repro.experiments.cache import ResultCache

__all__ = [
    "RunCrashed",
    "RunFailure",
    "RunSpec",
    "execute_runs",
    "jobs_from_env",
    "resolve_jobs",
]


@dataclass(frozen=True)
class RunSpec:
    """One simulation task: a fully resolved config plus a display label."""

    config: SimulationConfig
    label: str = ""


@dataclass(frozen=True)
class RunFailure:
    """One spec that exhausted its attempts; quarantined from the sweep."""

    index: int
    label: str
    attempts: int
    error: str


class RunCrashed(RuntimeError):
    """A spec exhausted its attempts and salvage mode is off."""

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures = list(failures)
        lines = ", ".join(
            f"{f.label or f'spec {f.index}'} ({f.error})" for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} run(s) failed after retries: {lines}"
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0 means one worker per core."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def jobs_from_env(default: int = 1) -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable.

    The environment contract intentionally differs from the CLI's
    ``--jobs`` flag: ``--jobs 0`` means one worker per core (an explicit
    request for maximum fan-out), while ``REPRO_JOBS=0`` — and an unset or
    empty variable — means **serial**.  Environment-driven batch runs (CI,
    the benchmark suite) must stay on the deterministic single-process
    path unless parallelism is asked for with a positive count, so that
    timing baselines are comparable across machines.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return default
    value = int(raw)
    if value < 0:
        raise ValueError(f"REPRO_JOBS must be >= 0, got {value}")
    return value if value > 0 else 1


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: kill the workers, drop the queued work.

    ``shutdown(cancel_futures=True)`` still waits for running tasks, which
    is exactly wrong for a hung or crash-looping worker.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def execute_runs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    timeout: Optional[float] = None,
    attempts: int = 2,
    salvage: bool = False,
    failures_out: Optional[List[RunFailure]] = None,
    runner: Callable[[SimulationConfig], Results] = run_simulation,
) -> List[Optional[Results]]:
    """Run every spec and return results in spec order.

    ``jobs == 1`` executes serially in-process (the reference path);
    ``jobs > 1`` fans the non-cached specs out over a process pool
    (``jobs == 0`` / None uses every core).  With a ``cache``, hits are
    resolved without simulating and misses are stored after execution.

    ``timeout`` bounds one run's wall-clock seconds (pool mode only: a
    serial run cannot be interrupted from within its own process);
    ``attempts`` is the per-spec execution budget before quarantine;
    ``salvage`` returns partial results (``None`` at failed positions)
    instead of raising :class:`RunCrashed`; ``failures_out`` receives the
    :class:`RunFailure` records either way.  ``runner`` exists for the
    fault-tolerance tests; the simulation path never overrides it.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    jobs = resolve_jobs(jobs)
    results: List[Optional[Results]] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        cached = cache.get(spec.config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            if progress is not None:
                progress(f"{spec.label} [cached]")
        else:
            pending.append(index)

    tries: Dict[int, int] = {index: 0 for index in pending}
    failures: List[RunFailure] = []

    def note(index: int) -> None:
        if progress is None:
            return
        label = specs[index].label
        progress(label if tries[index] == 1 else f"{label} [retry {tries[index]}]")

    def settle(index: int, error: str, queue: List[int]) -> None:
        """A charged attempt failed: requeue or quarantine."""
        if tries[index] < attempts:
            queue.append(index)
            return
        failures.append(
            RunFailure(
                index=index,
                label=specs[index].label,
                attempts=tries[index],
                error=error,
            )
        )
        if progress is not None:
            progress(f"{specs[index].label} [quarantined: {error}]")

    if jobs == 1 or len(pending) <= 1:
        queue = list(pending)
        while queue:
            index = queue.pop(0)
            tries[index] += 1
            note(index)
            try:
                results[index] = runner(specs[index].config)
            except Exception as exc:  # quarantine any failure, don't die
                settle(index, repr(exc), queue)
    else:
        queue = list(pending)
        while queue:
            batch, queue = queue, []
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(batch)))
            futures = {}
            for index in batch:
                tries[index] += 1
                note(index)
                futures[index] = pool.submit(runner, specs[index].config)
            pool_dead = False
            for index, future in futures.items():
                if pool_dead:
                    # The pool died under this future: its run may never
                    # have started, so the attempt is refunded.
                    tries[index] -= 1
                    queue.append(index)
                    continue
                try:
                    results[index] = future.result(timeout=timeout)
                except FutureTimeoutError:
                    _stop_pool(pool)
                    pool_dead = True
                    settle(index, f"timed out after {timeout}s", queue)
                except BrokenProcessPool:
                    # The worker running *some* batch member died; charge
                    # the first observer (re-run sorts out the innocent)
                    # and refund the rest.
                    pool_dead = True
                    settle(index, "worker process crashed", queue)
                except Exception as exc:  # quarantine any failure
                    settle(index, repr(exc), queue)
            if not pool_dead:
                pool.shutdown()

    if failures_out is not None:
        failures_out.extend(failures)
    if failures and not salvage:
        raise RunCrashed(failures)
    if cache is not None:
        for index in pending:
            if results[index] is not None:
                cache.put(specs[index].config, results[index])
    return results
