"""Parallel execution of independent simulation runs.

Sweeps and replication sets are embarrassingly parallel: every run is
hermetic — all randomness flows from ``RandomStreams(config.seed)``, and a
fully resolved :class:`~repro.core.config.SimulationConfig` (scheme and
seed baked in) is the run's complete input.  Fanning a flattened list of
:class:`RunSpec` tasks across a ``ProcessPoolExecutor`` therefore produces
**bit-identical results to the serial path**; only the ``profile`` field
(wall-clock timing, excluded from equality) differs.

The paper's paired-seed (common random numbers) methodology is preserved
by construction: pairing happens when the specs are *built* — the same
seed goes into every scheme's config at a sweep point — not by any
ordering of execution, so schemes stay paired no matter how the pool
schedules them.

An optional :class:`~repro.experiments.cache.ResultCache` short-circuits
specs whose configuration was already simulated by this or any earlier
process; only the misses are dispatched.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.metrics import Results
from repro.core.simulation import run_simulation
from repro.experiments.cache import ResultCache

__all__ = ["RunSpec", "execute_runs", "resolve_jobs"]


@dataclass(frozen=True)
class RunSpec:
    """One simulation task: a fully resolved config plus a display label."""

    config: SimulationConfig
    label: str = ""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0 means one worker per core."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def execute_runs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Results]:
    """Run every spec and return results in spec order.

    ``jobs == 1`` executes serially in-process (the reference path);
    ``jobs > 1`` fans the non-cached specs out over a process pool
    (``jobs == 0`` / None uses every core).  With a ``cache``, hits are
    resolved without simulating and misses are stored after execution.
    """
    jobs = resolve_jobs(jobs)
    results: List[Optional[Results]] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        cached = cache.get(spec.config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            if progress is not None:
                progress(f"{spec.label} [cached]")
        else:
            pending.append(index)
    if jobs == 1 or len(pending) <= 1:
        for index in pending:
            if progress is not None:
                progress(specs[index].label)
            results[index] = run_simulation(specs[index].config)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {}
            for index in pending:
                if progress is not None:
                    progress(specs[index].label)
                futures[index] = pool.submit(run_simulation, specs[index].config)
            for index, future in futures.items():
                results[index] = future.result()
    if cache is not None:
        for index in pending:
            cache.put(specs[index].config, results[index])
    return results
