"""Text rendering of sweep results in the paper's panel layout."""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.metrics import Results
from repro.experiments.runner import SweepTable

__all__ = ["format_profile_report", "format_results_row", "format_sweep_table"]

#: (attribute, panel title, unit, format)
PANELS: List[Tuple[str, str, str]] = [
    ("access_latency", "(a) Access Latency", "s"),
    ("server_request_ratio", "(b) Server Request Ratio", "%"),
    ("gch_ratio", "(c) GCH Ratio", "%"),
    ("power_per_gch", "(d) Power per GCH", "uW.s"),
]


def _fmt(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "      n/a"
    if math.isinf(value):
        return "      inf"
    if value == 0:
        return "        0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:9.0f}"
    if magnitude >= 1:
        return f"{value:9.2f}"
    return f"{value:9.4f}"


def format_results_row(result: Results) -> str:
    """One-line summary of a single run."""
    return (
        f"{result.scheme:>3}  lat={result.access_latency:.4f}s  "
        f"server={result.server_request_ratio:5.1f}%  "
        f"gch={result.gch_ratio:5.1f}%  lch={result.lch_ratio:5.1f}%  "
        f"power/gch={_fmt(result.power_per_gch).strip()}"
    )


def format_sweep_table(table: SweepTable, title: str = "") -> str:
    """Render all four panels of one figure as aligned text tables."""
    lines: List[str] = []
    header = f"=== {table.figure}: {title or table.parameter} ==="
    lines.append(header)
    schemes = list(table.rows)
    for metric, panel, unit in PANELS:
        lines.append("")
        lines.append(f"{panel} [{unit}]")
        value_cells = "".join(f"{str(v):>10}" for v in table.values)
        lines.append(f"  {table.parameter:>12} |{value_cells}")
        lines.append("  " + "-" * (14 + 10 * len(table.values)))
        for scheme in schemes:
            series = table.series(scheme, metric)
            cells = "".join(f" {_fmt(v)}" for v in series)
            lines.append(f"  {scheme:>12} |{cells}")
    lines.append("")
    return "\n".join(lines)


def format_profile_report(table: SweepTable) -> str:
    """Per-run wall-clock / events/s report of one sweep.

    Sourced from each run's :class:`~repro.sim.profile.RunProfile`; runs
    resolved from the result cache report the timing of the run that
    originally produced them.
    """
    lines = [f"=== {table.figure}: per-run profile ({table.parameter}) ==="]
    total_wall = 0.0
    total_events = 0
    profiled = 0
    for value in table.values:
        for scheme in table.rows:
            result = table.result(scheme, value)
            profile = result.profile if result is not None else None
            if profile is None:
                continue
            profiled += 1
            total_wall += profile.wall_time
            total_events += profile.events
            counters = profile.counters
            p2p = counters.get("p2p_broadcasts", 0) + counters.get(
                "p2p_unicasts", 0
            )
            lines.append(
                f"  {table.parameter}={value!s:>8} {scheme:>3}: "
                f"{profile.wall_time:8.2f}s  {profile.events:>10} events  "
                f"{profile.events_per_sec:>12,.0f} ev/s  p2p_tx={p2p}  "
                f"snapshots={counters.get('snapshot_refreshes', 0)}"
                f"+{counters.get('snapshot_rebuilds', 0)}full  "
                f"ndp_rounds={counters.get('ndp_rounds', 0)}"
            )
    if profiled:
        rate = total_events / total_wall if total_wall > 0 else 0.0
        lines.append(
            f"  total: {profiled} runs  {total_wall:.2f}s simulation wall-clock  "
            f"{total_events} events  {rate:,.0f} ev/s"
        )
    else:
        lines.append("  (no profiles recorded)")
    return "\n".join(lines)
