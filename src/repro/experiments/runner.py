"""Sweep execution and scale profiles.

The paper runs 100 clients for 1000+ measured requests each on a C++
simulator; a pure-Python reproduction sweeps dozens of such runs, so the
harness supports three scale profiles selected by the ``REPRO_PROFILE``
environment variable (``quick`` / ``bench`` / ``full``):

* ``quick``  — smoke-test scale for CI (minutes for the whole suite),
* ``bench``  — the default: paper parameter *ratios* at a reduced
  population and run length; preserves every qualitative shape,
* ``full``   — the paper's population and a long measurement window.

``REPRO_FULL=1`` is a shorthand for ``REPRO_PROFILE=full``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Results
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunSpec, execute_runs

__all__ = [
    "BENCH_PROFILE",
    "FULL_PROFILE",
    "QUICK_PROFILE",
    "SweepTable",
    "active_profile",
    "base_config",
    "run_sweep",
]

#: Config overrides per profile.  Parameter *ratios* (cache/access range,
#: access range/database, group span/transmission range) follow Table II.
#: The downlink bandwidth scales with the population so the reduced
#: profiles keep the paper's server-channel utilisation (the latency story
#: of Figs. 2 and 7 depends on the downlink being the bottleneck).
QUICK_PROFILE: Dict[str, object] = {
    "n_clients": 20,
    "n_data": 2000,
    "access_range": 200,
    "cache_size": 30,
    "bw_downlink": 500_000.0,
    "measure_requests": 40,
    "warmup_min_time": 200.0,
    "warmup_max_time": 300.0,
    "ndp_enabled": False,
}

BENCH_PROFILE: Dict[str, object] = {
    "n_clients": 60,
    "n_data": 10_000,
    "access_range": 1000,
    "cache_size": 100,
    "bw_downlink": 1_500_000.0,
    "measure_requests": 60,
    "warmup_min_time": 300.0,
    "warmup_max_time": 600.0,
}

FULL_PROFILE: Dict[str, object] = {
    "n_clients": 100,
    "n_data": 10_000,
    "access_range": 1000,
    "cache_size": 100,
    "measure_requests": 200,
    "warmup_min_time": 300.0,
    "warmup_max_time": 600.0,
}

_PROFILES = {"quick": QUICK_PROFILE, "bench": BENCH_PROFILE, "full": FULL_PROFILE}

ALL_SCHEMES = (CachingScheme.LC, CachingScheme.CC, CachingScheme.GC)


def active_profile() -> str:
    """The profile name selected by the environment (default ``bench``)."""
    if os.environ.get("REPRO_FULL", "") not in ("", "0"):
        return "full"
    name = os.environ.get("REPRO_PROFILE", "bench").lower()
    if name not in _PROFILES:
        raise ValueError(
            f"unknown REPRO_PROFILE {name!r}; pick one of {sorted(_PROFILES)}"
        )
    return name


def base_config(**overrides: Any) -> SimulationConfig:
    """The active profile's configuration with optional overrides."""
    settings = dict(_PROFILES[active_profile()])
    settings.update(overrides)
    return SimulationConfig(**settings)


@dataclass
class SweepTable:
    """All results behind one paper figure."""

    figure: str
    parameter: str
    values: List[object]
    rows: Dict[str, List[Results]] = field(default_factory=dict)

    def _scheme_rows(self, scheme: str) -> List[Results]:
        try:
            return self.rows[scheme]
        except KeyError:
            raise KeyError(
                f"scheme {scheme!r} was not swept in {self.figure}; "
                f"available schemes: {sorted(self.rows)}"
            ) from None

    def series(self, scheme: str, metric: str) -> List[float]:
        """One plotted line, e.g. ``series("GC", "gch_ratio")``.

        A sweep point quarantined by salvage mode renders as ``nan``.
        """
        return [
            getattr(result, metric) if result is not None else math.nan
            for result in self._scheme_rows(scheme)
        ]

    def result(self, scheme: str, value: object) -> Results:
        """The results at one sweep point of one scheme.

        Raises a descriptive ``KeyError`` for an unknown scheme and
        ``ValueError`` for a value outside the swept range.
        """
        rows = self._scheme_rows(scheme)
        try:
            index = self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{self.parameter}={value!r} was not swept in {self.figure}; "
                f"swept values: {self.values}"
            ) from None
        return rows[index]


def run_sweep(
    figure: str,
    parameter: str,
    values: Sequence[object],
    config_for: Callable[[object], SimulationConfig],
    schemes: Sequence[CachingScheme] = ALL_SCHEMES,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    **execute_kwargs: Any,
) -> SweepTable:
    """Run ``config_for(value)`` under every scheme for every value.

    The same seed is used across schemes at each sweep point, so the
    comparisons are paired exactly as in the paper's common random numbers
    methodology — the pairing is baked into the flattened run specs, so it
    survives any parallel execution order.

    ``jobs`` fans the runs out over worker processes (1 = serial in
    process, 0/None = one worker per core) with results identical to the
    serial path; ``cache`` resolves already-simulated configurations from
    disk (see :mod:`repro.experiments.cache`).  Extra keyword arguments
    (``timeout``, ``attempts``, ``salvage``, ``failures_out``) flow to
    :func:`~repro.experiments.parallel.execute_runs`; with ``salvage`` a
    quarantined run leaves ``None`` at its sweep position.
    """
    table = SweepTable(figure=figure, parameter=parameter, values=list(values))
    for scheme in schemes:
        table.rows[scheme.value] = []
    specs: List[RunSpec] = []
    spec_schemes: List[str] = []
    for value in values:
        config = config_for(value)
        for scheme in schemes:
            specs.append(
                RunSpec(
                    config=config.with_scheme(scheme),
                    label=f"{figure}: {parameter}={value} scheme={scheme.value}",
                )
            )
            spec_schemes.append(scheme.value)
    results = execute_runs(
        specs, jobs=jobs, cache=cache, progress=progress, **execute_kwargs
    )
    for scheme_name, result in zip(spec_schemes, results):
        table.rows[scheme_name].append(result)
    return table
