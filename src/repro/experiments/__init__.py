"""Experiment harness: the sweeps behind every figure of Section VI.

* :mod:`repro.experiments.runner` — sweep execution over schemes and
  parameter values, scale profiles (quick / bench / full).
* :mod:`repro.experiments.sweeps` — one function per paper figure.
* :mod:`repro.experiments.tables` — text rendering of the result series.
"""

from repro.experiments.export import sweep_to_csv, sweep_to_rows
from repro.experiments.replication import (
    MetricSummary,
    ReplicationSummary,
    run_replications,
)
from repro.experiments.runner import (
    BENCH_PROFILE,
    FULL_PROFILE,
    QUICK_PROFILE,
    SweepTable,
    active_profile,
    base_config,
    run_sweep,
)
from repro.experiments.sweeps import (
    sweep_access_range,
    sweep_cache_size,
    sweep_disconnection,
    sweep_group_size,
    sweep_n_clients,
    sweep_skewness,
    sweep_update_rate,
)
from repro.experiments.tables import format_results_row, format_sweep_table

__all__ = [
    "BENCH_PROFILE",
    "FULL_PROFILE",
    "MetricSummary",
    "QUICK_PROFILE",
    "ReplicationSummary",
    "SweepTable",
    "active_profile",
    "base_config",
    "format_results_row",
    "format_sweep_table",
    "run_replications",
    "run_sweep",
    "sweep_to_csv",
    "sweep_to_rows",
    "sweep_access_range",
    "sweep_cache_size",
    "sweep_disconnection",
    "sweep_group_size",
    "sweep_n_clients",
    "sweep_skewness",
    "sweep_update_rate",
]
