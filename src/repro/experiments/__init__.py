"""Experiment harness: the sweeps behind every figure of Section VI.

* :mod:`repro.experiments.runner` — sweep execution over schemes and
  parameter values, scale profiles (quick / bench / full).
* :mod:`repro.experiments.sweeps` — one function per paper figure.
* :mod:`repro.experiments.parallel` — fan-out of independent runs over a
  process pool, bit-identical to the serial path.
* :mod:`repro.experiments.cache` — persistent on-disk result cache keyed
  by canonical configuration + code version.
* :mod:`repro.experiments.tables` — text rendering of the result series
  and per-run profile reports.
"""

from repro.experiments.cache import ResultCache, config_key
from repro.experiments.export import sweep_to_csv, sweep_to_rows
from repro.experiments.parallel import (
    jobs_from_env,
    RunCrashed,
    RunFailure,
    RunSpec,
    execute_runs,
    resolve_jobs,
)
from repro.experiments.replication import (
    MetricSummary,
    ReplicationSummary,
    run_replications,
)
from repro.experiments.runner import (
    BENCH_PROFILE,
    FULL_PROFILE,
    QUICK_PROFILE,
    SweepTable,
    active_profile,
    base_config,
    run_sweep,
)
from repro.experiments.sweeps import (
    sweep_access_range,
    sweep_cache_size,
    sweep_disconnection,
    sweep_group_size,
    sweep_link_loss,
    sweep_n_clients,
    sweep_peer_policy,
    sweep_skewness,
    sweep_update_rate,
    sweep_workload,
)
from repro.experiments.tables import (
    format_profile_report,
    format_results_row,
    format_sweep_table,
)

__all__ = [
    "BENCH_PROFILE",
    "FULL_PROFILE",
    "MetricSummary",
    "QUICK_PROFILE",
    "ReplicationSummary",
    "ResultCache",
    "RunCrashed",
    "RunFailure",
    "RunSpec",
    "SweepTable",
    "active_profile",
    "base_config",
    "config_key",
    "execute_runs",
    "format_profile_report",
    "format_results_row",
    "format_sweep_table",
    "jobs_from_env",
    "resolve_jobs",
    "run_replications",
    "run_sweep",
    "sweep_to_csv",
    "sweep_to_rows",
    "sweep_access_range",
    "sweep_cache_size",
    "sweep_disconnection",
    "sweep_group_size",
    "sweep_link_loss",
    "sweep_n_clients",
    "sweep_peer_policy",
    "sweep_skewness",
    "sweep_update_rate",
    "sweep_workload",
]
