"""Trace replay: drive the simulation from a recorded request log.

The ``trace-replay`` workload streams a CSV or JSONL request log through
the :class:`~repro.workloads.base.HostStream` protocol.  The file is read
**lazily** — one line at a time, demultiplexed into small per-host
buffers — so a million-request trace costs a bounded number of bytes of
resident memory no matter how long it is (the constant-memory tests pin
this).

Trace schema (see docs/WORKLOADS.md):

* **CSV** — first line must be the exact header ``t,host,item``; every
  further line is ``<float>,<int>,<int>``.
* **JSONL** (``.jsonl`` extension) — one JSON object per line with
  numeric fields ``t``, ``host`` and ``item``.

Timestamps must be non-decreasing and non-negative; item ids must fall
inside the configured database (``0 <= item < n_data``); trace hosts map
onto simulated hosts by ``host % n_clients`` (deterministic demux).
Violations raise pinned ``ValueError`` messages naming the file and line
(the malformed-trace contract tests match them verbatim).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.workloads.base import REQUIRED, WorkloadEngine
from repro.workloads.registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.config import SimulationConfig
    from repro.sim.random import RandomStreams

__all__ = ["TRACE_HEADER", "TraceHostStream", "TraceReplayWorkload"]

#: Mandatory first line of a CSV trace.
TRACE_HEADER = "t,host,item"

#: Think-time returned by an exhausted (non-looping) stream: far beyond
#: any ``max_sim_time``, so a starved host simply idles out the run.
_EXHAUSTED_DELAY = 1e15


class _TraceReader:
    """Shared lazy reader: one pass over the file, per-host deques."""

    def __init__(
        self,
        path: Path,
        n_clients: int,
        n_data: int,
        loop: bool,
        max_buffer: int,
    ) -> None:
        self.path = path
        self.n_clients = n_clients
        self.n_data = n_data
        self.loop = loop
        self.max_buffer = max_buffer
        self.records_read = 0
        self._queues: List[Deque[Tuple[float, int]]] = [
            deque() for _ in range(n_clients)
        ]
        self._jsonl = path.suffix == ".jsonl"
        self._offset = 0.0
        self._exhausted = False
        self._handle = None
        self._line_no = 0
        self._pass_last_t: Optional[float] = None
        self._open()

    def _fail(self, message: str) -> ValueError:
        return ValueError(f"trace {self.path}: {message}")

    def _open(self) -> None:
        self._handle = self.path.open("r", encoding="utf-8")
        self._line_no = 0
        self._pass_last_t = None
        if not self._jsonl:
            header = self._handle.readline()
            self._line_no = 1
            if header.rstrip("\r\n") != TRACE_HEADER:
                raise self._fail(
                    f"header must be {TRACE_HEADER!r}, "
                    f"got {header.rstrip(chr(10)).rstrip(chr(13))!r}"
                )

    def _parse(self, line: str) -> Tuple[float, int, int]:
        n = self._line_no
        if self._jsonl:
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise self._fail(f"line {n}: invalid JSON: {error}") from None
            if not isinstance(record, dict) or not {"t", "host", "item"} <= set(
                record
            ):
                raise self._fail(
                    f"line {n}: expected an object with keys t, host, item"
                )
            try:
                return float(record["t"]), int(record["host"]), int(record["item"])
            except (TypeError, ValueError):
                raise self._fail(
                    f"line {n}: t, host and item must be numeric"
                ) from None
        parts = line.rstrip("\r\n").split(",")
        if len(parts) != 3:
            raise self._fail(
                f"line {n}: expected 3 fields (t,host,item), got {len(parts)}"
            )
        try:
            return float(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            raise self._fail(
                f"line {n}: t, host and item must be numeric"
            ) from None

    def _end_of_pass(self) -> None:
        self._handle.close()
        if not self.loop:
            self._exhausted = True
            return
        if self._pass_last_t is None:
            raise self._fail("no records to replay")
        # Shift the next pass past everything replayed so far, keeping
        # timestamps globally non-decreasing across the loop seam.
        self._offset += self._pass_last_t
        self._open()

    def _advance(self) -> None:
        """Read lines until one record lands in some host's buffer."""
        while True:
            line = self._handle.readline()
            self._line_no += 1
            if not line:
                self._end_of_pass()
                return
            if not line.strip():
                continue  # blank (e.g. trailing) lines carry no record
            t, host, item = self._parse(line)
            n = self._line_no
            if t < 0:
                raise self._fail(f"line {n}: negative timestamp {t}")
            if self._pass_last_t is not None and t < self._pass_last_t:
                raise self._fail(
                    f"line {n}: non-monotone timestamp {t} < {self._pass_last_t}"
                )
            if host < 0:
                raise self._fail(f"line {n}: negative host id {host}")
            if not 0 <= item < self.n_data:
                raise self._fail(
                    f"line {n}: unknown item id {item} "
                    f"(database has {self.n_data} items)"
                )
            self._pass_last_t = t
            self.records_read += 1
            queue = self._queues[host % self.n_clients]
            queue.append((t + self._offset, item))
            if len(queue) > self.max_buffer:
                raise self._fail(
                    f"demux buffer for host {host % self.n_clients} exceeded "
                    f"{self.max_buffer} records; the trace is too skewed — "
                    "raise workload_params['max_buffer']"
                )
            return

    def pop(self, host: int) -> Optional[Tuple[float, int]]:
        """The next ``(t, item)`` for ``host``; None when exhausted."""
        queue = self._queues[host]
        while not queue and not self._exhausted:
            self._advance()
        return queue.popleft() if queue else None


class TraceHostStream:
    """One host's lazily demultiplexed slice of the trace."""

    __slots__ = ("engine", "reader", "host", "_pending")

    def __init__(
        self, engine: "TraceReplayWorkload", reader: _TraceReader, host: int
    ) -> None:
        self.engine = engine
        self.reader = reader
        self.host = host
        self._pending: Optional[int] = None

    def next_delay(self, now: float) -> float:
        record = self.reader.pop(self.host)
        if record is None:
            self._pending = None
            return _EXHAUSTED_DELAY
        t, item = record
        self._pending = item
        return max(0.0, t * self.engine.time_scale - now)

    def next_item(self, now: float) -> int:
        item = self._pending
        if item is None:
            record = self.reader.pop(self.host)
            if record is None:
                raise RuntimeError(
                    f"trace-replay stream exhausted for host {self.host}"
                )
            item = record[1]
        self._pending = None
        self.engine.note(item)
        return item


@register(
    "trace-replay",
    summary="replay a CSV/JSONL request log with per-host demux",
    citation="cf. Icarus packet-level trace-driven workloads",
)
class TraceReplayWorkload(WorkloadEngine):
    """Deterministic replay of a recorded request log.

    Parameters (``workload_params``):

    * ``path`` (required) — the trace file; ``.jsonl`` selects the JSONL
      schema, anything else the CSV schema.
    * ``loop`` (default True) — restart the trace at the end, shifting
      timestamps so they stay non-decreasing; with ``False`` an
      exhausted host idles out the rest of the run.
    * ``time_scale`` (default 1.0) — multiply trace timestamps, e.g. to
      compress a day-long log into a short simulation.
    * ``max_buffer`` (default 65536) — per-host demux buffer cap; a
      pathologically skewed trace fails loudly instead of buffering
      without bound.
    """

    key = "trace-replay"
    PARAM_DEFAULTS: Dict[str, object] = {
        "path": REQUIRED,
        "loop": True,
        "time_scale": 1.0,
        "max_buffer": 65536,
    }

    def __init__(
        self,
        config: "SimulationConfig",
        streams: "RandomStreams",
        group_of: List[int],
    ) -> None:
        super().__init__(config, streams, group_of)
        path = Path(str(self.params["path"]))
        self.time_scale = float(self.params["time_scale"])  # type: ignore[arg-type]
        max_buffer = int(self.params["max_buffer"])  # type: ignore[arg-type]
        if self.time_scale <= 0:
            raise ValueError("trace-replay param 'time_scale' must be positive")
        if max_buffer < 1:
            raise ValueError("trace-replay param 'max_buffer' must be >= 1")
        if not path.exists():
            raise ValueError(f"trace file not found: {path}")
        self.reader = _TraceReader(
            path,
            config.n_clients,
            config.n_data,
            bool(self.params["loop"]),
            max_buffer,
        )

    def bind(self, index: int, rng: "np.random.Generator") -> TraceHostStream:
        # ``rng`` is deliberately unused: replay is fully deterministic,
        # think times and items both come from the recorded log.
        return TraceHostStream(self, self.reader, index)
