"""The workload engine and per-host stream contracts.

A **workload engine** owns the run-wide state of one demand process —
access patterns, hot sets, drift permutations, a trace reader — and
hands each mobile host a lazy **host stream** via :meth:`WorkloadEngine.
bind`.  A host stream answers exactly two questions, one request at a
time, in the order the legacy client loop asked them:

* :meth:`HostStream.next_delay` — how long to think before the next
  request (the legacy path draws ``rng.exponential(think_time_mean)``
  from the host's own stream);
* :meth:`HostStream.next_item` — which item to request (the legacy path
  draws from the shared ``"workload"`` stream).

Streams are lazy by contract: a conforming implementation holds O(1)
state per host regardless of how many requests it serves, which is what
lets trace replay push millions of records through without materialising
them (the conformance battery's constant-memory check pins this per
registered key).

The engine also keeps a windowed item histogram — every drawn item is
:meth:`noted <WorkloadEngine.note>` — so the observability sampler can
report per-window request rate and hot-set entropy without touching any
RNG (sampling a run never perturbs it).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    import numpy as np

    from repro.core.config import SimulationConfig
    from repro.sim.random import RandomStreams

try:  # Protocol is typing-only; runtime use is pure duck typing.
    from typing import Protocol
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "HostStream",
    "PatternStream",
    "REQUIRED",
    "WorkloadEngine",
    "demand_stream",
    "resolve_params",
]

#: Sentinel default for a workload parameter that must be supplied.
REQUIRED = object()


def demand_stream(streams: "RandomStreams") -> "np.random.Generator":
    """The shared item-draw stream every workload engine consumes.

    This is the legacy ``"workload"`` stream — the one
    :func:`~repro.data.workload.build_access_patterns` historically drew
    from — and this helper is its single owner: every engine derives it
    here, so no two modules can couple to the name independently (the
    ``rng-shared-stream`` project lint pins this).
    """
    return streams.stream("workload")


class HostStream(Protocol):
    """What one mobile host pulls its requests from."""

    def next_delay(self, now: float) -> float:
        """Think time before the next request, from simulated ``now``."""

    def next_item(self, now: float) -> int:
        """The next requested item id (call after :meth:`next_delay`)."""


def resolve_params(
    key: str,
    given: Dict[str, object],
    defaults: Dict[str, object],
) -> Dict[str, object]:
    """Merge ``workload_params`` over a workload's declared defaults.

    Unknown and missing-required parameters raise pinned ``ValueError``
    messages naming the workload and every known parameter, so a typo'd
    config is self-explaining.
    """
    known = ", ".join(sorted(defaults)) or "(none)"
    for name in given:
        if name not in defaults:
            raise ValueError(
                f"unknown workload param {name!r} for {key!r}; known: {known}"
            )
    params = dict(defaults)
    params.update(given)
    for name, value in params.items():
        if value is REQUIRED:
            raise ValueError(f"workload {key!r} requires param {name!r}")
    return params


class WorkloadEngine:
    """Base class of every registered workload.

    Subclasses set :attr:`key` (their registry key) and
    :attr:`PARAM_DEFAULTS` (their ``workload_params`` schema; use
    :data:`REQUIRED` for mandatory entries) and implement :meth:`bind`.
    """

    key: str = ""
    PARAM_DEFAULTS: Dict[str, object] = {}

    def __init__(
        self,
        config: "SimulationConfig",
        streams: "RandomStreams",
        group_of: List[int],
    ) -> None:
        self.config = config
        self.streams = streams
        self.group_of = list(group_of)
        self.params = resolve_params(
            self.key, config.workload_params, self.PARAM_DEFAULTS
        )
        self._window_counts: Dict[int, int] = {}
        self._window_requests = 0

    def bind(self, index: int, rng: "np.random.Generator") -> HostStream:
        """The request stream of host ``index``.

        ``rng`` is the host's own ``client-{index}`` stream — the one the
        legacy loop drew think times from — so a workload that keeps its
        delay draws there replays bit-identically.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ window accounting

    def note(self, item: int) -> None:
        """Count one drawn item into the current observation window.

        Pure counting — no RNG, no events — so noted and unnoted runs
        are bit-identical (the sampler-identity property test pins this).
        """
        self._window_requests += 1
        counts = self._window_counts
        counts[item] = counts.get(item, 0) + 1

    def take_window(self) -> Tuple[int, float]:
        """``(requests, hot-set entropy in bits)`` since the last call.

        Resets the window.  Entropy is the Shannon entropy of the item
        histogram: high when demand is spread, collapsing toward 0 during
        a flash-crowd spike — which is what makes non-stationarity a
        reportable time-series column.
        """
        requests = self._window_requests
        entropy = 0.0
        if requests:
            for count in self._window_counts.values():
                p = count / requests
                entropy -= p * math.log2(p)
        self._window_counts = {}
        self._window_requests = 0
        return requests, entropy


class PatternStream:
    """Adapter: a bare legacy ``AccessPattern`` as a :class:`HostStream`.

    Wraps the exact legacy draw pair — think time from the host's own
    rng, item from the pattern's shared rng — for callers (tests, direct
    :class:`~repro.core.client.MobileHost` construction) that still pass
    an ``AccessPattern`` instead of a bound stream.
    """

    __slots__ = ("pattern", "rng", "mean")

    def __init__(self, pattern, rng: "np.random.Generator", mean: float) -> None:
        self.pattern = pattern
        self.rng = rng
        self.mean = float(mean)

    def next_delay(self, now: float) -> float:
        return self.rng.exponential(self.mean)

    def next_item(self, now: float) -> int:
        return self.pattern.next_item()
