"""Synthetic non-stationary workloads: YCSB mixes, flash crowds, diurnal
rate modulation and popularity drift.

All four engines keep the legacy stream discipline — item draws from the
shared ``"workload"`` stream, think-time draws from each host's own
``client-{index}`` stream — so enabling one perturbs no other subsystem's
RNG sequence.  ``popularity-drift`` additionally draws its per-epoch rank
permutations from the dedicated ``"workload-drift"`` stream, and
``flash-crowd`` derives each spike's hot set from a per-spike named
stream (``workload-flash-{k}``), so hot sets are independent of which
host happens to enter the spike first.

The simulator models the *demand* side only: clients issue read-through
requests and the server database churns independently at
``data_update_rate``.  The YCSB mixes therefore collapse read/update/
insert operations to item choice — an "update" requests the item it
would have written (read-modify-write demand), and mix D's "insert"
advances a latest-item frontier — which is the standard mapping when
YCSB drives a cache simulator rather than a storage engine.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.data.workload import AccessPattern, build_access_patterns
from repro.data.zipf import ZipfGenerator
from repro.workloads.base import WorkloadEngine, demand_stream
from repro.workloads.registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.config import SimulationConfig
    from repro.sim.random import RandomStreams

__all__ = [
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "PopularityDriftWorkload",
    "YCSB_MIXES",
    "YCSBWorkload",
    "diurnal_rate_factor",
]


# --------------------------------------------------------------------- ycsb

#: Operation fractions (read, update, insert) per YCSB core workload.
#: A = update-heavy, B = read-mostly, C = read-only, D = read-latest.
YCSB_MIXES: Dict[str, Tuple[float, float, float]] = {
    "a": (0.5, 0.5, 0.0),
    "b": (0.95, 0.05, 0.0),
    "c": (1.0, 0.0, 0.0),
    "d": (0.95, 0.0, 0.05),
}


class _YCSBStream:
    __slots__ = ("engine", "rng", "mean")

    def __init__(self, engine: "YCSBWorkload", rng, mean: float) -> None:
        self.engine = engine
        self.rng = rng
        self.mean = float(mean)

    def next_delay(self, now: float) -> float:
        return self.rng.exponential(self.mean)

    def next_item(self, now: float) -> int:
        item = self.engine.draw_item()
        self.engine.note(item)
        return item


@register(
    "ycsb",
    summary="YCSB core mixes A-D (zipfian / read-latest request streams)",
    citation="Cooper et al., SoCC 2010",
)
class YCSBWorkload(WorkloadEngine):
    """YCSB-style request streams over the whole database.

    ``mix`` picks the operation fractions (:data:`YCSB_MIXES`); ``theta``
    is the zipfian request-distribution constant (YCSB's default 0.99).
    Mix D replaces the zipfian item choice with a "latest" distribution:
    a frontier of recently inserted items advances on insert operations
    and reads cluster zipf-fashion behind it.
    """

    key = "ycsb"
    PARAM_DEFAULTS: Dict[str, object] = {"mix": "a", "theta": 0.99}

    def __init__(
        self,
        config: "SimulationConfig",
        streams: "RandomStreams",
        group_of: List[int],
    ) -> None:
        super().__init__(config, streams, group_of)
        mix = self.params["mix"]
        if mix not in YCSB_MIXES:
            raise ValueError(
                f"unknown ycsb mix {mix!r}; known: {', '.join(sorted(YCSB_MIXES))}"
            )
        theta = float(self.params["theta"])  # type: ignore[arg-type]
        if theta < 0:
            raise ValueError("ycsb param 'theta' must be >= 0")
        self.mix = mix
        self.read, self.update, self.insert = YCSB_MIXES[mix]
        self.rng = demand_stream(streams)
        self._zipf = ZipfGenerator(self.rng, config.n_data, theta)
        # Mix D's latest-item frontier: one tenth of the database counts
        # as already inserted, so early reads have a window to cluster in.
        self._frontier = max(1, config.n_data // 10)

    def draw_item(self) -> int:
        """One operation's item, shared across hosts (one stream)."""
        n_data = self.config.n_data
        if self.mix == "c":
            # Read-only: no operation draw at all — pure zipfian reads.
            return self._zipf.sample()
        op = self.rng.random()
        if self.mix == "d" and op >= self.read:
            # Insert: the frontier advances and the new item is requested.
            self._frontier += 1
            return (self._frontier - 1) % n_data
        rank = self._zipf.sample()
        if self.mix == "d":
            # Read-latest: rank 0 is the newest item behind the frontier.
            return (self._frontier - 1 - (rank % self._frontier)) % n_data
        return rank  # zipfian: rank order doubles as item id order

    def bind(self, index: int, rng: "np.random.Generator") -> _YCSBStream:
        return _YCSBStream(self, rng, self.config.think_time_mean)


# -------------------------------------------------------------- flash crowd


class _FlashCrowdStream:
    __slots__ = ("engine", "pattern", "rng", "mean")

    def __init__(
        self, engine: "FlashCrowdWorkload", pattern: AccessPattern, rng, mean: float
    ) -> None:
        self.engine = engine
        self.pattern = pattern
        self.rng = rng
        self.mean = float(mean)

    def next_delay(self, now: float) -> float:
        return self.rng.exponential(self.mean)

    def next_item(self, now: float) -> int:
        item = self.engine.draw_item(self.pattern, now)
        self.engine.note(item)
        return item


@register(
    "flash-crowd",
    summary="stationary Zipf with transient global hot-set spikes",
)
class FlashCrowdWorkload(WorkloadEngine):
    """Baseline group-Zipf demand with periodic flash-crowd spikes.

    Every ``period`` seconds a spike lasting ``duration`` seconds makes
    all hosts request one of ``hot_items`` globally shared items with
    probability ``boost`` (the remainder falls through to the host's own
    Zipf window).  Each spike's hot set comes from its own named stream,
    so it is reproducible regardless of event interleaving.
    """

    key = "flash-crowd"
    PARAM_DEFAULTS: Dict[str, object] = {
        "period": 240.0,
        "duration": 40.0,
        "hot_items": 8,
        "boost": 0.8,
    }

    def __init__(
        self,
        config: "SimulationConfig",
        streams: "RandomStreams",
        group_of: List[int],
    ) -> None:
        super().__init__(config, streams, group_of)
        self.period = float(self.params["period"])  # type: ignore[arg-type]
        self.duration = float(self.params["duration"])  # type: ignore[arg-type]
        self.hot_items = int(self.params["hot_items"])  # type: ignore[arg-type]
        self.boost = float(self.params["boost"])  # type: ignore[arg-type]
        if self.period <= 0:
            raise ValueError("flash-crowd param 'period' must be positive")
        if not 0 < self.duration <= self.period:
            raise ValueError(
                "flash-crowd param 'duration' must be in (0, period]"
            )
        if self.hot_items < 1:
            raise ValueError("flash-crowd param 'hot_items' must be >= 1")
        if not 0.0 <= self.boost <= 1.0:
            raise ValueError("flash-crowd param 'boost' must be in [0, 1]")
        self.rng = demand_stream(streams)
        self.patterns = build_access_patterns(
            self.rng,
            self.group_of,
            config.n_data,
            config.access_range,
            config.theta,
        )
        # Only the current spike's hot set is kept (constant memory); a
        # revisited spike index regenerates the same set from its stream.
        self._hot_spike = -1
        self._hot_set: Optional["np.ndarray"] = None

    def spike_index(self, now: float) -> int:
        """The active spike's index, or -1 outside every spike window."""
        k = int(now // self.period)
        return k if (now - k * self.period) < self.duration else -1

    def hot_set(self, spike: int) -> "np.ndarray":
        """Spike ``spike``'s shared hot items (derived, order-independent)."""
        if spike != self._hot_spike:
            rng = self.streams.stream(f"workload-flash-{spike}")
            self._hot_spike = spike
            self._hot_set = rng.integers(0, self.config.n_data, size=self.hot_items)
        return self._hot_set

    def draw_item(self, pattern: AccessPattern, now: float) -> int:
        spike = self.spike_index(now)
        if spike >= 0 and self.rng.random() < self.boost:
            hot = self.hot_set(spike)
            return int(hot[int(self.rng.integers(0, len(hot)))])
        return pattern.next_item()

    def bind(self, index: int, rng: "np.random.Generator") -> _FlashCrowdStream:
        return _FlashCrowdStream(
            self, self.patterns[index], rng, self.config.think_time_mean
        )


# ------------------------------------------------------------------ diurnal


def diurnal_rate_factor(now: float, amplitude: float, period: float) -> float:
    """The sinusoidal request-rate multiplier at simulated ``now``.

    Averages to exactly 1 over a full period, so the modulated process
    keeps the configured mean request rate (pinned by the Hypothesis
    mean-rate property test).
    """
    return 1.0 + amplitude * math.sin(2.0 * math.pi * now / period)


class _DiurnalStream:
    __slots__ = ("engine", "pattern", "rng", "mean")

    def __init__(
        self, engine: "DiurnalWorkload", pattern: AccessPattern, rng, mean: float
    ) -> None:
        self.engine = engine
        self.pattern = pattern
        self.rng = rng
        self.mean = float(mean)

    def next_delay(self, now: float) -> float:
        factor = diurnal_rate_factor(now, self.engine.amplitude, self.engine.period)
        return self.rng.exponential(self.mean) / factor

    def next_item(self, now: float) -> int:
        item = self.pattern.next_item()
        self.engine.note(item)
        return item


@register(
    "diurnal",
    summary="sinusoidal request-rate modulation of the stationary process",
)
class DiurnalWorkload(WorkloadEngine):
    """Stationary Zipf items with a day/night request-rate cycle.

    Think times are the legacy exponential draws divided by
    :func:`diurnal_rate_factor`, so the instantaneous request rate swings
    by ``±amplitude`` around the configured mean over each ``period``.
    """

    key = "diurnal"
    PARAM_DEFAULTS: Dict[str, object] = {"amplitude": 0.5, "period": 400.0}

    def __init__(
        self,
        config: "SimulationConfig",
        streams: "RandomStreams",
        group_of: List[int],
    ) -> None:
        super().__init__(config, streams, group_of)
        self.amplitude = float(self.params["amplitude"])  # type: ignore[arg-type]
        self.period = float(self.params["period"])  # type: ignore[arg-type]
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("diurnal param 'amplitude' must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("diurnal param 'period' must be positive")
        self.patterns = build_access_patterns(
            demand_stream(streams),
            self.group_of,
            config.n_data,
            config.access_range,
            config.theta,
        )

    def bind(self, index: int, rng: "np.random.Generator") -> _DiurnalStream:
        return _DiurnalStream(
            self, self.patterns[index], rng, self.config.think_time_mean
        )


# ---------------------------------------------------------- popularity drift


class _DriftStream:
    __slots__ = ("engine", "pattern", "rng", "mean")

    def __init__(
        self,
        engine: "PopularityDriftWorkload",
        pattern: AccessPattern,
        rng,
        mean: float,
    ) -> None:
        self.engine = engine
        self.pattern = pattern
        self.rng = rng
        self.mean = float(mean)

    def next_delay(self, now: float) -> float:
        return self.rng.exponential(self.mean)

    def next_item(self, now: float) -> int:
        perm = self.engine.permutation(now)
        item = self.pattern.item_for_rank(int(perm[self.pattern.next_rank()]))
        self.engine.note(item)
        return item


@register(
    "popularity-drift",
    summary="periodic rank reshuffles; marginal Zipf skew is preserved",
    citation="cf. Wang & Kulkarni, popularity-ranked DTN caching",
)
class PopularityDriftWorkload(WorkloadEngine):
    """Content churn: which item holds which rank reshuffles per epoch.

    Every ``period`` seconds the rank-to-offset mapping inside each
    group's access window is re-drawn from the dedicated
    ``"workload-drift"`` stream.  The *marginal* distribution over ranks
    is untouched — the process stays exactly as skewed as the stationary
    workload — but the identity of the hot items churns, which is the
    regime where signature-based cooperative caching has to re-learn.
    """

    key = "popularity-drift"
    PARAM_DEFAULTS: Dict[str, object] = {"period": 300.0}

    def __init__(
        self,
        config: "SimulationConfig",
        streams: "RandomStreams",
        group_of: List[int],
    ) -> None:
        super().__init__(config, streams, group_of)
        self.period = float(self.params["period"])  # type: ignore[arg-type]
        if self.period <= 0:
            raise ValueError("popularity-drift param 'period' must be positive")
        self.patterns = build_access_patterns(
            demand_stream(streams),
            self.group_of,
            config.n_data,
            config.access_range,
            config.theta,
        )
        self._drift_rng = streams.stream("workload-drift")
        self._epoch = -1
        self._perm: Optional["np.ndarray"] = None

    def permutation(self, now: float) -> "np.ndarray":
        """The rank permutation of the epoch containing ``now``.

        Epochs advance monotonically with simulated time, and skipped
        epochs still consume their permutation draw, so the mapping at
        any instant is independent of which host asked first.
        """
        epoch = int(now // self.period)
        while self._epoch < epoch:
            self._epoch += 1
            self._perm = self._drift_rng.permutation(self.config.access_range)
        return self._perm

    def bind(self, index: int, rng: "np.random.Generator") -> _DriftStream:
        return _DriftStream(
            self, self.patterns[index], rng, self.config.think_time_mean
        )
