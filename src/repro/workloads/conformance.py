"""The conformance battery every registered workload must pass.

One small simulated run plus one direct stream-draw harness per key,
checked four ways:

* **smoke** — a full simulation completes and its outcome counts sum to
  the total;
* **seed stability** — the same config run twice is bit-identical
  (:func:`~repro.check.golden.results_to_dict` compared field by field);
* **round trip** — the config survives ``as_dict``/``from_dict`` and the
  rebuilt config resolves to the same workload key;
* **constant memory** — drawing thousands of requests through every
  bound host stream allocates a bounded number of bytes beyond a warm
  prefix (``tracemalloc`` peak delta), pinning the lazy-stream contract
  of :mod:`repro.workloads.base`.

Both ``tests/test_workload_conformance.py`` (auto-parametrised over
:func:`conformance_keys`) and ``tools/workload_matrix.py`` (the CI
matrix job) drive runs through :func:`run_conformance`, so a workload
added with one ``@register`` line is battery-covered with no further
wiring.

``trace-replay`` needs a trace file; the battery synthesizes one
deterministic CSV per process (named streams, no ad-hoc RNG) under a
temporary directory.
"""

from __future__ import annotations

import tempfile
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.check.golden import results_to_dict
from repro.core.config import SimulationConfig
from repro.core.simulation import run_simulation
from repro.sim.random import RandomStreams
from repro.workloads import registry
from repro.workloads.factory import build_workload, resolved_workload_key

__all__ = [
    "CONSTANT_MEMORY_BOUND",
    "WorkloadReport",
    "conformance_config",
    "conformance_keys",
    "run_conformance",
    "synthesize_trace",
]

#: Allowed ``tracemalloc`` peak growth (bytes) while drawing the
#: measured segment of the constant-memory check.  Generous against the
#: ~tens of KiB a conforming stream actually allocates, tight against
#: the O(requests) blow-up of an eager implementation.
CONSTANT_MEMORY_BOUND = 512 * 1024

_WARM_DRAWS = 1_500
_MEASURED_DRAWS = 6_000


@dataclass
class WorkloadReport:
    """Outcome of one workload's battery run."""

    key: str
    passed: bool
    checks: Dict[str, bool] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    hit_ratio: float = 0.0
    memory_delta: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "passed": self.passed,
            "checks": dict(self.checks),
            "failures": list(self.failures),
            "hit_ratio": self.hit_ratio,
            "memory_delta": self.memory_delta,
        }


def conformance_keys() -> List[str]:
    """Every registered workload key the battery must cover."""
    return registry.available()


def synthesize_trace(
    path: Path,
    *,
    n_records: int = 2_000,
    n_clients: int = 6,
    n_data: int = 120,
    seed: int = 77,
) -> Path:
    """Write a small deterministic CSV trace (named streams, no ad-hoc RNG)."""
    rng = RandomStreams(seed).stream("conformance-trace")
    now = 0.0
    with path.open("w", encoding="utf-8") as handle:
        handle.write("t,host,item\n")
        for _ in range(n_records):
            now += float(rng.exponential(2.0))
            host = int(rng.integers(0, n_clients))
            item = int(rng.integers(0, n_data))
            handle.write(f"{now:.6f},{host},{item}\n")
    return path


_trace_dir: Optional[Path] = None


def _battery_trace() -> Path:
    """The per-process synthetic trace backing the ``trace-replay`` runs."""
    global _trace_dir
    if _trace_dir is None:
        _trace_dir = Path(tempfile.mkdtemp(prefix="repro-workload-conformance-"))
    trace = _trace_dir / "battery.csv"
    if not trace.exists():
        synthesize_trace(trace)
    return trace


def conformance_config(key: str) -> SimulationConfig:
    """A small config that genuinely exercises workload ``key``.

    Same scale as the policy battery: tight caches, a narrow access
    range, enough simulated time that non-stationary workloads cross
    several periods/spikes/epochs.
    """
    params: Dict[str, object] = {}
    if key == "trace-replay":
        params = {"path": str(_battery_trace())}
    return SimulationConfig(
        n_clients=6,
        n_data=120,
        access_range=30,
        cache_size=6,
        group_size=3,
        data_update_rate=0.2,
        measure_requests=5,
        warmup_min_time=20.0,
        warmup_max_time=40.0,
        max_sim_time=400.0,
        ndp_enabled=False,
        seed=11,
        workload=key,
        workload_params=params,
    )


def measure_stream_memory(
    config: SimulationConfig,
    *,
    warm_draws: int = _WARM_DRAWS,
    measured_draws: int = _MEASURED_DRAWS,
) -> int:
    """Peak ``tracemalloc`` growth (bytes) over the measured draw segment.

    Builds the configured engine outside any simulation, binds every
    host, then pulls ``(next_delay, next_item)`` pairs round-robin —
    first a warm segment (caches, buffers, lazy tables fill), then a
    measured segment after ``reset_peak``.  A lazy stream's delta stays
    flat no matter how large the measured segment is.
    """
    streams = RandomStreams(config.seed)
    group_of = [index // config.group_size for index in range(config.n_clients)]
    tracemalloc.start()
    try:
        engine = build_workload(config, streams, group_of)
        # Deliberately NOT the simulation's "client-{index}" streams:
        # this harness only needs determinism, and naming its own streams
        # keeps each named stream single-owner (rng-shared-stream lint).
        hosts = [
            engine.bind(index, streams.stream(f"workload-mem-{index}"))
            for index in range(config.n_clients)
        ]
        clocks = [0.0] * len(hosts)

        def draw(count: int) -> None:
            for step in range(count):
                index = step % len(hosts)
                clocks[index] += hosts[index].next_delay(clocks[index])
                hosts[index].next_item(clocks[index])
                if step % 500 == 499:
                    engine.take_window()

        draw(warm_draws)
        tracemalloc.reset_peak()
        baseline = tracemalloc.get_traced_memory()[0]
        draw(measured_draws)
        peak = tracemalloc.get_traced_memory()[1]
        return max(0, peak - baseline)
    finally:
        tracemalloc.stop()


def run_conformance(key: str) -> WorkloadReport:
    """Run the full battery for one registered workload."""
    report = WorkloadReport(key=key, passed=True)

    def check(name: str, ok: bool, detail: str = "") -> None:
        report.checks[name] = bool(ok)
        if not ok:
            report.passed = False
            report.failures.append(f"{name}: {detail}" if detail else name)

    config = conformance_config(key)

    results = run_simulation(config)
    total = results.requests
    outcome_sum = (
        results.local_hits
        + results.global_hits
        + results.server_requests
        + results.failures
    )
    check(
        "smoke",
        total > 0 and outcome_sum == total,
        f"total={total} outcome_sum={outcome_sum}",
    )
    report.hit_ratio = results.lch_ratio + results.gch_ratio

    first = results_to_dict(results)
    second = results_to_dict(run_simulation(config))
    drift = [name for name in first if first[name] != second.get(name)]
    check("seed_stable", first == second, f"drifting fields: {drift[:5]}")

    rebuilt = SimulationConfig.from_dict(config.as_dict())
    check(
        "round_trip",
        rebuilt == config
        and resolved_workload_key(rebuilt) == resolved_workload_key(config),
        "config or resolved workload key changed across as_dict/from_dict",
    )

    report.memory_delta = measure_stream_memory(config)
    check(
        "constant_memory",
        report.memory_delta < CONSTANT_MEMORY_BOUND,
        f"peak delta {report.memory_delta} bytes >= {CONSTANT_MEMORY_BOUND}",
    )
    return report
