"""Streaming workload engines behind a string-keyed registry.

The request stream a simulation replays is a first-class, swappable
axis — same machinery as ``repro.policies``: registered engines are
discovered lazily, resolved by key, and validated by a shared
conformance battery.  ``config.workload = ""`` keeps the legacy
stationary group-Zipf process, bit-identically.
"""

from repro.workloads.base import (
    REQUIRED,
    HostStream,
    PatternStream,
    WorkloadEngine,
    resolve_params,
)
from repro.workloads.factory import (
    DEFAULT_WORKLOAD,
    build_workload,
    resolved_workload_key,
)
from repro.workloads.registry import (
    WorkloadInfo,
    available,
    describe,
    entries,
    register,
    register_value,
    resolve,
    temporary_workload,
)

__all__ = [
    "DEFAULT_WORKLOAD",
    "HostStream",
    "PatternStream",
    "REQUIRED",
    "WorkloadEngine",
    "WorkloadInfo",
    "available",
    "build_workload",
    "describe",
    "entries",
    "register",
    "register_value",
    "resolve",
    "resolved_workload_key",
    "temporary_workload",
]
