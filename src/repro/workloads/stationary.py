"""The legacy stationary Zipf workload, behind the registry.

``stationary-zipf`` is the paper's Section V-B demand process and the
resolution target of ``workload=""``: group-shared access windows with
Zipf-ranked popularity, exponential think times.  It is **structurally
bit-identical** to the pre-registry path — the same
:func:`~repro.data.workload.build_access_patterns` call against the same
shared ``"workload"`` stream, the same per-host think-time draws against
the host's own ``client-{index}`` stream, in the same kernel order — so
all four golden fixtures replay without a re-record (pinned by
``tests/test_workload_differential.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.data.workload import AccessPattern, build_access_patterns
from repro.workloads.base import WorkloadEngine, demand_stream
from repro.workloads.registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.config import SimulationConfig
    from repro.sim.random import RandomStreams

__all__ = ["StationaryZipfWorkload", "ZipfHostStream"]


class ZipfHostStream:
    """One host's view of a stationary Zipf engine."""

    __slots__ = ("engine", "pattern", "rng", "mean")

    def __init__(
        self,
        engine: WorkloadEngine,
        pattern: AccessPattern,
        rng: "np.random.Generator",
        mean: float,
    ) -> None:
        self.engine = engine
        self.pattern = pattern
        self.rng = rng
        self.mean = float(mean)

    def next_delay(self, now: float) -> float:
        return self.rng.exponential(self.mean)

    def next_item(self, now: float) -> int:
        item = self.pattern.next_item()
        self.engine.note(item)
        return item


@register(
    "stationary-zipf",
    summary="the paper's stationary group-Zipf process (the legacy default)",
    citation="Chow, Leong & Chan, ICDCS 2004, Section V-B",
)
class StationaryZipfWorkload(WorkloadEngine):
    """Group-shared Zipf windows, exponential think times."""

    key = "stationary-zipf"
    PARAM_DEFAULTS: dict = {}

    def __init__(
        self,
        config: "SimulationConfig",
        streams: "RandomStreams",
        group_of: List[int],
    ) -> None:
        super().__init__(config, streams, group_of)
        self.patterns = build_access_patterns(
            demand_stream(streams),
            self.group_of,
            config.n_data,
            config.access_range,
            config.theta,
        )

    def bind(self, index: int, rng: "np.random.Generator") -> ZipfHostStream:
        return ZipfHostStream(
            self, self.patterns[index], rng, self.config.think_time_mean
        )
