"""String-keyed workload registry (ROADMAP item 4).

The demand side of a simulation — which item each mobile host requests
next, and when — is looked up here by key instead of being hard-wired to
one stationary Zipf process, the way Icarus hosts its workload iterators
behind ``@register_workload``.  Adding a workload is one decorated
definition::

    from repro.workloads.registry import register

    @register("flash-crowd", summary="transient hot-set spikes")
    def _build_flash_crowd(config, streams, group_of):
        return FlashCrowdWorkload(config, streams, group_of)

Every registered key is automatically picked up by the conformance
battery (:mod:`repro.workloads.conformance`), the differential test, the
sweep surface (``sweep_workload``) and ``repro workloads list`` — a
workload that does not pass the battery fails CI.

A registered value is a builder ``(config, streams, group_of) ->
WorkloadEngine`` (see :mod:`repro.workloads.base` for the engine and
per-host stream contracts).  Builtin workloads load lazily on the first
:func:`available`/:func:`resolve` call, mirroring
:mod:`repro.policies.registry`, so importing this module stays cheap and
cycle-free (``repro.core.config`` imports it for key validation).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List

__all__ = [
    "WorkloadInfo",
    "available",
    "describe",
    "entries",
    "register",
    "register_value",
    "resolve",
    "temporary_workload",
]


@dataclass(frozen=True)
class WorkloadInfo:
    """One registered workload: its key, builder and catalogue metadata."""

    key: str
    value: Any
    summary: str = ""
    citation: str = ""


_REGISTRY: Dict[str, WorkloadInfo] = {}
_builtins_loaded = False


def _load_builtins() -> None:
    """Import the builtin workload modules (registration is import-driven).

    Imported here, not at module top, to avoid cycles: the workload
    modules import this module for the decorator, and
    ``repro.core.config`` imports this module for key validation.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.workloads import (  # noqa: F401
        stationary,
        synthetic,
        trace,
    )


def register_value(
    key: str,
    value: Any,
    *,
    summary: str = "",
    citation: str = "",
) -> Any:
    """Register ``value`` under ``key``; returns ``value``.

    Raises ``ValueError`` on a duplicate key — workloads are registered
    exactly once, so resolution can never depend on registration order.
    """
    if not isinstance(key, str) or not key:
        raise ValueError(f"workload key must be a non-empty string, got {key!r}")
    if key in _REGISTRY:
        raise ValueError(f"duplicate workload {key!r}")
    _REGISTRY[key] = WorkloadInfo(
        key=key, value=value, summary=summary, citation=citation
    )
    return value


def register(
    key: str,
    *,
    summary: str = "",
    citation: str = "",
) -> Callable[[Any], Any]:
    """Decorator form of :func:`register_value`::

        @register("diurnal", summary="...")
        def _build_diurnal(config, streams, group_of):
            return DiurnalWorkload(config, streams, group_of)
    """

    def decorator(value: Any) -> Any:
        return register_value(key, value, summary=summary, citation=citation)

    return decorator


def available() -> List[str]:
    """The registered workload keys, sorted."""
    _load_builtins()
    return sorted(_REGISTRY)


def describe(key: str) -> WorkloadInfo:
    """The :class:`WorkloadInfo` behind ``key``.

    The ``KeyError`` for an unknown key lists every valid key verbatim,
    so a typo'd config or CLI flag is self-explaining.
    """
    _load_builtins()
    info = _REGISTRY.get(key)
    if info is None:
        raise KeyError(
            f"unknown workload {key!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return info


def resolve(key: str) -> Any:
    """The registered builder behind ``key``."""
    return describe(key).value


def entries() -> List[WorkloadInfo]:
    """Every :class:`WorkloadInfo`, sorted by key."""
    _load_builtins()
    return [info for _, info in sorted(_REGISTRY.items())]


@contextmanager
def temporary_workload(
    key: str,
    value: Any,
    *,
    summary: str = "",
    citation: str = "",
) -> Iterator[WorkloadInfo]:
    """Register a workload for the duration of a ``with`` block (tests).

    The entry is removed on exit even when the block raises, so property
    tests can register throwaway workloads without polluting the process
    registry.
    """
    register_value(key, value, summary=summary, citation=citation)
    try:
        yield _REGISTRY[key]
    finally:
        _REGISTRY.pop(key, None)
