"""Build the configured workload engine for a simulation run.

``config.workload == ""`` (the default everywhere) resolves to
``stationary-zipf`` — the registry-hosted twin of the legacy demand
path — so untouched configs, golden fixtures and published sweeps
replay bit-identically with zero opt-in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.workloads import registry
from repro.workloads.base import WorkloadEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import SimulationConfig
    from repro.sim.random import RandomStreams

__all__ = ["DEFAULT_WORKLOAD", "build_workload", "resolved_workload_key"]

#: What the empty-string legacy default resolves to.
DEFAULT_WORKLOAD = "stationary-zipf"


def resolved_workload_key(config: "SimulationConfig") -> str:
    """The registry key a config's workload actually resolves to."""
    return config.workload or DEFAULT_WORKLOAD


def build_workload(
    config: "SimulationConfig",
    streams: "RandomStreams",
    group_of: List[int],
) -> WorkloadEngine:
    """Instantiate the engine named by ``config.workload``."""
    factory = registry.resolve(resolved_workload_key(config))
    return factory(config, streams, group_of)
