"""Per-peer health tracking for the failure-aware retrieve path.

ROADMAP item 5 (absim-style adaptive replica selection): once the fault
layer can lose frames and crash hosts, *which replier a host retrieves
from* matters as much as what it caches.  Each :class:`MobileHost` owns a
:class:`PeerHealthTracker` holding, per peer it has ever retrieved from:

* an EWMA of observed retrieve latency (and a derived quantile estimate
  used to time hedged second requests),
* an EWMA failure rate (1.0 per failed retrieve, 0.0 per served one),
* the outstanding-request count (retrieves in flight to that peer),
* an EWMA power cost (reply-path hop count — each extra hop costs every
  relay's radio),
* a :class:`CircuitBreaker` so a known-dead replier is skipped instead
  of timed out against.

Repliers are ranked by a pluggable string-keyed scoring policy from
:data:`SCORING_POLICIES`; ``arrival`` reproduces today's first-reply
behaviour exactly and is the golden-trace default.  The module is pure
bookkeeping — it never touches the kernel, draws randomness only through
the generator handed to it (``epsilon-greedy``), and is only constructed
when :attr:`~repro.core.config.SimulationConfig.health_enabled` is true,
so disabled runs take zero new branches and stay bit-identical.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.policies import registry

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "Ewma",
    "PeerHealth",
    "PeerHealthTracker",
    "SCORING_POLICIES",
]

#: The breaker's three states (see :class:`CircuitBreaker`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"
BREAKER_STATES: Tuple[str, ...] = (CLOSED, OPEN, HALF_OPEN)

#: The only legal breaker transitions; the invariant monitor checks every
#: notified transition against this set.
LEGAL_TRANSITIONS: Tuple[Tuple[str, str], ...] = (
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, CLOSED),
    (HALF_OPEN, OPEN),
)


class Ewma:
    """Exponentially weighted moving average; ``None`` until first observation."""

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None

    def observe(self, sample: float) -> None:
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)


class CircuitBreaker:
    """Per-peer circuit breaker: closed → open → half-open probe.

    Contract (the Hypothesis state machine in ``tests/test_net_health.py``
    exercises it over arbitrary sequences):

    * **closed** — attempts flow freely; ``threshold`` *consecutive*
      failures trip the breaker open (a success resets the streak).
    * **open** — no attempts until ``cooldown`` simulated seconds after
      the trip; the first attempt after the cooldown transitions to
      half-open and becomes the probe.
    * **half-open** — exactly one probe may be in flight; its success
      closes the breaker, its failure re-opens it (counted as a fresh
      trip).  Stale outcomes of pre-trip attempts that resolve while the
      breaker is open are ignored — they describe the past.

    Transitions are returned from the mutating calls (never invented
    elsewhere) so the client can mirror every one into the tracer, the
    metrics and the invariant monitor.
    """

    def __init__(self, threshold: int, cooldown: float) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0.0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = -math.inf
        self.probe_in_flight = False
        self.trips = 0
        self.probes = 0

    def can_attempt(self, now: float) -> bool:
        """Whether a retrieve may be sent to this peer right now."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return now >= self.opened_at + self.cooldown
        return not self.probe_in_flight

    def begin_attempt(self, now: float) -> List[Tuple[str, str]]:
        """Note a retrieve being sent; must only follow ``can_attempt``."""
        if not self.can_attempt(now):
            raise RuntimeError(f"attempt while breaker is {self.state}")
        transitions: List[Tuple[str, str]] = []
        if self.state == OPEN:
            # Cooldown elapsed: this attempt is the half-open probe.
            self.state = HALF_OPEN
            self.probe_in_flight = False
            transitions.append((OPEN, HALF_OPEN))
        if self.state == HALF_OPEN:
            self.probe_in_flight = True
            self.probes += 1
        return transitions

    def record_success(self, now: float) -> List[Tuple[str, str]]:
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.probe_in_flight = False
            self.consecutive_failures = 0
            return [(HALF_OPEN, CLOSED)]
        if self.state == CLOSED:
            self.consecutive_failures = 0
        return []  # stale success while open: ignored

    def record_failure(self, now: float) -> List[Tuple[str, str]]:
        if self.state == HALF_OPEN:
            self._trip(now)
            return [(HALF_OPEN, OPEN)]
        if self.state == CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.threshold:
                self._trip(now)
                return [(CLOSED, OPEN)]
        return []  # stale failure while open: ignored

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.opened_at = now
        self.probe_in_flight = False
        self.consecutive_failures = 0
        self.trips += 1


class PeerHealth:
    """One peer's health state as seen by one host."""

    def __init__(self, alpha: float, breaker: Optional[CircuitBreaker]) -> None:
        self.latency = Ewma(alpha)
        self.failure_rate = Ewma(alpha)
        self.power = Ewma(alpha)  # reply-path hop count
        self.pending = 0
        self.breaker = breaker

    def expected_latency(self) -> float:
        """absim-style score: queue-aware expected response time.

        An unknown peer scores 0 — optimistically explored first, so the
        tracker bootstraps estimates instead of starving fresh repliers.
        """
        known = self.latency.value if self.latency.value is not None else 0.0
        return (self.pending + 1) * known


#: A scoring policy picks one reply from the breaker-admitted candidates
#: (arrival order preserved); ties break toward arrival order so every
#: policy is deterministic.
ScoringPolicy = Callable[[List[dict], "PeerHealthTracker"], dict]


def _policy_arrival(candidates: List[dict], tracker: "PeerHealthTracker") -> dict:
    """Today's behaviour: the first reply to arrive wins."""
    return candidates[0]


def _policy_least_pending(
    candidates: List[dict], tracker: "PeerHealthTracker"
) -> dict:
    """Fewest outstanding retrieves (absim's queue-length signal)."""
    return min(
        enumerate(candidates),
        key=lambda pair: (tracker.peer(pair[1]["peer"]).pending, pair[0]),
    )[1]


def _policy_latency_aware(
    candidates: List[dict], tracker: "PeerHealthTracker"
) -> dict:
    """Lowest queue-adjusted EWMA latency."""
    return min(
        enumerate(candidates),
        key=lambda pair: (
            tracker.peer(pair[1]["peer"]).expected_latency(),
            pair[0],
        ),
    )[1]


def _policy_power_aware(
    candidates: List[dict], tracker: "PeerHealthTracker"
) -> dict:
    """Shortest reply path first (every extra hop taxes relay radios),
    breaking ties by queue-adjusted latency."""
    return min(
        enumerate(candidates),
        key=lambda pair: (
            len(pair[1]["path"]) - 1,
            tracker.peer(pair[1]["peer"]).expected_latency(),
            pair[0],
        ),
    )[1]


def _policy_epsilon_greedy(
    candidates: List[dict], tracker: "PeerHealthTracker"
) -> dict:
    """Explore a uniform candidate with probability ε, else exploit
    the latency-aware ranking.  Draws come from the tracker's dedicated
    ``peer-policy`` stream so other subsystems' sequences never shift."""
    rng = tracker.rng
    if rng is None:
        raise RuntimeError("epsilon-greedy policy needs a random stream")
    if rng.random() < tracker.epsilon:
        return candidates[int(rng.integers(len(candidates)))]
    return _policy_latency_aware(candidates, tracker)


SCORING_POLICIES: Dict[str, ScoringPolicy] = {
    "arrival": _policy_arrival,
    "least-pending": _policy_least_pending,
    "latency-aware": _policy_latency_aware,
    "power-aware": _policy_power_aware,
    "epsilon-greedy": _policy_epsilon_greedy,
}

# Mirror the scoring table into the policy registry's "peer-scoring"
# namespace so ``repro policies list`` and the conformance battery cover
# replier selection alongside the cache-policy axes.  The dict above
# stays the canonical store (the tracker resolves through it directly);
# each key keeps a literal registration site so static tooling can see
# the full key surface.
registry.register_value(
    "peer-scoring",
    "arrival",
    _policy_arrival,
    summary="first reply to arrive wins (golden-trace default)",
    citation="Chow, Leong & Chan, ICDCS'04 §III",
)
registry.register_value(
    "peer-scoring",
    "least-pending",
    _policy_least_pending,
    summary="fewest outstanding retrieves to the peer",
    citation="Suresh et al., NSDI'15 (C3/absim queue-length signal)",
)
registry.register_value(
    "peer-scoring",
    "latency-aware",
    _policy_latency_aware,
    summary="lowest queue-adjusted EWMA retrieve latency",
    citation="Suresh et al., NSDI'15 (C3 replica ranking)",
)
registry.register_value(
    "peer-scoring",
    "power-aware",
    _policy_power_aware,
    summary="shortest reply path first; latency breaks ties",
    citation="Chow, Leong & Chan, ICDCS'04 §V (power model)",
)
registry.register_value(
    "peer-scoring",
    "epsilon-greedy",
    _policy_epsilon_greedy,
    summary="explore a uniform replier with probability epsilon",
    citation="Sutton & Barto (epsilon-greedy bandit)",
)

#: Whole-run engagement counters every tracker maintains; surfaced as
#: ``health_*`` in :class:`~repro.sim.profile.RunProfile` counters.
COUNTER_NAMES: Tuple[str, ...] = (
    "hedges",
    "hedge_wins",
    "breaker_trips",
    "breaker_probes",
    "budget_exhausted",
    "fast_failovers",
)


class PeerHealthTracker:
    """One host's view of every peer it has retrieved from."""

    def __init__(
        self,
        alpha: float,
        breaker_threshold: int,
        breaker_cooldown: float,
        policy: str,
        epsilon: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if policy not in SCORING_POLICIES:
            raise ValueError(
                f"unknown scoring policy {policy!r}; "
                f"known: {sorted(SCORING_POLICIES)}"
            )
        self.alpha = alpha
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.policy = policy
        self.epsilon = epsilon
        self.rng = rng
        self._score = SCORING_POLICIES[policy]
        self._peers: Dict[int, PeerHealth] = {}
        self.counts: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    def peer(self, peer: int) -> PeerHealth:
        """The peer's health record, created on first contact."""
        health = self._peers.get(peer)
        if health is None:
            breaker = (
                CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)
                if self.breaker_threshold > 0
                else None
            )
            health = PeerHealth(self.alpha, breaker)
            self._peers[peer] = health
        return health

    # -- selection -------------------------------------------------------------

    def select(self, candidates: List[dict], now: float) -> Optional[dict]:
        """Rank the repliers whose breakers admit an attempt; ``None``
        when every candidate is circuit-broken (caller falls back to the
        MSS instead of burning a timeout against a known-dead peer)."""
        admitted = [
            reply
            for reply in candidates
            if self._can_attempt(reply["peer"], now)
        ]
        if not admitted:
            return None
        return self._score(admitted, self)

    def _can_attempt(self, peer: int, now: float) -> bool:
        health = self._peers.get(peer)
        if health is None or health.breaker is None:
            return True
        return health.breaker.can_attempt(now)

    # -- attempt lifecycle -----------------------------------------------------

    def begin_attempt(self, peer: int, now: float) -> Tuple[str, List[Tuple[str, str]]]:
        """Note a retrieve being sent; returns (breaker state, transitions)."""
        health = self.peer(peer)
        transitions: List[Tuple[str, str]] = []
        state = CLOSED
        if health.breaker is not None:
            transitions = health.breaker.begin_attempt(now)
            state = health.breaker.state
            if state == HALF_OPEN:
                self.counts["breaker_probes"] += 1
        health.pending += 1
        return state, transitions

    def record_success(
        self, peer: int, now: float, latency: float, hops: int
    ) -> List[Tuple[str, str]]:
        health = self.peer(peer)
        health.pending = max(0, health.pending - 1)
        health.latency.observe(latency)
        health.failure_rate.observe(0.0)
        health.power.observe(float(hops))
        if health.breaker is None:
            return []
        return health.breaker.record_success(now)

    def record_failure(self, peer: int, now: float) -> List[Tuple[str, str]]:
        health = self.peer(peer)
        health.pending = max(0, health.pending - 1)
        health.failure_rate.observe(1.0)
        transitions: List[Tuple[str, str]] = []
        if health.breaker is not None:
            transitions = health.breaker.record_failure(now)
        if any(new == OPEN for _old, new in transitions):
            self.counts["breaker_trips"] += 1
        return transitions

    def note_abandoned(self, peer: int) -> None:
        """A request stopped being waited for without a verdict (the
        losing side of a hedge race): release the slot, no penalty."""
        health = self.peer(peer)
        health.pending = max(0, health.pending - 1)

    def note(self, counter: str) -> None:
        """Bump one whole-run engagement counter (``hedges``, ...)."""
        self.counts[counter] += 1

    # -- hedging ---------------------------------------------------------------

    def hedge_delay(self, peer: int, quantile: float) -> Optional[float]:
        """How long to wait on ``peer`` before hedging: the ``quantile``
        of its latency estimate under an exponential model (the EWMA is
        the mean, so the q-quantile is ``-mean * ln(1 - q)``).  ``None``
        until the peer has a latency estimate — never hedge blind."""
        health = self._peers.get(peer)
        if health is None or health.latency.value is None:
            return None
        return health.latency.value * -math.log(1.0 - quantile)

    # -- reporting -------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Whole-run engagement totals (merged into the RunProfile)."""
        return dict(self.counts)
