"""Feeney–Nilsson power-consumption model (Table I of the paper).

Power for a P2P transmission is linear in the message size ``b`` (bytes):
``cost = v * b + f`` µW·s, with different (v, f) pairs for the source, the
destination, and bystanders that overhear and discard the message.  The
constants below are the paper's Table I (its ref [29]); the discard rows
have ``v = 0`` and the fixed costs 70 / 24 / 56 µW·s that survive in the
source text.

:class:`PowerLedger` accumulates per-host consumption split by *purpose*
(data path, signature scheme, beacons) so the power-per-GCH metric can
isolate the caching protocols exactly as the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = ["PowerLedger", "PowerModel", "PowerParameters"]

#: Accounting categories for the ledger.
PURPOSES: Tuple[str, ...] = ("data", "signature", "beacon")


@dataclass(frozen=True)
class PowerParameters:
    """(v, f) pairs in (µW·s/byte, µW·s) for every Table I row."""

    # Point-to-point rows.
    ptp_send_v: float = 1.9
    ptp_send_f: float = 454.0
    ptp_recv_v: float = 0.5
    ptp_recv_f: float = 356.0
    ptp_disc_sd_v: float = 0.0  # in range of both source and destination
    ptp_disc_sd_f: float = 70.0
    ptp_disc_s_v: float = 0.0  # in range of the source only
    ptp_disc_s_f: float = 24.0
    ptp_disc_d_v: float = 0.0  # in range of the destination only
    ptp_disc_d_f: float = 56.0
    # Broadcast rows.
    bc_send_v: float = 1.9
    bc_send_f: float = 266.0
    bc_recv_v: float = 0.5
    bc_recv_f: float = 56.0


class PowerModel:
    """Evaluates Table I for a message of ``b`` bytes."""

    def __init__(self, parameters: PowerParameters = PowerParameters()):
        self.parameters = parameters

    def ptp_send(self, size: int) -> float:
        return self.parameters.ptp_send_v * size + self.parameters.ptp_send_f

    def ptp_recv(self, size: int) -> float:
        return self.parameters.ptp_recv_v * size + self.parameters.ptp_recv_f

    def ptp_discard_sd(self, size: int) -> float:
        return self.parameters.ptp_disc_sd_v * size + self.parameters.ptp_disc_sd_f

    def ptp_discard_s(self, size: int) -> float:
        return self.parameters.ptp_disc_s_v * size + self.parameters.ptp_disc_s_f

    def ptp_discard_d(self, size: int) -> float:
        return self.parameters.ptp_disc_d_v * size + self.parameters.ptp_disc_d_f

    def bc_send(self, size: int) -> float:
        return self.parameters.bc_send_v * size + self.parameters.bc_send_f

    def bc_recv(self, size: int) -> float:
        return self.parameters.bc_recv_v * size + self.parameters.bc_recv_f


class PowerLedger:
    """Per-host accumulated power consumption in µW·s, split by purpose."""

    def __init__(self, n_hosts: int):
        if n_hosts < 1:
            raise ValueError("ledger needs at least one host")
        self.n_hosts = n_hosts
        self._by_purpose: Dict[str, np.ndarray] = {
            purpose: np.zeros(n_hosts) for purpose in PURPOSES
        }

    def charge(self, host: int, amount: float, purpose: str = "data") -> None:
        """Charge one host.  ``amount`` must be non-negative."""
        if amount < 0:
            raise ValueError(f"negative power charge {amount}")
        self._by_purpose[purpose][host] += amount

    def charge_many(
        self, hosts: Iterable[int], amount: float, purpose: str = "data"
    ) -> None:
        """Charge the same amount to several hosts (e.g. broadcast receivers)."""
        if amount < 0:
            raise ValueError(f"negative power charge {amount}")
        hosts = np.asarray(list(hosts) if not isinstance(hosts, np.ndarray) else hosts)
        if hosts.size:
            self._by_purpose[purpose][hosts] += amount

    def host_total(self, host: int) -> float:
        return float(sum(array[host] for array in self._by_purpose.values()))

    def total(self, purpose: str = None) -> float:
        """System-wide consumption, optionally for one purpose."""
        if purpose is not None:
            return float(self._by_purpose[purpose].sum())
        return float(sum(array.sum() for array in self._by_purpose.values()))

    def by_purpose(self) -> Dict[str, float]:
        return {
            purpose: float(array.sum()) for purpose, array in self._by_purpose.items()
        }

    def per_host_totals(self) -> np.ndarray:
        """Every host's total consumption across all purposes (µW·s).

        Used by the invariant monitor's power audit (non-negativity and
        conservation over the whole population in one vector read).
        """
        total = np.zeros(self.n_hosts)
        for array in self._by_purpose.values():
            total += array
        return total
