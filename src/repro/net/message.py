"""Message taxonomy and wire sizes for COCA/GroCoCa.

The protocols of Sections III and IV exchange the message kinds below.  Wire
sizes follow the paper where legible (data items are ``DataSize`` bytes) and
use small fixed control-message sizes otherwise; all sizes are configurable
via :class:`MessageSizes`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Dict, List, Optional

__all__ = ["Message", "MessageKind", "MessageSizes"]

_sequence = itertools.count()


class MessageKind(Enum):
    """Every message type used by COCA (III) and GroCoCa (IV)."""

    HELLO = auto()  # NDP beacon
    REQUEST = auto()  # P2P broadcast: "who caches item d?"
    REPLY = auto()  # P2P ptp: "I do"
    RETRIEVE = auto()  # P2P ptp: "send it to me"
    DATA = auto()  # P2P ptp: the data item
    SIG_REQUEST = auto()  # GroCoCa: ask TCG members for cache signatures
    SIG_REPLY = auto()  # GroCoCa: a (possibly compressed) cache signature
    SERVER_REQUEST = auto()  # uplink: pull an item from the MSS
    SERVER_REPLY = auto()  # downlink: item + TTL + TCG membership changes
    VALIDATE = auto()  # uplink: is my cached copy still fresh?
    VALIDATE_OK = auto()  # downlink: your copy is valid
    EXPLICIT_UPDATE = auto()  # uplink: idle-period location/history report
    MEMBERSHIP_SYNC = auto()  # uplink: TCG resync after reconnection


@dataclass(frozen=True)
class MessageSizes:
    """Wire sizes in bytes.

    ``data`` is the payload size of one database item (Table II's DataSize);
    a DATA or SERVER_REPLY message is ``header + data`` bytes.  Signature
    messages are sized by the (compressed) signature they carry and passed
    explicitly.
    """

    data: int = 3072
    header: int = 32
    hello: int = 32
    request: int = 64
    reply: int = 48
    retrieve: int = 48
    server_request: int = 96  # carries the piggybacked (x, y) location
    validate: int = 64
    validate_ok: int = 48
    sig_request: int = 64
    explicit_update_base: int = 96
    membership_sync: int = 64
    membership_entry: int = 8  # per TCG-change entry piggybacked downstream

    def data_message(self) -> int:
        return self.header + self.data

    def server_reply(self, membership_changes: int = 0) -> int:
        return self.header + self.data + membership_changes * self.membership_entry

    def sig_reply(self, signature_bytes: int) -> int:
        return self.header + signature_bytes


@dataclass(slots=True)
class Message:
    """One protocol message.

    ``src``/``dst`` are client indices; ``dst`` is ``None`` for a P2P
    broadcast.  ``path`` records the forwarding chain of a flooded REQUEST so
    replies and retrievals can be routed back hop-by-hop.
    """

    kind: MessageKind
    src: int
    dst: Optional[int]
    size: int
    payload: Dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0
    hops_left: int = 0
    path: List[int] = field(default_factory=list)
    uid: int = field(default_factory=lambda: next(_sequence))

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"message size must be positive, got {self.size}")
