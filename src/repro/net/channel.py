"""MSS uplink/downlink channels (Section V-C).

The wireless channel between the MSS and the clients is a pair of shared
links with total bandwidths ``BW_server`` (downlink / uplink).  Requests are
buffered in an infinite FCFS queue while the link is busy — exactly the
paper's server model — so downlink saturation produces the latency blow-up
of Fig. 7.
"""

from __future__ import annotations

from repro.sim.kernel import Environment
from repro.sim.resources import Resource

__all__ = ["ServerChannel"]


class ServerChannel:
    """Shared uplink and downlink with FCFS queueing."""

    def __init__(
        self,
        env: Environment,
        downlink_bps: float,
        uplink_bps: float,
    ):
        if downlink_bps <= 0 or uplink_bps <= 0:
            raise ValueError("bandwidths must be positive")
        self.env = env
        self.downlink_bps = float(downlink_bps)
        self.uplink_bps = float(uplink_bps)
        self._downlink = Resource(env, capacity=1)
        self._uplink = Resource(env, capacity=1)
        self.bytes_down = 0
        self.bytes_up = 0

    def downlink_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.downlink_bps

    def uplink_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.uplink_bps

    def send_downlink(self, size_bytes: int):
        """Process helper: queue for and occupy the downlink.

        Usage: ``yield from channel.send_downlink(size)``.
        """
        self.bytes_down += size_bytes
        yield from self._downlink.acquire(self.downlink_time(size_bytes))

    def send_uplink(self, size_bytes: int):
        """Process helper: queue for and occupy the uplink."""
        self.bytes_up += size_bytes
        yield from self._uplink.acquire(self.uplink_time(size_bytes))

    @property
    def downlink_queue_length(self) -> int:
        return self._downlink.queue_length

    @property
    def uplink_queue_length(self) -> int:
        return self._uplink.queue_length
