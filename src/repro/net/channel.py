"""MSS uplink/downlink channels (Section V-C).

The wireless channel between the MSS and the clients is a pair of shared
links with total bandwidths ``BW_server`` (downlink / uplink).  Requests are
buffered in an infinite FCFS queue while the link is busy — exactly the
paper's server model — so downlink saturation produces the latency blow-up
of Fig. 7.

Per-link accounting mirrors :class:`~repro.net.p2p.P2PNetwork`'s traffic
counters: request counts, transferred bytes, dropped messages and the total
FCFS queue-wait time, so server-side congestion is observable per run.

With a :class:`~repro.net.faults.FaultInjector` attached, each send may be
lost after occupying the link (the transmission happened; the receiver got
garbage).  ``send_uplink`` / ``send_downlink`` return ``True`` when the
message survived, so the client protocol can retry a lost server request
instead of silently assuming delivery.
"""

from __future__ import annotations

from typing import Optional

from repro.net.faults import FaultInjector
from repro.sim.kernel import Environment
from repro.sim.resources import Resource

__all__ = ["ServerChannel"]


class ServerChannel:
    """Shared uplink and downlink with FCFS queueing."""

    def __init__(
        self,
        env: Environment,
        downlink_bps: float,
        uplink_bps: float,
        faults: Optional[FaultInjector] = None,
    ):
        if downlink_bps <= 0 or uplink_bps <= 0:
            raise ValueError("bandwidths must be positive")
        self.env = env
        self.downlink_bps = float(downlink_bps)
        self.uplink_bps = float(uplink_bps)
        #: Optional seeded loss process; ``None`` keeps the ideal channel.
        self.faults = faults
        self._downlink = Resource(env, capacity=1)
        self._uplink = Resource(env, capacity=1)
        self.bytes_down = 0
        self.bytes_up = 0
        # Per-link traffic counters (symmetric to P2PNetwork's).
        self.uplink_requests = 0
        self.downlink_requests = 0
        self.uplink_drops = 0
        self.downlink_drops = 0
        #: Total simulated seconds spent waiting in each link's FCFS queue.
        self.uplink_wait = 0.0
        self.downlink_wait = 0.0

    def downlink_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.downlink_bps

    def uplink_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.uplink_bps

    def _send(self, resource: Resource, hold_time: float):
        """Queue for the link, occupy it, and return the queue-wait time."""
        queued_at = self.env.now
        grant = resource.request()
        yield grant
        waited = self.env.now - queued_at
        try:
            yield self.env.timeout(hold_time)
        finally:
            resource.release(grant)
        return waited

    def send_downlink(self, size_bytes: int):
        """Process helper: queue for and occupy the downlink.

        Usage: ``delivered = yield from channel.send_downlink(size)``.
        Returns ``True`` when the message survived the channel (always, in
        the fault-free model).
        """
        self.downlink_requests += 1
        self.bytes_down += size_bytes
        waited = yield from self._send(
            self._downlink, self.downlink_time(size_bytes)
        )
        self.downlink_wait += waited
        if self.faults is not None and self.faults.drop_downlink():
            self.downlink_drops += 1
            return False
        return True

    def send_uplink(self, size_bytes: int):
        """Process helper: queue for and occupy the uplink.

        Returns ``True`` when the message survived the channel.
        """
        self.uplink_requests += 1
        self.bytes_up += size_bytes
        waited = yield from self._send(self._uplink, self.uplink_time(size_bytes))
        self.uplink_wait += waited
        if self.faults is not None and self.faults.drop_uplink():
            self.uplink_drops += 1
            return False
        return True

    @property
    def downlink_queue_length(self) -> int:
        return self._downlink.queue_length

    @property
    def uplink_queue_length(self) -> int:
        return self._uplink.queue_length

    @property
    def uplink_mean_wait(self) -> float:
        """Mean FCFS queue wait per uplink request (seconds)."""
        return self.uplink_wait / self.uplink_requests if self.uplink_requests else 0.0

    @property
    def downlink_mean_wait(self) -> float:
        """Mean FCFS queue wait per downlink request (seconds)."""
        return (
            self.downlink_wait / self.downlink_requests
            if self.downlink_requests
            else 0.0
        )
