"""Neighbor discovery protocol (Section III, refs [22, 23]).

Every beacon interval each connected host broadcasts a small *hello*
message.  A host considers a link up while it has heard a peer within the
last ``miss_limit`` beacon cycles.  The beacon traffic is tiny, so it is
charged to the ledger (purpose ``"beacon"``) in bulk per cycle rather than
serialised through the CSMA medium; the power ledger still reflects every
send and reception.

Connectivity is tracked in a dense last-heard matrix; one beacon cycle
resolves each connected sender's in-range listener set with the field's
boolean-mask neighbor query, so no (N, N) distance matrix is ever
materialised.
"""

from __future__ import annotations

import numpy as np

from repro.net.p2p import P2PNetwork
from repro.sim.kernel import Environment

__all__ = ["NeighborDiscovery"]


class NeighborDiscovery:
    """Periodic hello beaconing and link-liveness queries."""

    def __init__(
        self,
        env: Environment,
        network: P2PNetwork,
        hello_size: int = 32,
        beacon_interval: float = 1.0,
        miss_limit: int = 3,
        charge_power: bool = True,
        monitor=None,
        tracer=None,
    ):
        if beacon_interval <= 0:
            raise ValueError("beacon_interval must be positive")
        if miss_limit < 1:
            raise ValueError("miss_limit must be >= 1")
        self.env = env
        self.network = network
        self.hello_size = int(hello_size)
        self.beacon_interval = float(beacon_interval)
        self.miss_limit = int(miss_limit)
        self.charge_power = charge_power
        #: Optional invariant oracle (duck-typed; see repro.check.monitor).
        self._monitor = monitor
        #: Optional span tracer (see repro.obs.tracer).
        self._tracer = tracer
        n = len(network.field)
        # last_heard[i, j]: when host i last heard host j's beacon.
        self._last_heard = np.full((n, n), -np.inf)
        self.beacons_sent = 0
        #: Beacon cycles executed; read by the profiler.
        self.rounds = 0
        self.process = env.process(self._run())

    @property
    def liveness_horizon(self) -> float:
        """How stale a beacon may be before the link is considered down."""
        return self.miss_limit * self.beacon_interval

    def _run(self):
        while True:
            yield self.env.timeout(self.beacon_interval)
            self._beacon_cycle()
            if self._monitor is not None:
                self._monitor.check_ndp(self, self.env.now)

    def _beacon_cycle(self) -> None:
        network = self.network
        now = self.env.now
        connected = network.connected
        senders = np.nonzero(connected)[0]
        if not senders.size:
            return
        self.rounds += 1
        if self._tracer is not None:
            self._tracer.instant("ndp-round", senders=int(senders.size))
        field = network.field
        # Per-sender in-range listener sets via the field's boolean-mask
        # query: no (N, N) distance matrix, no N^2 sqrt per beacon cycle.
        receptions = np.zeros(len(field), dtype=np.int64)
        for sender in senders:
            listeners = field.neighbors_of(
                int(sender), now, network.tran_range, include_mask=connected
            )
            self._last_heard[listeners, sender] = now
            receptions[listeners] += 1
        self.beacons_sent += int(senders.size)
        if self.charge_power:
            model = network.model
            send_cost = model.bc_send(self.hello_size)
            recv_cost = model.bc_recv(self.hello_size)
            network.ledger.charge_many(senders, send_cost, "beacon")
            for host in np.nonzero(receptions)[0]:
                network.ledger.charge(
                    int(host), recv_cost * int(receptions[host]), "beacon"
                )

    # -- queries -----------------------------------------------------------------

    def hears(self, host: int, peer: int) -> bool:
        """Whether ``host`` currently considers its link to ``peer`` up."""
        if host == peer:
            return True
        return self.env.now - self._last_heard[host, peer] <= self.liveness_horizon

    def live_neighbors(self, host: int) -> np.ndarray:
        """Peers whose beacons ``host`` heard recently enough."""
        fresh = self.env.now - self._last_heard[host] <= self.liveness_horizon
        fresh[host] = False
        return np.nonzero(fresh)[0]

    def forget(self, host: int) -> None:
        """Drop all link state of a host (used when it disconnects)."""
        self._last_heard[host, :] = -np.inf
        self._last_heard[:, host] = -np.inf
