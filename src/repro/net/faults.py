"""Seeded fault injection across the wireless stack.

The paper's channel model is idealised: a transmission only fails when a
host is out of range or gracefully disconnected.  Real MANET radios lose
frames — independently (thermal noise) and in bursts (fading, interference)
— and real peers crash without running any goodbye protocol.  This module
adds both as a *plan* of per-component fault processes:

* :class:`LinkFaults` — message loss on one link class, as an i.i.d. loss
  probability plus an optional two-state Gilbert–Elliott chain whose *bad*
  state adds bursty loss on top;
* :class:`CrashFaults` — crash-stop host outages (the radio dies instantly,
  mid-protocol, without the graceful ``p_disc`` bookkeeping) with a
  uniformly distributed downtime;
* :class:`FaultPlan` — one :class:`LinkFaults` each for the P2P medium, the
  MSS uplink and the MSS downlink, plus the crash process.

:class:`FaultInjector` samples the plan from **named random streams**
(:class:`~repro.sim.random.RandomStreams`): every component draws from its
own ``faults-*`` stream, so enabling p2p loss never perturbs the mobility,
workload or crash sequences, and identical seeds with identical plans are
bit-for-bit reproducible under both serial and parallel sweep execution.

The all-zero default plan is a strict no-op: no stream is advanced and no
behavioural branch is taken, so runs without faults stay bit-identical to
the pre-fault-layer simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.sim.random import RandomStreams

__all__ = ["CrashFaults", "FaultInjector", "FaultPlan", "LinkFaults", "LinkInjector"]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Loss model of one link class.

    ``loss`` is the i.i.d. per-delivery loss probability.  The Gilbert–
    Elliott component is a two-state chain advanced once per delivery
    attempt: ``burst_on`` is P(good → bad), ``burst_off`` is P(bad → good),
    and while the chain is bad an extra ``burst_loss`` is added to the loss
    probability.  Leaving ``burst_on`` or ``burst_loss`` at zero disables
    the chain; leaving everything at zero disables the link's faults
    entirely (no random draws are made).
    """

    loss: float = 0.0
    burst_loss: float = 0.0
    burst_on: float = 0.0
    burst_off: float = 0.5

    def __post_init__(self):
        _check_probability("loss", self.loss)
        _check_probability("burst_loss", self.burst_loss)
        _check_probability("burst_on", self.burst_on)
        _check_probability("burst_off", self.burst_off)

    @property
    def enabled(self) -> bool:
        return self.loss > 0.0 or self.bursty

    @property
    def bursty(self) -> bool:
        return self.burst_on > 0.0 and self.burst_loss > 0.0


@dataclass(frozen=True)
class CrashFaults:
    """Crash-stop host outages.

    ``rate`` is the expected number of crashes per host per simulated
    second; victims are drawn uniformly.  A crashed host's radio dies
    instantly — no NDP goodbye, no membership bookkeeping — and comes back
    after a downtime drawn uniformly from ``[down_min, down_max]``.
    """

    rate: float = 0.0
    down_min: float = 5.0
    down_max: float = 15.0

    def __post_init__(self):
        if self.rate < 0.0:
            raise ValueError(f"crash rate must be >= 0, got {self.rate}")
        if self.down_min <= 0.0:
            raise ValueError(f"down_min must be positive, got {self.down_min}")
        if self.down_min > self.down_max:
            raise ValueError("down_min must be <= down_max")

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Per-component fault processes for one run.

    Part of :class:`~repro.core.config.SimulationConfig`, so a plan flows
    into worker processes and the result-cache key exactly like every other
    parameter.  The default (all rates zero) is a strict no-op.
    """

    p2p: LinkFaults = field(default_factory=LinkFaults)
    uplink: LinkFaults = field(default_factory=LinkFaults)
    downlink: LinkFaults = field(default_factory=LinkFaults)
    crash: CrashFaults = field(default_factory=CrashFaults)

    @property
    def enabled(self) -> bool:
        return (
            self.p2p.enabled
            or self.uplink.enabled
            or self.downlink.enabled
            or self.crash.enabled
        )


class LinkInjector:
    """Samples one link class's loss process.

    ``n_states`` Gilbert–Elliott chains share one random stream; the P2P
    medium uses one chain per receiving host (each host fades
    independently), the MSS links use a single chain each.
    """

    def __init__(self, faults: LinkFaults, rng: np.random.Generator, n_states: int = 1):
        self.faults = faults
        self.rng = rng
        self.enabled = faults.enabled
        self._bursty = faults.bursty
        self._bad = np.zeros(max(1, n_states), dtype=bool)
        self.checks = 0
        self.drops = 0

    def drop(self, state: int = 0) -> bool:
        """Whether this delivery is lost; advances the chain for ``state``."""
        if not self.enabled:
            return False
        self.checks += 1
        faults = self.faults
        p_loss = faults.loss
        if self._bursty:
            transition = self.rng.random()
            if self._bad[state]:
                if transition < faults.burst_off:
                    self._bad[state] = False
            elif transition < faults.burst_on:
                self._bad[state] = True
            if self._bad[state]:
                p_loss = min(1.0, p_loss + faults.burst_loss)
        if p_loss > 0.0 and self.rng.random() < p_loss:
            self.drops += 1
            return True
        return False


class FaultInjector:
    """Samples a :class:`FaultPlan` from per-component named streams.

    Wired into :class:`~repro.net.p2p.P2PNetwork` (per-receiver loss on
    broadcast and unicast deliveries), :class:`~repro.net.channel.ServerChannel`
    (uplink/downlink message loss) and the crash daemon of
    :class:`~repro.core.simulation.Simulation`.
    """

    def __init__(self, plan: FaultPlan, streams: RandomStreams, n_hosts: int):
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        self.plan = plan
        self.n_hosts = n_hosts
        self.p2p = LinkInjector(plan.p2p, streams.stream("faults-p2p"), n_hosts)
        self.uplink = LinkInjector(plan.uplink, streams.stream("faults-uplink"))
        self.downlink = LinkInjector(plan.downlink, streams.stream("faults-downlink"))
        self._crash_rng = streams.stream("faults-crash")
        #: Crash-stop outages actually started (skipped victims excluded).
        self.crashes = 0

    # -- link loss ---------------------------------------------------------------

    def drop_p2p(self, receiver: int) -> bool:
        """Whether the copy addressed to ``receiver`` is lost on the air."""
        return self.p2p.drop(receiver)

    def drop_uplink(self) -> bool:
        return self.uplink.drop()

    def drop_downlink(self) -> bool:
        return self.downlink.drop()

    # -- crash-stop outages ------------------------------------------------------

    def next_crash_delay(self) -> float:
        """Exponential inter-crash time across the whole population."""
        aggregate_rate = self.plan.crash.rate * self.n_hosts
        return float(self._crash_rng.exponential(1.0 / aggregate_rate))

    def crash_victim(self) -> int:
        return int(self._crash_rng.integers(self.n_hosts))

    def outage_duration(self) -> float:
        crash = self.plan.crash
        return float(self._crash_rng.uniform(crash.down_min, crash.down_max))

    # -- reporting ---------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Fault-event totals for :class:`~repro.sim.profile.RunProfile`."""
        return {
            "fault_p2p_drops": self.p2p.drops,
            "fault_uplink_drops": self.uplink.drops,
            "fault_downlink_drops": self.downlink.drops,
            "fault_crashes": self.crashes,
        }
