"""Wireless network substrate.

* :mod:`repro.net.message` — the message taxonomy of the COCA/GroCoca
  protocols and their wire sizes.
* :mod:`repro.net.power` — the Feeney–Nilsson linear power-consumption model
  (Table I of the paper) and per-host power ledgers.
* :mod:`repro.net.channel` — the MSS uplink/downlink shared channels.
* :mod:`repro.net.p2p` — the half-duplex P2P medium with CSMA-style
  contention, broadcast/point-to-point primitives and bounded flooding.
* :mod:`repro.net.ndp` — the neighbor discovery protocol (periodic hello
  beacons, link-failure detection).
* :mod:`repro.net.faults` — seeded fault injection: i.i.d. and bursty
  message loss per link class plus crash-stop host outages.
* :mod:`repro.net.health` — the failure-aware retrieve layer: per-peer
  health tracking (EWMA latency/failure rate), pluggable replier-scoring
  policies and per-peer circuit breakers.
"""

from repro.net.channel import ServerChannel
from repro.net.faults import CrashFaults, FaultInjector, FaultPlan, LinkFaults
from repro.net.health import (
    CircuitBreaker,
    PeerHealth,
    PeerHealthTracker,
    SCORING_POLICIES,
)
from repro.net.message import Message, MessageKind, MessageSizes
from repro.net.ndp import NeighborDiscovery
from repro.net.p2p import P2PNetwork
from repro.net.power import PowerLedger, PowerModel, PowerParameters

__all__ = [
    "CircuitBreaker",
    "CrashFaults",
    "FaultInjector",
    "FaultPlan",
    "LinkFaults",
    "Message",
    "MessageKind",
    "MessageSizes",
    "NeighborDiscovery",
    "P2PNetwork",
    "PeerHealth",
    "PeerHealthTracker",
    "PowerLedger",
    "PowerModel",
    "PowerParameters",
    "SCORING_POLICIES",
    "ServerChannel",
]
