"""The half-duplex P2P wireless medium (Section III / V-A).

Every host has one P2P network interface with an omnidirectional antenna and
transmission range ``TranRange``.  The medium is modelled CSMA-style with a
per-host *busy-until* horizon: a transmission defers until its sender's
radio is free, then occupies the radios of every host in range for the
transmission time.  This deadlock-free approximation reproduces the local
congestion effects the paper reports for large motion groups (Fig. 5) and
dense systems (Fig. 7).

Power is charged per Table I: broadcast send/receive for REQUEST beacons,
point-to-point send/receive plus bystander-discard costs for targeted
messages.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.mobility.field import MobilityField
from repro.net.faults import FaultInjector
from repro.net.message import Message
from repro.net.power import PowerLedger, PowerModel
from repro.sim.kernel import Environment

__all__ = ["P2PNetwork"]

Handler = Callable[[Message], None]


class P2PNetwork:
    """Broadcast / point-to-point primitives over the shared medium."""

    def __init__(
        self,
        env: Environment,
        field: MobilityField,
        bandwidth_bps: float,
        tran_range: float,
        ledger: PowerLedger,
        model: Optional[PowerModel] = None,
        faults: Optional[FaultInjector] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if tran_range <= 0:
            raise ValueError("transmission range must be positive")
        self.env = env
        self.field = field
        self.bandwidth_bps = float(bandwidth_bps)
        self.tran_range = float(tran_range)
        self.ledger = ledger
        self.model = model or PowerModel()
        #: Optional seeded loss process; ``None`` keeps the ideal channel.
        self.faults = faults
        n = len(field)
        self.connected = np.ones(n, dtype=bool)
        self._busy_until = np.zeros(n)
        self._handlers: List[Optional[Handler]] = [None] * n
        # Traffic counters (for diagnostics and the ablation benches).
        self.broadcasts = 0
        self.unicasts = 0
        self.failed_unicasts = 0
        # Per-snapshot-bucket neighbor memo: positions are frozen within a
        # quantisation bucket and this class owns every ``connected`` flip,
        # so repeated range queries for the same host can reuse the first
        # result until the bucket or the connectivity mask changes.
        self._nbr_cache: Dict[int, np.ndarray] = {}
        self._nbr_time = -math.inf
        # Scratch masks for the unicast bystander partition.
        self._near_src_mask = np.zeros(n, dtype=bool)
        self._near_dst_mask = np.zeros(n, dtype=bool)
        # Down-transition watchers: events succeeded when a node leaves
        # the air (crash or graceful disconnect).  Used by the failure-
        # aware retrieve path to fail over the moment a serving peer
        # drops instead of burning the full data-guard timeout.
        self._down_watchers: Dict[int, List[object]] = {}

    # -- wiring ---------------------------------------------------------------

    def register_handler(self, node: int, handler: Handler) -> None:
        """Install the receive callback of a host."""
        self._handlers[node] = handler

    def set_connected(self, node: int, is_connected: bool) -> None:
        self.connected[node] = is_connected
        self._nbr_cache.clear()
        if not is_connected:
            watchers = self._down_watchers.pop(node, None)
            if watchers:
                for event in watchers:
                    if not event.triggered:
                        event.succeed(node)

    def is_connected(self, node: int) -> bool:
        return bool(self.connected[node])

    def watch_down(self, node: int, event) -> None:
        """Succeed ``event`` (with the node index) when ``node`` next
        goes off the air; fires immediately if it is already down."""
        if not self.connected[node]:
            if not event.triggered:
                event.succeed(node)
            return
        self._down_watchers.setdefault(node, []).append(event)

    def unwatch_down(self, node: int, event) -> None:
        """Withdraw a watcher registered with :meth:`watch_down`."""
        watchers = self._down_watchers.get(node)
        if watchers is None:
            return
        try:
            watchers.remove(event)
        except ValueError:
            return
        if not watchers:
            del self._down_watchers[node]

    # -- physical layer --------------------------------------------------------

    def tx_time(self, size_bytes: int) -> float:
        """Air time of a message of the given size."""
        return size_bytes * 8.0 / self.bandwidth_bps

    def neighbors(self, node: int) -> np.ndarray:
        """Connected hosts currently within transmission range of ``node``.

        Memoised per position-snapshot bucket: a third of range queries in
        a sweep repeat an earlier (host, instant) pair.  The returned array
        is shared with later callers — treat it as read-only.
        """
        bucket = self.field.quantise(self.env.now)
        if bucket != self._nbr_time:
            self._nbr_cache.clear()
            self._nbr_time = bucket
        cached = self._nbr_cache.get(node)
        if cached is None:
            cached = self.field.neighbors_of(
                node, self.env.now, self.tran_range, include_mask=self.connected
            )
            self._nbr_cache[node] = cached
        return cached

    def reachable(self, src: int, dst: int, max_hops: int) -> bool:
        """Whether ``dst`` is within ``max_hops`` P2P hops of ``src`` now.

        Used for oracle membership-reachability checks; the protocols
        themselves only use broadcast/unicast.
        """
        if src == dst:
            return True
        if not (self.connected[src] and self.connected[dst]):
            return False
        seen = {src}
        frontier = deque([(src, 0)])
        while frontier:
            node, depth = frontier.popleft()
            if depth == max_hops:
                continue
            for peer in self.neighbors(node):
                peer = int(peer)
                if peer == dst:
                    return True
                if peer not in seen:
                    seen.add(peer)
                    frontier.append((peer, depth + 1))
        return False

    def _wait_medium(self, node: int):
        """Defer until the host's radio is idle (CSMA)."""
        while True:
            gap = self._busy_until[node] - self.env.now
            if gap <= 1e-12:
                return
            yield self.env.timeout(gap)

    def _occupy(self, nodes: np.ndarray, until: float) -> None:
        if len(nodes):
            self._busy_until[nodes] = np.maximum(self._busy_until[nodes], until)

    # -- broadcast --------------------------------------------------------------

    def broadcast(
        self,
        src: int,
        message: Message,
        purpose: str = "data",
        signature_bytes: int = 0,
    ):
        """Transmit to every connected host in range.

        Process helper (``yield from``); returns the receiver indices.
        Receivers are fixed at transmission start; delivery happens after the
        air time, to hosts still connected.  ``signature_bytes`` attributes
        the variable power cost of that many piggybacked bytes (GroCoCa's
        signature update information) to the ledger's ``signature`` purpose.
        """
        busy = self._busy_until
        if busy[src] - self.env.now > 1e-12:
            yield from self._wait_medium(src)
        if not self.connected[src]:
            return []
        now = self.env.now
        air = self.tx_time(message.size)
        receivers = self.neighbors(src)
        end = now + air
        if busy[src] < end:
            busy[src] = end
        if len(receivers):
            busy[receivers] = np.maximum(busy[receivers], end)
        send_cost = self.model.bc_send(message.size)
        recv_cost = self.model.bc_recv(message.size)
        if signature_bytes > 0:
            sig_send = self.model.parameters.bc_send_v * signature_bytes
            sig_recv = self.model.parameters.bc_recv_v * signature_bytes
            self.ledger.charge(src, sig_send, "signature")
            self.ledger.charge_many(receivers, sig_recv, "signature")
            send_cost -= sig_send
            recv_cost -= sig_recv
        self.ledger.charge(src, send_cost, purpose)
        self.ledger.charge_many(receivers, recv_cost, purpose)
        self.broadcasts += 1
        yield self.env.timeout(air)
        delivered = []
        for receiver in receivers:
            receiver = int(receiver)
            if not self.connected[receiver]:
                continue
            if self.faults is not None and self.faults.drop_p2p(receiver):
                continue  # frame corrupted at this receiver; power already paid
            delivered.append(receiver)
            handler = self._handlers[receiver]
            if handler is not None:
                handler(message)
        return delivered

    # -- point-to-point ------------------------------------------------------------

    def unicast(
        self,
        src: int,
        dst: int,
        message: Message,
        purpose: str = "data",
        deliver: bool = True,
    ):
        """Transmit to one host.

        Process helper; returns True when delivered.  The sender spends
        power regardless; bystanders in range of the source and/or the
        destination pay the Table I discard costs.  ``deliver=False``
        suppresses the destination handler (intermediate relay hops).
        """
        if src == dst:
            raise ValueError("unicast to self")
        busy = self._busy_until
        if busy[src] - self.env.now > 1e-12:
            yield from self._wait_medium(src)
        if not self.connected[src]:
            return False
        now = self.env.now
        air = self.tx_time(message.size)
        size = message.size
        near_src = self.neighbors(src)
        near_dst = self.neighbors(dst)
        # Bystander partition as boolean masks over the population — the
        # per-host charges are identical to the old set arithmetic (each
        # host lands in exactly one disjoint class), without building three
        # Python sets per transmission.
        in_src = self._near_src_mask
        in_dst = self._near_dst_mask
        in_src[:] = False
        in_src[near_src] = True
        in_dst[:] = False
        in_dst[near_dst] = True
        in_dst[src] = False
        deliverable = bool(in_src[dst]) and bool(self.connected[dst])

        end = now + air
        if busy[src] < end:
            busy[src] = end
        if len(near_src):
            busy[near_src] = np.maximum(busy[near_src], end)

        self.ledger.charge(src, self.model.ptp_send(size), purpose)
        if deliverable:
            self.ledger.charge(dst, self.model.ptp_recv(size), purpose)
        in_src[dst] = False  # bystanders exclude the destination itself
        self.ledger.charge_many(
            np.nonzero(in_src & in_dst)[0], self.model.ptp_discard_sd(size), purpose
        )
        self.ledger.charge_many(
            np.nonzero(in_src & ~in_dst)[0], self.model.ptp_discard_s(size), purpose
        )
        self.ledger.charge_many(
            np.nonzero(in_dst & ~in_src)[0], self.model.ptp_discard_d(size), purpose
        )

        self.unicasts += 1
        yield self.env.timeout(air)
        if not (deliverable and self.connected[dst]):
            self.failed_unicasts += 1
            return False
        if self.faults is not None and self.faults.drop_p2p(dst):
            self.failed_unicasts += 1
            return False
        if deliver:
            handler = self._handlers[dst]
            if handler is not None:
                handler(message)
        return True

    def unicast_route(
        self, path: List[int], message: Message, purpose: str = "data"
    ):
        """Relay a message hop-by-hop along ``path`` (first element = sender).

        Process helper; returns True when every hop succeeded.  Used for
        replies/retrievals to peers found beyond one hop (HopDist > 1).
        """
        if len(path) < 2:
            raise ValueError("route needs at least sender and destination")
        last = len(path) - 2
        for hop, (hop_src, hop_dst) in enumerate(zip(path, path[1:])):
            delivered = yield from self.unicast(
                hop_src, hop_dst, message, purpose, deliver=(hop == last)
            )
            if not delivered:
                return False
        return True
