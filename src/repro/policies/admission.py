"""Registered cache-admission policies for peer-supplied items.

An admission policy decides whether the item a peer just served should be
copied into the local cache.  :class:`MobileHost` consults it on *every*
peer-supplied item (full cache or not); the legacy-equivalent policies
(``always``, ``grococa``) short-circuit the not-full case exactly the way
the pre-registry client did, so their decisions *and counters* replay the
golden traces bit-identically.

The two new on-path policies adapt ideas from in-network caching to the
P2P flood: ``probcache`` admits probabilistically with the fetch
distance (Psaras, Chai & Pavlou, ProbCache), ``lcd`` copies only from a
direct neighbour so a popular item migrates one hop per fetch toward its
requesters (Laoutaris et al., Leave-Copy-Down).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.admission import AdmissionControl
from repro.policies.registry import register

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "GroCoCaAdmission",
    "LeaveCopyDownAdmission",
    "ProbCacheAdmission",
]


class AdmissionPolicy:
    """Base class: decide whether to cache one peer-supplied item.

    ``should_cache`` receives the full decision context:

    * ``cache_full`` — whether an insertion would displace a victim;
    * ``from_tcg_member`` — whether the serving peer is a TCG member
      (always ``False`` outside GroCoCa);
    * ``hops`` — the serving peer's distance on the reply path (>= 1).

    ``enabled`` mirrors the legacy ``AdmissionControl.enabled`` flag:
    ``False`` only for the pass-through ``always`` policy, so the ablation
    tests keep reading the same attribute.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0

    def should_cache(
        self, *, cache_full: bool, from_tcg_member: bool, hops: int
    ) -> bool:
        raise NotImplementedError

    def _count(self, decision: bool) -> bool:
        if decision:
            self.admitted += 1
        else:
            self.rejected += 1
        return decision


class _LegacyAdmission(AdmissionPolicy):
    """Shared shape of the two legacy-equivalent policies.

    Wraps the original :class:`~repro.core.admission.AdmissionControl`
    and only consults (and counts) it when the cache is full — the exact
    call pattern of the pre-registry client, preserving both the
    decisions and the ``admitted``/``rejected`` totals bit for bit.
    """

    def __init__(self, control_enabled: bool) -> None:
        # The inner control must exist before super().__init__ zeroes the
        # counters through the delegating property setters below.
        self._inner = AdmissionControl(enabled=control_enabled)
        super().__init__()
        self.enabled = control_enabled

    def should_cache(
        self, *, cache_full: bool, from_tcg_member: bool, hops: int
    ) -> bool:
        if not cache_full:
            return True
        return self._inner.should_cache(
            cache_full=True, from_tcg_member=from_tcg_member
        )

    @property
    def admitted(self) -> int:  # type: ignore[override]
        return self._inner.admitted

    @admitted.setter
    def admitted(self, value: int) -> None:
        self._inner.admitted = value

    @property
    def rejected(self) -> int:  # type: ignore[override]
        return self._inner.rejected

    @rejected.setter
    def rejected(self, value: int) -> None:
        self._inner.rejected = value


class AlwaysAdmit(_LegacyAdmission):
    """Cache every peer-supplied item (LC/CC, and GroCoCa ablation A1)."""

    def __init__(self) -> None:
        super().__init__(control_enabled=False)


class GroCoCaAdmission(_LegacyAdmission):
    """Section IV-E: a full cache refuses TCG-member-supplied items."""

    def __init__(self) -> None:
        super().__init__(control_enabled=True)


class ProbCacheAdmission(AdmissionPolicy):
    """Probabilistic on-path admission weighted by fetch distance.

    ProbCache caches with a probability that grows with the distance the
    copy travelled, concentrating replicas near consumers without caching
    every transit item.  Adapted to the bounded-hop flood: the admission
    probability is ``hops / hop_dist`` — an item served by a direct
    neighbour is usually left there (it is one hop away anyway), an item
    fetched from the search horizon is always copied.  Draws come from
    the dedicated ``admission-policy`` stream, so enabling the policy
    shifts no other component's random sequence.
    """

    def __init__(self, hop_limit: int, rng: np.random.Generator) -> None:
        super().__init__()
        if hop_limit < 1:
            raise ValueError("hop_limit must be >= 1")
        if rng is None:
            raise ValueError("probcache needs the admission-policy stream")
        self.hop_limit = int(hop_limit)
        self.rng = rng

    def should_cache(
        self, *, cache_full: bool, from_tcg_member: bool, hops: int
    ) -> bool:
        probability = min(1.0, max(1, hops) / self.hop_limit)
        return self._count(float(self.rng.random()) < probability)


class LeaveCopyDownAdmission(AdmissionPolicy):
    """Copy only from a direct neighbour (leave-copy-down).

    LCD creates one new replica per fetch, one hop below the serving
    node, so popular items migrate toward their requesters fetch by fetch
    instead of being replicated along the whole path.  In the flood
    topology "one level down" is the requester itself only when the
    server is a direct neighbour: multi-hop hits are *not* cached (the
    intermediate relays will cache the item when they request it
    themselves).
    """

    def should_cache(
        self, *, cache_full: bool, from_tcg_member: bool, hops: int
    ) -> bool:
        return self._count(hops <= 1)


# --------------------------------------------------------------------------
# Registered builders (the factory contract for the "admission" namespace:
# ``builder(config, rng) -> AdmissionPolicy``; ``rng`` is the shared
# "admission-policy" stream, or None for deterministic policies).


@register(
    "admission",
    "always",
    summary="cache every peer-supplied item (LC/CC baseline, ablation A1)",
    citation="Chow, Leong & Chan, ICDCS'04 §IV-E",
)
def _build_always(config, rng: Optional[np.random.Generator]) -> AdmissionPolicy:
    return AlwaysAdmit()


@register(
    "admission",
    "grococa",
    summary="full cache refuses TCG-member-supplied items",
    citation="Chow, Leong & Chan, ICDCS'04 §IV-E",
)
def _build_grococa(config, rng: Optional[np.random.Generator]) -> AdmissionPolicy:
    return GroCoCaAdmission()


@register(
    "admission",
    "probcache",
    summary="admit with probability hops/hop_dist (distance-weighted)",
    citation="Psaras, Chai & Pavlou, ICN'12 (ProbCache)",
)
def _build_probcache(config, rng: Optional[np.random.Generator]) -> AdmissionPolicy:
    return ProbCacheAdmission(hop_limit=config.hop_dist, rng=rng)


@register(
    "admission",
    "lcd",
    summary="admit only items served by a direct neighbour",
    citation="Laoutaris, Che & Stavrakakis, 2006 (Leave-Copy-Down)",
)
def _build_lcd(config, rng: Optional[np.random.Generator]) -> AdmissionPolicy:
    return LeaveCopyDownAdmission()
