"""String-keyed policy plugin registry and its factories (ROADMAP item 3).

Public surface:

* :mod:`repro.policies.registry` — ``register`` / ``resolve`` /
  ``available`` / ``describe`` / ``entries`` over the five namespaces
  (``scheme``, ``admission``, ``replacement``, ``discovery``,
  ``peer-scoring``);
* :mod:`repro.policies.factory` — legacy-mapping resolution from a
  :class:`~repro.core.config.SimulationConfig` plus the per-namespace
  builders used by the simulation wiring;
* :mod:`repro.policies.conformance` — the battery every registered key
  must pass (imported explicitly; it pulls in the simulation layer).

This package ``__init__`` must stay import-light: ``repro.core.config``
imports it for key validation, so nothing here may import the core
simulation modules.
"""

from repro.policies.factory import (
    build_admission,
    build_discovery,
    build_replacement,
    custom_policies,
    legacy_policy_keys,
    resolved_policy_keys,
)
from repro.policies.registry import (
    NAMESPACES,
    PolicyInfo,
    available,
    describe,
    entries,
    register,
    register_value,
    resolve,
    temporary_policy,
)

__all__ = [
    "NAMESPACES",
    "PolicyInfo",
    "available",
    "build_admission",
    "build_discovery",
    "build_replacement",
    "custom_policies",
    "describe",
    "entries",
    "legacy_policy_keys",
    "register",
    "register_value",
    "resolve",
    "resolved_policy_keys",
    "temporary_policy",
]
