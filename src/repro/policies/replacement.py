"""Registered cache-replacement policies.

A replacement policy picks the victim a full cache evicts to admit one
new entry, and optionally maintains auxiliary per-item state through the
client's note hooks (``note_access`` / ``note_insert`` /
``note_request`` / ``note_remote_request``).  Every policy is
deterministic: victim selection walks the cache in LRU order and only a
*strictly* better score displaces the running choice, so ties always
break toward the least recently used entry and identical runs replay bit
for bit.

``lru`` and ``grococa`` reproduce the pre-registry behaviour exactly
(the latter wraps :class:`~repro.core.replacement.CooperativeReplacement`
unchanged).  The new variants adapt the replacement families surveyed by
Joy & Jacob and Wang & Kulkarni's popularity ranking to the TTL-carrying
P2P cache: ``lru-min`` prefers the candidate closest to expiry,
``greedy-dual`` keeps an inflation-based H value seeded from the
remaining TTL, ``popularity-rank`` evicts the item with the least
observed demand (own requests plus overheard search floods).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.lru import CacheEntry, LRUCache
from repro.core.replacement import CooperativeReplacement
from repro.policies.registry import register

__all__ = [
    "GreedyDualReplacement",
    "GroCoCaReplacement",
    "LRUMinReplacement",
    "LRUReplacement",
    "PopularityRankReplacement",
    "ReplacementPolicy",
]

#: Effective cost of a never-expiring entry for the TTL-aware policies;
#: large enough to outrank any finite remaining TTL, finite so arithmetic
#: with the GreedyDual inflation term stays well defined.
_IMMORTAL_COST = 1e18


class ReplacementPolicy:
    """Base class: victim selection plus optional bookkeeping hooks.

    All hooks default to no-ops so the legacy-equivalent policies add no
    work to the hot path.  ``observes_requests`` gates the per-request
    hooks in the client — a policy that does not set it never sees
    ``note_request``/``note_remote_request`` calls at all.

    ``enabled`` mirrors the legacy ``CooperativeReplacement.enabled``
    flag: ``False`` only for the plain-LRU baseline, so the ablation
    tests keep reading the same attribute.
    """

    #: Whether the client should feed request observations to this policy.
    observes_requests: bool = False
    enabled: bool = True

    def __init__(self, cache: LRUCache) -> None:
        self.cache = cache
        self.evictions = 0

    def new_entry_ttl(self) -> int:
        """Initial SingletTTL for a freshly inserted entry (GroCoCa only)."""
        return 0

    def note_access(self, entry: CacheEntry, now: float) -> None:
        """A local (or TCG-serving) access touched ``entry``."""

    def note_insert(self, entry: CacheEntry, now: float) -> None:
        """``entry`` was just inserted (or refreshed in place)."""

    def note_request(self, item: int) -> None:
        """The local host requested ``item`` (cached or not)."""

    def note_remote_request(self, item: int) -> None:
        """A search flood for ``item`` was overheard from a peer."""

    def select_victim(self, now: float) -> Optional[CacheEntry]:
        """The entry to evict for one insertion; None when empty."""
        raise NotImplementedError

    def eviction_count(self) -> int:
        """Victims chosen so far (the ``policy_evictions`` counter)."""
        return self.evictions


class LRUReplacement(ReplacementPolicy):
    """Plain LRU: evict the least recently used entry (LC/CC baseline)."""

    enabled = False

    def select_victim(self, now: float) -> Optional[CacheEntry]:
        if not len(self.cache):
            return None
        self.evictions += 1
        return self.cache.lru_entries(1)[0]


class GroCoCaReplacement(ReplacementPolicy):
    """Section IV-E cooperative replacement, unchanged behind the hooks.

    Wraps the original :class:`CooperativeReplacement` (replica-first
    victim search over the ``ReplaceCandidate`` window with SingletTTL
    aging), delegating every decision so registry-resolved GroCoCa runs
    replay the goldens bit-identically.  The engagement counters
    (``replica_evictions`` / ``lru_evictions`` / ``singlet_drops``) stay
    readable through this wrapper.
    """

    def __init__(self, cache: LRUCache, inner: CooperativeReplacement) -> None:
        super().__init__(cache)
        self._inner = inner

    def new_entry_ttl(self) -> int:
        return self._inner.new_entry_ttl()

    def note_access(self, entry: CacheEntry, now: float) -> None:
        self._inner.note_access(entry)

    def select_victim(self, now: float) -> Optional[CacheEntry]:
        return self._inner.select_victim()

    def eviction_count(self) -> int:
        inner = self._inner
        return (
            inner.replica_evictions + inner.lru_evictions + inner.singlet_drops
        )

    @property
    def replica_evictions(self) -> int:
        return self._inner.replica_evictions

    @property
    def lru_evictions(self) -> int:
        return self._inner.lru_evictions

    @property
    def singlet_drops(self) -> int:
        return self._inner.singlet_drops


class LRUMinReplacement(ReplacementPolicy):
    """TTL-adapted LRU-MIN: evict the candidate closest to expiry.

    LRU-MIN refines LRU by preferring the least *valuable* entry within
    the near-LRU region instead of blind recency.  The original ranks by
    object size; with the paper's uniform item sizes the scarce resource
    is freshness, so this adaptation ranks the ``candidates``
    least-recently-used entries by absolute expiry time and evicts the
    one that will die soonest.  With no updates configured every expiry
    is infinite and the policy degenerates to plain LRU.
    """

    def __init__(self, cache: LRUCache, candidates: int) -> None:
        super().__init__(cache)
        if candidates < 1:
            raise ValueError("candidates must be >= 1")
        self.candidates = int(candidates)

    def select_victim(self, now: float) -> Optional[CacheEntry]:
        if not len(self.cache):
            return None
        window = self.cache.lru_entries(self.candidates)
        victim = window[0]
        for entry in window[1:]:
            if entry.expiry < victim.expiry:
                victim = entry
        self.evictions += 1
        return victim


class GreedyDualReplacement(ReplacementPolicy):
    """TTL-aware GreedyDual: H = inflation + remaining TTL.

    Each cached item carries a retention value ``H`` set on insert and
    restored on every hit to ``L + cost``, where the cost is the entry's
    remaining TTL (capped for never-expiring items) and ``L`` is the
    global inflation.  Eviction takes the minimum-H entry and raises
    ``L`` to it, so long-unreferenced items lose their head start no
    matter how fresh they once were — the classic aging that makes
    GreedyDual scan-resistant without timestamps.
    """

    def __init__(self, cache: LRUCache) -> None:
        super().__init__(cache)
        self._h: Dict[int, float] = {}
        self._inflation = 0.0

    def _cost(self, entry: CacheEntry, now: float) -> float:
        remaining = entry.remaining_ttl(now)
        if remaining >= _IMMORTAL_COST:
            return _IMMORTAL_COST
        return remaining

    def note_insert(self, entry: CacheEntry, now: float) -> None:
        self._h[entry.item] = self._inflation + self._cost(entry, now)

    def note_access(self, entry: CacheEntry, now: float) -> None:
        self._h[entry.item] = self._inflation + self._cost(entry, now)

    def select_victim(self, now: float) -> Optional[CacheEntry]:
        if not len(self.cache):
            return None
        victim: Optional[CacheEntry] = None
        best = float("inf")
        for entry in self.cache.lru_entries(len(self.cache)):
            value = self._h.get(entry.item, self._inflation)
            if value < best:
                best = value
                victim = entry
        self._inflation = best
        if victim is not None:
            self._h.pop(victim.item, None)
        self.evictions += 1
        return victim


class PopularityRankReplacement(ReplacementPolicy):
    """Popularity-ranking cooperative replacement (Wang & Kulkarni).

    Ranks cached items by observed demand and evicts the least popular.
    Demand is counted from two free signals: the host's own accesses and
    the search floods it overhears for other hosts (``observes_requests``
    turns the client's request hooks on).  Counts persist across
    evictions, so a popular item that cycles out re-enters with its
    reputation intact; the table is bounded by the database size.
    """

    observes_requests = True

    def __init__(self, cache: LRUCache) -> None:
        super().__init__(cache)
        self._counts: Dict[int, int] = {}

    def note_request(self, item: int) -> None:
        self._counts[item] = self._counts.get(item, 0) + 1

    def note_remote_request(self, item: int) -> None:
        self._counts[item] = self._counts.get(item, 0) + 1

    def popularity(self, item: int) -> int:
        """Observed demand for ``item`` (own + overheard requests)."""
        return self._counts.get(item, 0)

    def select_victim(self, now: float) -> Optional[CacheEntry]:
        if not len(self.cache):
            return None
        victim: Optional[CacheEntry] = None
        best = -1
        for entry in self.cache.lru_entries(len(self.cache)):
            count = self._counts.get(entry.item, 0)
            if victim is None or count < best:
                best = count
                victim = entry
        self.evictions += 1
        return victim


# --------------------------------------------------------------------------
# Registered builders (the factory contract for the "replacement"
# namespace: ``builder(config, cache, signature_scheme, peer_signature)
# -> ReplacementPolicy``; the signature arguments are None outside
# GroCoCa).


@register(
    "replacement",
    "lru",
    summary="evict the least recently used entry (LC/CC baseline)",
    citation="Chow, Leong & Chan, ICDCS'04 §VI",
)
def _build_lru(config, cache, signature_scheme, peer_signature):
    return LRUReplacement(cache)


@register(
    "replacement",
    "grococa",
    summary="replica-first cooperative replacement with SingletTTL aging",
    citation="Chow, Leong & Chan, ICDCS'04 §IV-E",
)
def _build_grococa(config, cache, signature_scheme, peer_signature):
    if signature_scheme is None or peer_signature is None:
        raise ValueError(
            "replacement policy 'grococa' needs the GroCoCa signature "
            "scheme (scheme GC)"
        )
    inner = CooperativeReplacement(
        signature_scheme,
        cache,
        peer_signature,
        config.replace_candidate,
        config.replace_delay,
        enabled=True,
    )
    return GroCoCaReplacement(cache, inner)


@register(
    "replacement",
    "lru-min",
    summary="evict the near-LRU candidate closest to expiry",
    citation="Joy & Jacob, 2012 (cache replacement survey; LRU-MIN)",
)
def _build_lru_min(config, cache, signature_scheme, peer_signature):
    return LRUMinReplacement(cache, config.replace_candidate)


@register(
    "replacement",
    "greedy-dual",
    summary="inflation-aged retention value seeded from remaining TTL",
    citation="Young, 1994 / Cao & Irani, USITS'97 (GreedyDual)",
)
def _build_greedy_dual(config, cache, signature_scheme, peer_signature):
    return GreedyDualReplacement(cache)


@register(
    "replacement",
    "popularity-rank",
    summary="evict the least-demanded item (own + overheard requests)",
    citation="Wang & Kulkarni (popularity-ranking cooperative caching)",
)
def _build_popularity(config, cache, signature_scheme, peer_signature):
    return PopularityRankReplacement(cache)
