"""Introspection hooks over the policy registry, for tools and lint.

The whole-program ``registry-consistency`` rule
(:mod:`repro.analysis.rules_project_registry`) checks three views of the
policy surface against each other: what the *code* registers, what
``docs/POLICIES.md`` documents, and what the conformance battery covers.
The code view it derives statically (so it works on lint fixtures too);
the functions here expose the *runtime* views so the rule — and any
tool — can cross-check the static scan against the living registry.

Kept free of simulation imports: :func:`conformance_covered` reports
which ``(namespace, key)`` pairs the battery iterates (the registry's
own contents) without importing the battery's simulation stack.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.policies import registry

__all__ = [
    "conformance_covered",
    "documented_keys",
    "load_policies_doc",
    "parse_catalogue_rows",
    "registered_policies",
]


def registered_policies() -> Dict[str, List[str]]:
    """namespace -> sorted registered keys, builtins loaded."""
    return {
        namespace: registry.available(namespace)
        for namespace in registry.NAMESPACES
    }


def conformance_covered() -> List[Tuple[str, str]]:
    """The ``(namespace, key)`` pairs the conformance battery iterates.

    By construction the battery covers every registered key — this
    mirrors ``repro.policies.conformance.conformance_keys()`` without
    importing the simulation layer it needs to *run* the battery.
    """
    return [
        (namespace, key)
        for namespace in registry.NAMESPACES
        for key in registry.available(namespace)
    ]


_BACKTICK_RE = re.compile(r"`([^`\n]+)`")


def documented_keys(policies_doc: str) -> Set[str]:
    """Every backticked token in a POLICIES doc (the documented surface)."""
    return {match.group(1).strip() for match in _BACKTICK_RE.finditer(policies_doc)}


def parse_catalogue_rows(
    policies_doc: str, namespaces: Tuple[str, ...] = registry.NAMESPACES
) -> List[Tuple[str, str]]:
    """``(namespace, key)`` pairs from the doc's catalogue table.

    Rows look like ``| `probcache` | admission | ... |`` — the first cell
    holds one or more backticked keys, the second the namespace.  Rows
    whose second cell is not a known namespace (header rows, separator
    rows, other tables) are skipped.
    """
    rows: List[Tuple[str, str]] = []
    for line in policies_doc.splitlines():
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if len(cells) < 2:
            continue
        namespace = cells[1]
        if namespace not in namespaces:
            continue
        for match in _BACKTICK_RE.finditer(cells[0]):
            rows.append((namespace, match.group(1).strip()))
    return rows


def load_policies_doc(root: Path) -> str:
    """The text of ``docs/POLICIES.md`` under ``root`` ('' when absent)."""
    path = Path(root) / "docs" / "POLICIES.md"
    try:
        return path.read_text(encoding="utf-8")
    except OSError:
        return ""
