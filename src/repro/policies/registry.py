"""String-keyed policy plugin registry (ROADMAP item 3).

The simulator's strategy choices — caching scheme, cache admission, cache
replacement, peer-group discovery and retrieve peer-scoring — are looked
up here by ``(namespace, key)`` instead of being hard-coded, the way
Icarus hosts its ~20 strategies behind ``@register_strategy``.  Adding a
policy is one decorated definition::

    from repro.policies.registry import register

    @register("replacement", "lru-min",
              summary="evict the candidate closest to expiry")
    def _build_lru_min(config, cache, signature_scheme, peer_signature):
        return LRUMinReplacement(cache, config.replace_candidate)

Every registered key is automatically picked up by the conformance
battery (:mod:`repro.policies.conformance`), the differential golden
test, the sweep surface (``sweep_policy_matrix``) and ``repro policies
list`` — a policy that does not pass the battery fails CI.

What a registered *value* must be differs per namespace (the factory in
:mod:`repro.policies.factory` documents the builder contracts); the
registry itself only stores and resolves them.  Builtin policies load
lazily on the first :func:`available`/:func:`resolve` call, mirroring
``rule_registry()`` in :mod:`repro.analysis.engine`, so importing this
module stays cheap and cycle-free.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple

__all__ = [
    "NAMESPACES",
    "PolicyInfo",
    "available",
    "describe",
    "entries",
    "register",
    "register_value",
    "resolve",
    "temporary_policy",
]

#: The registry's namespaces, one per strategy axis of the simulator.
NAMESPACES: Tuple[str, ...] = (
    "scheme",
    "admission",
    "replacement",
    "discovery",
    "peer-scoring",
)


@dataclass(frozen=True)
class PolicyInfo:
    """One registered policy: its key, value and catalogue metadata."""

    namespace: str
    key: str
    value: Any
    summary: str = ""
    citation: str = ""


_REGISTRY: Dict[str, Dict[str, PolicyInfo]] = {ns: {} for ns in NAMESPACES}
_builtins_loaded = False


def _load_builtins() -> None:
    """Import the builtin policy modules (registration is import-driven).

    Imported here, not at module top, to avoid cycles: the policy modules
    import this module for the decorator, and ``repro.core.config``
    imports this module for key validation.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.policies import (  # noqa: F401
        admission,
        discovery,
        replacement,
        schemes,
    )
    from repro.net import health  # noqa: F401


def _namespace(namespace: str) -> Dict[str, PolicyInfo]:
    table = _REGISTRY.get(namespace)
    if table is None:
        raise KeyError(
            f"unknown policy namespace {namespace!r}; "
            f"available: {', '.join(NAMESPACES)}"
        )
    return table


def register_value(
    namespace: str,
    key: str,
    value: Any,
    *,
    summary: str = "",
    citation: str = "",
) -> Any:
    """Register ``value`` under ``(namespace, key)``; returns ``value``.

    Raises ``ValueError`` on a duplicate key — policies are registered
    exactly once, so resolution can never depend on registration order.
    """
    table = _namespace(namespace)
    if not isinstance(key, str) or not key:
        raise ValueError(f"policy key must be a non-empty string, got {key!r}")
    if key in table:
        raise ValueError(f"duplicate {namespace} policy {key!r}")
    table[key] = PolicyInfo(
        namespace=namespace,
        key=key,
        value=value,
        summary=summary,
        citation=citation,
    )
    return value


def register(
    namespace: str,
    key: str,
    *,
    summary: str = "",
    citation: str = "",
) -> Callable[[Any], Any]:
    """Decorator form of :func:`register_value`::

        @register("admission", "lcd", summary="...")
        def _build_lcd(config, rng):
            return LeaveCopyDownAdmission()
    """
    # Fail fast on an unknown namespace, before the decorated definition.
    _namespace(namespace)

    def decorator(value: Any) -> Any:
        return register_value(
            namespace, key, value, summary=summary, citation=citation
        )

    return decorator


def available(namespace: str) -> List[str]:
    """The registered keys of ``namespace``, sorted."""
    _load_builtins()
    return sorted(_namespace(namespace))


def describe(namespace: str, key: str) -> PolicyInfo:
    """The :class:`PolicyInfo` behind ``(namespace, key)``.

    The ``KeyError`` for an unknown key names the namespace and lists
    every valid key verbatim, so a typo'd config or CLI flag is
    self-explaining.
    """
    _load_builtins()
    table = _namespace(namespace)
    info = table.get(key)
    if info is None:
        raise KeyError(
            f"unknown {namespace} policy {key!r}; "
            f"available: {', '.join(sorted(table))}"
        )
    return info


def resolve(namespace: str, key: str) -> Any:
    """The registered value behind ``(namespace, key)``."""
    return describe(namespace, key).value


def entries(namespace: str) -> List[PolicyInfo]:
    """Every :class:`PolicyInfo` of ``namespace``, sorted by key."""
    _load_builtins()
    return [info for _, info in sorted(_namespace(namespace).items())]


@contextmanager
def temporary_policy(
    namespace: str,
    key: str,
    value: Any,
    *,
    summary: str = "",
    citation: str = "",
) -> Iterator[PolicyInfo]:
    """Register a policy for the duration of a ``with`` block (tests).

    The entry is removed on exit even when the block raises, so property
    tests can register throwaway policies without polluting the process
    registry.
    """
    register_value(namespace, key, value, summary=summary, citation=citation)
    try:
        yield _REGISTRY[namespace][key]
    finally:
        _REGISTRY[namespace].pop(key, None)
