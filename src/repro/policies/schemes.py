"""The caching-scheme namespace: the paper's LC / CC / GC trio.

A scheme entry is a frozen descriptor carrying the protocol shape flags
(cooperation, group-basedness) and mapping back to the
:class:`~repro.core.config.CachingScheme` enum on demand.  The CLI
resolves ``--scheme`` through this namespace, so ``repro policies list``
and the conformance battery cover the baselines alongside the pluggable
admission/replacement/discovery axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.policies.registry import register_value

__all__ = ["SchemeSpec"]


@dataclass(frozen=True)
class SchemeSpec:
    """One caching scheme: enum value and protocol-shape flags."""

    name: str  # the CachingScheme enum value ("LC" / "CC" / "GC")
    cooperative: bool
    group_based: bool

    def to_enum(self):
        """The :class:`~repro.core.config.CachingScheme` member.

        Imported lazily: ``repro.core.config`` imports the registry for
        key validation, so the scheme table cannot import it back at
        module load.
        """
        from repro.core.config import CachingScheme

        return CachingScheme(self.name)


register_value(
    "scheme",
    "lc",
    SchemeSpec("LC", cooperative=False, group_based=False),
    summary="conventional caching: no peer cooperation",
    citation="Chow, Leong & Chan, ICDCS'04 §VI",
)
register_value(
    "scheme",
    "cc",
    SchemeSpec("CC", cooperative=True, group_based=False),
    summary="COCA: bounded-hop peer search and retrieve",
    citation="Chow, Leong & Chan, ICDCS'04 §III",
)
register_value(
    "scheme",
    "gc",
    SchemeSpec("GC", cooperative=True, group_based=True),
    summary="GroCoCa: COCA plus TCGs, signatures, admission, replacement",
    citation="Chow, Leong & Chan, ICDCS'04 §IV",
)
