"""The conformance battery every registered policy must pass.

One small simulated run per ``(namespace, key)`` pair, checked four ways:

* **smoke** — the run completes and its outcome counts sum to the total;
* **invariants** — a monitored replay raises no violations;
* **seed stability** — the same config run twice is bit-identical
  (:func:`~repro.check.golden.results_to_dict` compared field by field);
* **round trip** — the config survives ``as_dict``/``from_dict`` and the
  rebuilt config resolves to the same policy keys.

Both ``tests/test_policy_conformance.py`` (auto-parametrised over
:func:`conformance_keys`) and ``tools/policy_matrix.py`` (the CI matrix
job) drive runs through :func:`run_conformance`, so a policy added with
one ``@register`` line is battery-covered with no further wiring.

Lives outside ``repro.policies.__init__`` on purpose: it imports the
simulation layer, which imports the config, which imports the package
``__init__`` — keeping this module out of that chain avoids the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.check.golden import results_to_dict
from repro.check.monitor import InvariantMonitor
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import run_simulation
from repro.policies import registry
from repro.policies.factory import resolved_policy_keys

__all__ = [
    "ConformanceReport",
    "conformance_config",
    "conformance_keys",
    "run_conformance",
]


@dataclass
class ConformanceReport:
    """Outcome of one policy's battery run."""

    namespace: str
    key: str
    passed: bool
    checks: Dict[str, bool] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    hit_ratio: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "namespace": self.namespace,
            "key": self.key,
            "passed": self.passed,
            "checks": dict(self.checks),
            "failures": list(self.failures),
            "hit_ratio": self.hit_ratio,
        }


def conformance_keys() -> List[Tuple[str, str]]:
    """Every ``(namespace, key)`` pair the battery must cover."""
    return [
        (namespace, key)
        for namespace in registry.NAMESPACES
        for key in registry.available(namespace)
    ]


def conformance_config(namespace: str, key: str) -> SimulationConfig:
    """A small config that genuinely exercises ``(namespace, key)``.

    Tight caches and a narrow access range force admission and
    replacement decisions; a non-zero update rate gives the TTL-aware
    policies finite expiries; cooperative schemes host the peer-facing
    namespaces (``discovery`` picks the scheme its key is valid for).
    """
    base = dict(
        n_clients=6,
        n_data=120,
        access_range=30,
        cache_size=6,
        group_size=3,
        data_update_rate=0.2,
        measure_requests=5,
        warmup_min_time=20.0,
        warmup_max_time=40.0,
        max_sim_time=400.0,
        ndp_enabled=False,
        seed=11,
    )
    if namespace == "scheme":
        spec = registry.resolve("scheme", key)
        return SimulationConfig(scheme=spec.to_enum(), **base)
    if namespace == "admission":
        return SimulationConfig(
            scheme=CachingScheme.GC, admission_policy=key, **base
        )
    if namespace == "replacement":
        return SimulationConfig(
            scheme=CachingScheme.GC, replacement_policy=key, **base
        )
    if namespace == "discovery":
        scheme = CachingScheme.GC if key != "none" else CachingScheme.CC
        return SimulationConfig(scheme=scheme, discovery_policy=key, **base)
    if namespace == "peer-scoring":
        # A non-default peer policy flips health_enabled on by itself;
        # for "arrival" the breaker does it so the tracker is really built.
        overrides = {"peer_policy": key}
        if key == "arrival":
            overrides["breaker_threshold"] = 3
        return SimulationConfig(scheme=CachingScheme.CC, **base, **overrides)
    raise KeyError(
        f"unknown policy namespace {namespace!r}; "
        f"available: {', '.join(registry.NAMESPACES)}"
    )


def run_conformance(namespace: str, key: str) -> ConformanceReport:
    """Run the full battery for one registered policy."""
    report = ConformanceReport(namespace=namespace, key=key, passed=True)

    def check(name: str, ok: bool, detail: str = "") -> None:
        report.checks[name] = bool(ok)
        if not ok:
            report.passed = False
            report.failures.append(f"{name}: {detail}" if detail else name)

    config = conformance_config(namespace, key)
    monitor = InvariantMonitor()
    monitored = run_simulation(config, monitor=monitor)
    violations = monitor.report().violations
    check(
        "invariants",
        not violations,
        "; ".join(str(v) for v in violations[:3]),
    )
    total = monitored.requests
    outcome_sum = (
        monitored.local_hits
        + monitored.global_hits
        + monitored.server_requests
        + monitored.failures
    )
    check("smoke", total > 0 and outcome_sum == total,
          f"total={total} outcome_sum={outcome_sum}")
    report.hit_ratio = monitored.lch_ratio + monitored.gch_ratio

    first = results_to_dict(run_simulation(config))
    second = results_to_dict(run_simulation(config))
    drift = [k for k in first if first[k] != second.get(k)]
    check("seed_stable", first == second, f"drifting fields: {drift[:5]}")

    rebuilt = SimulationConfig.from_dict(config.as_dict())
    check(
        "round_trip",
        rebuilt == config
        and resolved_policy_keys(rebuilt) == resolved_policy_keys(config),
        "config or resolved keys changed across as_dict/from_dict",
    )
    return report
