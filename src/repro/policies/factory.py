"""Resolution of a config's policy choices through the registry.

The bridge between :class:`~repro.core.config.SimulationConfig` and the
registry: the config's explicit ``*_policy`` keys override a **legacy
mapping** derived from the scheme and the ablation flags, so a config
that sets no explicit key resolves to exactly the policies the
pre-registry code hard-wired — which is how the four golden fixtures
replay bit-identically through the registry path.

Builder contracts per namespace (what :func:`registry.resolve` returns):

========== =============================================================
scheme      :class:`~repro.policies.schemes.SchemeSpec` (a value, not a
            builder)
admission   ``builder(config, rng) -> AdmissionPolicy``; ``rng`` is the
            shared ``admission-policy`` stream (None unless the resolved
            key is in :data:`RNG_ADMISSION_KEYS`)
replacement ``builder(config, cache, signature_scheme, peer_signature)
            -> ReplacementPolicy``
discovery   ``builder(config, monitor, tracer) -> Optional[TCGManager]``
peer-scoring ``(candidates, tracker) -> reply`` scoring callable (see
            :mod:`repro.net.health`)
========== =============================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.policies import registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    import numpy as np

    from repro.core.config import SimulationConfig

__all__ = [
    "RNG_ADMISSION_KEYS",
    "admission_needs_rng",
    "build_admission",
    "build_discovery",
    "build_replacement",
    "custom_policies",
    "legacy_policy_keys",
    "resolved_policy_keys",
]

#: Admission keys whose builder draws from the ``admission-policy``
#: stream.  The stream is created only for these, so deterministic
#: policies add no RNG stream and replay identically.
RNG_ADMISSION_KEYS = ("probcache",)


def legacy_policy_keys(config: "SimulationConfig") -> Dict[str, str]:
    """The registry keys the pre-registry code hard-wired for ``config``.

    Derived from the scheme and the ablation flags only — the explicit
    ``*_policy`` fields are deliberately ignored, so the differential
    golden test can compare this mapping against an explicit-key config.
    """
    scheme = config.scheme
    if scheme.group_based:
        admission = "grococa" if config.admission_control else "always"
        replacement = "grococa" if config.cooperative_replacement else "lru"
        discovery = "tcg"
    else:
        admission = "always"
        replacement = "lru"
        discovery = "none"
    return {
        "scheme": scheme.value.lower(),
        "admission": admission,
        "replacement": replacement,
        "discovery": discovery,
        "peer-scoring": config.peer_policy,
    }


def resolved_policy_keys(config: "SimulationConfig") -> Dict[str, str]:
    """The keys a run actually uses: explicit fields override the legacy
    mapping, empty fields fall through to it."""
    keys = legacy_policy_keys(config)
    if config.admission_policy:
        keys["admission"] = config.admission_policy
    if config.replacement_policy:
        keys["replacement"] = config.replacement_policy
    if config.discovery_policy:
        keys["discovery"] = config.discovery_policy
    return keys


def custom_policies(config: "SimulationConfig") -> bool:
    """Whether any resolved key departs from the legacy mapping.

    Gates the ``policy_*`` RunProfile counters: a config whose explicit
    keys merely restate the legacy mapping gets the exact legacy counter
    set, so golden fixtures and the differential test see no new fields.
    """
    return resolved_policy_keys(config) != legacy_policy_keys(config)


def admission_needs_rng(config: "SimulationConfig") -> bool:
    """Whether the resolved admission policy draws random numbers."""
    return resolved_policy_keys(config)["admission"] in RNG_ADMISSION_KEYS


def build_admission(
    config: "SimulationConfig", rng: "Optional[np.random.Generator]" = None
):
    """The admission policy instance for one client."""
    key = resolved_policy_keys(config)["admission"]
    return registry.resolve("admission", key)(config, rng)


def build_replacement(
    config: "SimulationConfig",
    cache,
    *,
    signature_scheme=None,
    peer_signature=None,
):
    """The replacement policy instance for one client (and its cache)."""
    key = resolved_policy_keys(config)["replacement"]
    builder = registry.resolve("replacement", key)
    return builder(config, cache, signature_scheme, peer_signature)


def build_discovery(config: "SimulationConfig", monitor=None, tracer=None):
    """The peer-group discovery machinery (None for group-less schemes)."""
    key = resolved_policy_keys(config)["discovery"]
    builder = registry.resolve("discovery", key)
    return builder(config, monitor=monitor, tracer=tracer)
