"""The peer-group discovery namespace.

A discovery entry is a builder ``(config, monitor, tracer) ->
Optional[TCGManager]``: it constructs the server-side peer-group
discovery machinery, or returns ``None`` for schemes that form no
groups.  GroCoCa's tightly-coupled-group manager (Algorithms 1-3 of the
paper) is the one real strategy today; registering the axis makes the
MSS wiring pluggable so alternative grouping rules (e.g. geographic
constraints per Avrachenkov et al.) drop in as new keys.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tcg import TCGManager
from repro.policies.registry import register

__all__ = []


@register(
    "discovery",
    "none",
    summary="no peer-group discovery (LC/CC)",
    citation="Chow, Leong & Chan, ICDCS'04 §III",
)
def _build_none(config, monitor=None, tracer=None) -> Optional[TCGManager]:
    return None


@register(
    "discovery",
    "tcg",
    summary="MSS-side tightly coupled group discovery (WADM + ASM)",
    citation="Chow, Leong & Chan, ICDCS'04 §IV-A..C",
)
def _build_tcg(config, monitor=None, tracer=None) -> Optional[TCGManager]:
    return TCGManager(
        config.n_clients,
        config.n_data,
        config.distance_threshold,
        config.similarity_threshold,
        config.omega,
        monitor=monitor,
        tracer=tracer,
    )
