"""Correctness oracles: runtime invariants and golden-trace testing.

Two complementary layers defend the simulator's semantics:

* :mod:`repro.check.monitor` — a pluggable :class:`InvariantMonitor`
  whose hook points, threaded through the kernel, the client/server
  protocol stack, the NDP and TCG discovery, turn implicit protocol
  assumptions into machine-checked invariants at run time;
* :mod:`repro.check.golden` — committed golden-trace fixtures of
  canonical runs, replayed in CI so any semantic drift fails with a
  field-level diff (``python -m repro check golden record|verify``).

Quick start::

    from repro.check import InvariantMonitor, run_checked

    results, report = run_checked(config)
    assert report.ok, report.violations
"""

from typing import TYPE_CHECKING, Tuple

from repro.check.monitor import (
    InvariantMonitor,
    InvariantViolation,
    MonitorReport,
)

if TYPE_CHECKING:
    from repro.core.config import SimulationConfig
    from repro.core.metrics import Results

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "MonitorReport",
    "run_checked",
]


def run_checked(
    config: "SimulationConfig", mode: str = "raise", audit_interval: float = 5.0
) -> "Tuple[Results, MonitorReport]":
    """Run one simulation under a fresh :class:`InvariantMonitor`.

    Returns ``(results, report)``.  With ``mode="raise"`` (default) the
    first violation raises an :class:`InvariantViolation` out of the run;
    with ``mode="collect"`` the report carries every violation found.
    """
    from repro.core.simulation import run_simulation

    monitor = InvariantMonitor(mode=mode, audit_interval=audit_interval)
    results = run_simulation(config, monitor=monitor)
    return results, monitor.report()
