"""Runtime invariant oracle for the COCA/GroCoCa simulator.

:class:`InvariantMonitor` is a pluggable correctness oracle: when an
instance is handed to :class:`~repro.core.simulation.Simulation` (or
:func:`~repro.core.simulation.run_simulation`), hook points threaded
through the simulation stack feed it every state transition worth
checking:

* **kernel** — event-time monotonicity, schedule-in-the-past detection,
  heap bookkeeping (pushes − pops == pending events) and condition
  fire-count sanity;
* **client** — cache occupancy ≤ capacity, cache key/entry integrity,
  one-search-in-flight-per-host, and message conservation (every peer
  SEARCH terminates as a reply, a listen-window timeout, or an
  MSS fallback);
* **server** — replies never carry expiries in the past, retrieve times
  from the future, or overlapping membership deltas;
* **NDP** — neighbour-table symmetry within the beacon staleness bound
  and no beacons from the future;
* **TCG** — membership symmetry, irreflexivity, and consistency with the
  WADM/ASM thresholds that define it;
* **power** — per-host and per-purpose ledgers non-negative and monotone
  non-decreasing over time (energy is only ever spent);
* **metrics** — outcome counters sum to the request count.

Violations raise (or, in ``collect`` mode, record) a structured
:class:`InvariantViolation` carrying the simulated time, the offending
host and the run's master seed, so any report is a replayable repro
recipe.  Runs without a monitor take none of these branches and stay
bit-identical to the unmonitored simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import RequestOutcome
from repro.net.health import CLOSED, LEGAL_TRANSITIONS, OPEN

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "MonitorReport",
    "SEARCH_OUTCOMES",
]

#: The only ways a peer search is allowed to terminate (Section III):
#: a usable reply, an expired listen window, or a failed retrieve that
#: falls back to the MSS.
SEARCH_OUTCOMES: Tuple[str, ...] = ("reply", "timeout", "fallback")

#: Slack for floating-point comparisons on simulated clocks.
_TIME_EPS = 1e-9


class InvariantViolation(AssertionError):
    """A machine-checked protocol invariant failed.

    Carries enough structure to reproduce the failure: the short
    ``invariant`` name, the simulated time, the offending host (when the
    invariant is per-host) and the run's master ``seed`` — replaying the
    same :class:`~repro.core.config.SimulationConfig` with that seed
    deterministically reaches the same state.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        sim_time: float = 0.0,
        host: Optional[int] = None,
        seed: Optional[int] = None,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.invariant = invariant
        self.sim_time = sim_time
        self.host = host
        self.seed = seed
        self.details: Dict[str, Any] = dict(details or {})
        context = f"[{invariant}] t={sim_time:.6f}"
        if host is not None:
            context += f" host={host}"
        if seed is not None:
            context += f" seed={seed}"
        super().__init__(f"{context}: {message}")


@dataclass
class MonitorReport:
    """Summary of one monitored run: work done and violations found."""

    checks_run: int
    violations: List[InvariantViolation] = field(default_factory=list)
    searches_opened: int = 0
    searches_closed: int = 0
    search_outcomes: Dict[str, int] = field(default_factory=dict)
    # Failure-aware retrieve accounting (zero when the layer is off).
    hedges: int = 0
    hedge_wins: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def summary(self) -> str:
        """One human-readable line (used by ``repro run --check``)."""
        outcomes = "  ".join(
            f"{name}={count}" for name, count in sorted(self.search_outcomes.items())
        )
        return (
            f"invariants: {self.checks_run} checks, "
            f"{len(self.violations)} violations; "
            f"searches {self.searches_opened} opened / "
            f"{self.searches_closed} closed"
            + (f" ({outcomes})" if outcomes else "")
        )


class InvariantMonitor:
    """A pluggable runtime invariant checker (see the module docstring).

    ``mode="raise"`` (the default) raises the first
    :class:`InvariantViolation` straight out of the simulation;
    ``mode="collect"`` records every violation and keeps running, which
    suits sweep-wide audits.  ``audit_interval`` is the simulated-seconds
    period of the global audit (NDP symmetry, TCG consistency, power
    conservation, heap bookkeeping); the cheap per-transition hooks run
    on every event regardless.
    """

    def __init__(self, mode: str = "raise", audit_interval: float = 5.0) -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        if audit_interval <= 0:
            raise ValueError("audit_interval must be positive")
        self.mode = mode
        self.audit_interval = float(audit_interval)
        self.seed: Optional[int] = None
        self.config: Any = None
        self.checks_run = 0
        self.violations: List[InvariantViolation] = []
        # Search conservation bookkeeping.
        self.searches_opened = 0
        self.searches_closed = 0
        self.search_outcomes: Dict[str, int] = {o: 0 for o in SEARCH_OUTCOMES}
        self._open_searches: Dict[int, Tuple[int, int]] = {}  # host -> sid
        # Failure-aware retrieve bookkeeping: last seen breaker state per
        # (host, peer) pair, plus hedge conservation counters.
        self._breaker_states: Dict[Tuple[int, int], str] = {}
        self.hedges = 0
        self.hedge_wins = 0
        # Kernel heap bookkeeping.
        self._scheduled = 0
        self._stepped = 0
        # Power conservation: last audited per-purpose totals.
        self._last_power: Optional[Dict[str, float]] = None

    # -- plumbing ---------------------------------------------------------------

    def bind(self, config: Any) -> None:
        """Attach the run's config so violations carry the replay seed."""
        self.config = config
        self.seed = config.seed

    def violation(
        self,
        invariant: str,
        message: str,
        sim_time: float = 0.0,
        host: Optional[int] = None,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Raise (or record, in ``collect`` mode) one violation."""
        error = InvariantViolation(
            invariant,
            message,
            sim_time=sim_time,
            host=host,
            seed=self.seed,
            details=details,
        )
        if self.mode == "raise":
            raise error
        self.violations.append(error)

    def report(self) -> MonitorReport:
        """The run's summary: checks performed and violations found."""
        return MonitorReport(
            checks_run=self.checks_run,
            violations=list(self.violations),
            searches_opened=self.searches_opened,
            searches_closed=self.searches_closed,
            search_outcomes=dict(self.search_outcomes),
            hedges=self.hedges,
            hedge_wins=self.hedge_wins,
        )

    # -- kernel hooks -----------------------------------------------------------

    def on_schedule(self, env: Any, when: float) -> None:
        """Called on every heap push: no event may land in the past."""
        self.checks_run += 1
        self._scheduled += 1
        if when < env.now - _TIME_EPS:
            self.violation(
                "kernel-schedule-in-past",
                f"event scheduled at {when} while now={env.now}",
                sim_time=env.now,
                details={"when": when},
            )

    def on_step(self, env: Any, when: float) -> None:
        """Called on every heap pop: the clock must never run backwards."""
        self.checks_run += 1
        self._stepped += 1
        if when < env.now - _TIME_EPS:
            self.violation(
                "kernel-time-monotonicity",
                f"popped event at {when} while now={env.now}",
                sim_time=env.now,
                details={"when": when},
            )

    def on_condition_fire(self, condition: Any) -> None:
        """AnyOf/AllOf bookkeeping: fired count bounded by member count."""
        self.checks_run += 1
        if condition._fired_count > len(condition.events):
            self.violation(
                "kernel-condition-overcount",
                f"condition counted {condition._fired_count} fires "
                f"over {len(condition.events)} events",
                sim_time=condition.env.now,
            )

    # -- client hooks -----------------------------------------------------------

    def on_search_open(self, host: int, sid: Any, now: float) -> None:
        """A peer search started; a host runs at most one at a time."""
        self.checks_run += 1
        self.searches_opened += 1
        if host in self._open_searches:
            self.violation(
                "search-concurrency",
                f"host opened search {sid} while {self._open_searches[host]} "
                "is still in flight",
                sim_time=now,
                host=host,
            )
        self._open_searches[host] = sid

    def on_search_close(self, host: int, sid: Any, outcome: str, now: float) -> None:
        """A peer search ended; it must match the open one and be one of
        the three legal terminations (reply / timeout / MSS fallback)."""
        self.checks_run += 1
        self.searches_closed += 1
        if outcome not in self.search_outcomes:
            self.violation(
                "search-unknown-outcome",
                f"search {sid} closed with unknown outcome {outcome!r}",
                sim_time=now,
                host=host,
            )
        else:
            self.search_outcomes[outcome] += 1
        open_sid = self._open_searches.pop(host, None)
        if open_sid != sid:
            self.violation(
                "search-conservation",
                f"search {sid} closed but {open_sid} was open",
                sim_time=now,
                host=host,
            )

    # -- failure-aware retrieve hooks --------------------------------------------

    def on_retrieve_attempt(
        self, host: int, peer: int, breaker_state: str, now: float
    ) -> None:
        """A retrieve was sent; the peer's breaker must not be open."""
        self.checks_run += 1
        if breaker_state == OPEN:
            self.violation(
                "breaker-attempt-while-open",
                f"retrieve sent to peer {peer} while its breaker is open",
                sim_time=now,
                host=host,
                details={"peer": peer},
            )

    def on_breaker_transition(
        self, host: int, peer: int, old: str, new: str, now: float
    ) -> None:
        """One breaker edge: legal, and continuous with the last one seen."""
        self.checks_run += 1
        if (old, new) not in LEGAL_TRANSITIONS:
            self.violation(
                "breaker-illegal-transition",
                f"breaker for peer {peer} moved {old!r} -> {new!r}",
                sim_time=now,
                host=host,
                details={"peer": peer, "old": old, "new": new},
            )
        key = (host, peer)
        last = self._breaker_states.get(key, CLOSED)
        if old != last:
            self.violation(
                "breaker-chain-broken",
                f"breaker for peer {peer} left {old!r} but was last seen "
                f"in {last!r}",
                sim_time=now,
                host=host,
                details={"peer": peer, "old": old, "last": last},
            )
        self._breaker_states[key] = new

    def on_hedge(self, host: int, sid: Any, now: float) -> None:
        """A hedged retrieve went out; it must belong to the open search."""
        self.checks_run += 1
        self.hedges += 1
        if self._open_searches.get(host) != sid:
            self.violation(
                "hedge-outside-search",
                f"hedge for search {sid} but host's open search is "
                f"{self._open_searches.get(host)}",
                sim_time=now,
                host=host,
            )

    def on_hedge_win(self, host: int, sid: Any, now: float) -> None:
        """The hedged request served the data first."""
        self.checks_run += 1
        self.hedge_wins += 1

    def check_client_cache(self, host: int, cache: Any, now: float) -> None:
        """Cache occupancy ≤ capacity and key/entry integrity."""
        self.checks_run += 1
        if len(cache) > cache.capacity:
            self.violation(
                "cache-capacity",
                f"cache holds {len(cache)} entries over capacity "
                f"{cache.capacity}",
                sim_time=now,
                host=host,
                details={"occupancy": len(cache), "capacity": cache.capacity},
            )
        for item in cache.items():
            entry = cache.get(item)
            if entry is None or entry.item != item:
                self.violation(
                    "cache-entry-integrity",
                    f"cache key {item} maps to entry "
                    f"{None if entry is None else entry.item}",
                    sim_time=now,
                    host=host,
                )

    # -- server hooks -----------------------------------------------------------

    def check_server_reply(
        self,
        client: int,
        expiry: float,
        retrieve_time: float,
        added: Any,
        removed: Any,
        now: float,
    ) -> None:
        """MSS replies must be internally consistent with the clock."""
        self.checks_run += 1
        if expiry < now - _TIME_EPS:
            self.violation(
                "server-expiry-in-past",
                f"reply TTL already expired ({expiry} < now={now})",
                sim_time=now,
                host=client,
            )
        if retrieve_time > now + _TIME_EPS:
            self.violation(
                "server-retrieve-from-future",
                f"reply retrieve_time {retrieve_time} is after now={now}",
                sim_time=now,
                host=client,
            )
        if added & removed:
            self.violation(
                "membership-delta-overlap",
                f"clients {sorted(added & removed)} both added and removed",
                sim_time=now,
                host=client,
            )

    # -- NDP hooks --------------------------------------------------------------

    def check_ndp(self, ndp: Any, now: float) -> None:
        """Neighbour-table symmetry within the beacon staleness bound.

        Beacon reception is symmetric (shared ``connected`` mask, symmetric
        range), so a fresh one-sided link or a cross-pair skew beyond the
        liveness horizon means the table drifted from the radio model.
        """
        self.checks_run += 1
        table = ndp._last_heard
        horizon = ndp.liveness_horizon
        if np.any(table > now + _TIME_EPS):
            self.violation(
                "ndp-beacon-from-future",
                "neighbour table records a beacon after the current time",
                sim_time=now,
            )
        finite = np.isfinite(table)
        both = finite & finite.T
        if both.any():
            # Subtract only the finite pairs: the full-matrix difference
            # would evaluate inf - inf at one-sided entries and warn.
            skew = np.abs(table[both] - table.T[both])
            if np.any(skew > horizon + _TIME_EPS):
                self.violation(
                    "ndp-symmetry",
                    f"neighbour-table skew {float(skew.max())} exceeds the "
                    f"staleness bound {horizon}",
                    sim_time=now,
                )
        one_sided = finite & ~finite.T
        if one_sided.any():
            fresh = (now - table) <= horizon
            bad = one_sided & fresh
            if bad.any():
                i, j = (int(x) for x in np.argwhere(bad)[0])
                self.violation(
                    "ndp-symmetry",
                    f"host {i} holds a fresh link to {j} that {j} has no "
                    "record of",
                    sim_time=now,
                    host=i,
                )

    # -- TCG hooks --------------------------------------------------------------

    def check_tcg_row(self, tcg: Any, client: int, now: float = math.nan) -> None:
        """One client's TCG row: symmetric, irreflexive, threshold-true."""
        self.checks_run += 1
        row = tcg.member[client]
        if row[client]:
            self.violation(
                "tcg-self-membership",
                "client is a member of its own TCG row",
                sim_time=now,
                host=client,
            )
        if not np.array_equal(row, tcg.member[:, client]):
            self.violation(
                "tcg-asymmetry",
                "membership row and column disagree",
                sim_time=now,
                host=client,
            )
        members = np.nonzero(row)[0]
        if members.size:
            distances = tcg.wadm[client, members]
            if np.any(distances > tcg.distance_threshold):
                self.violation(
                    "tcg-distance-threshold",
                    f"member at weighted distance {float(distances.max())} "
                    f"over Δ={tcg.distance_threshold}",
                    sim_time=now,
                    host=client,
                )
            similarities = tcg.similarity_row(client)[members]
            if np.any(similarities < tcg.similarity_threshold):
                self.violation(
                    "tcg-similarity-threshold",
                    f"member at similarity {float(similarities.min())} "
                    f"under δ={tcg.similarity_threshold}",
                    sim_time=now,
                    host=client,
                )

    # -- global audit ------------------------------------------------------------

    def audit(self, simulation: Any) -> None:
        """Periodic whole-system sweep over every subsystem's invariants."""
        env = simulation.env
        now = env.now
        self.checks_run += 1
        # Kernel queue bookkeeping: pushes − pops == pending events.
        pending = self._scheduled - self._stepped
        if pending != env.pending_events:
            self.violation(
                "kernel-heap-bookkeeping",
                f"{pending} events outstanding but queue holds "
                f"{env.pending_events}",
                sim_time=now,
            )
        for client in simulation.clients:
            self.check_client_cache(client.index, client.cache, now)
            if bool(simulation.network.connected[client.index]) != client.connected:
                self.violation(
                    "connectivity-desync",
                    "host and radio disagree about connectivity",
                    sim_time=now,
                    host=client.index,
                )
        for host, sid in self._open_searches.items():
            if sid not in simulation.clients[host]._searches:
                self.violation(
                    "search-bookkeeping",
                    f"search {sid} is open but the host lost its state",
                    sim_time=now,
                    host=host,
                )
        if simulation.ndp is not None:
            self.check_ndp(simulation.ndp, now)
        if simulation.tcg is not None:
            for client in range(simulation.tcg.n_clients):
                self.check_tcg_row(simulation.tcg, client, now)
        self._audit_power(simulation.ledger, now)
        self._audit_metrics(simulation.metrics, now)

    def _audit_power(self, ledger: Any, now: float) -> None:
        """Power non-negativity and conservation (totals never shrink)."""
        self.checks_run += 1
        per_host = ledger.per_host_totals()
        if np.any(per_host < 0.0):
            self.violation(
                "power-negative",
                "a host's accumulated power consumption is negative",
                sim_time=now,
                host=int(np.argmin(per_host)),
            )
        totals = ledger.by_purpose()
        previous = self._last_power or {}
        for purpose, total in totals.items():
            if total < previous.get(purpose, 0.0) - _TIME_EPS:
                self.violation(
                    "power-ledger-regression",
                    f"{purpose} power total shrank from "
                    f"{previous.get(purpose, 0.0)} to {total}",
                    sim_time=now,
                )
        self._last_power = totals

    def _audit_metrics(self, metrics: Any, now: float) -> None:
        """Outcome counters must sum to the request count."""
        self.checks_run += 1
        total = sum(metrics.outcomes.values())
        if total != metrics.requests:
            self.violation(
                "metrics-conservation",
                f"outcome counts sum to {total} but {metrics.requests} "
                "requests were recorded",
                sim_time=now,
            )
        if metrics.global_hits_tcg > metrics.outcomes[RequestOutcome.GLOBAL_HIT]:
            self.violation(
                "metrics-tcg-overcount",
                "more TCG global hits than global hits",
                sim_time=now,
            )

    def finalize(self, simulation: Any) -> None:
        """End-of-run audit plus message-conservation accounting."""
        self.audit(simulation)
        self.checks_run += 1
        in_flight = len(self._open_searches)
        if self.searches_opened != self.searches_closed + in_flight:
            self.violation(
                "search-conservation",
                f"{self.searches_opened} searches opened but "
                f"{self.searches_closed} closed with {in_flight} in flight",
                sim_time=simulation.env.now,
            )
        if sum(self.search_outcomes.values()) != self.searches_closed:
            self.violation(
                "search-conservation",
                "closed searches and recorded outcomes disagree",
                sim_time=simulation.env.now,
            )
        self.checks_run += 1
        if self.hedge_wins > self.hedges:
            self.violation(
                "hedge-conservation",
                f"{self.hedge_wins} hedge wins but only {self.hedges} "
                "hedges were sent",
                sim_time=simulation.env.now,
            )
