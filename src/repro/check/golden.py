"""Golden-trace harness: record canonical runs, replay them, diff drift.

The simulator's headline guarantee is bit-identical deterministic runs:
the same :class:`~repro.core.config.SimulationConfig` must produce the
same :class:`~repro.core.metrics.Results` on every machine and after
every refactor that does not *intend* to change semantics.  This module
turns that guarantee into committed fixtures:

* :data:`GOLDEN_CASES` — a small canon of configurations (one per
  scheme, plus a faulty GroCoCa run) chosen to exercise every protocol
  layer in a few hundred milliseconds each;
* :func:`record` — simulate each case and write one JSON fixture of its
  full :class:`Results` counters and :class:`~repro.sim.profile.RunProfile`
  work counters;
* :func:`verify` — re-simulate every committed fixture and return a
  **field-level diff**, so an unintended semantic change fails CI with
  the exact counters that moved, not just "results differ".

Fixtures are plain JSON (floats survive a JSON round-trip exactly in
Python), live in ``tests/golden/`` and are refreshed with
``python -m repro check golden record`` — see ``docs/TESTING.md``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Results
from repro.core.simulation import run_simulation
from repro.experiments.cache import canonical_config, default_code_version
from repro.net.faults import CrashFaults, FaultPlan, LinkFaults

__all__ = [
    "FIXTURE_FORMAT",
    "GOLDEN_CASES",
    "GoldenMismatch",
    "default_fixtures_dir",
    "diff_fixture",
    "fixture_for",
    "fixture_results",
    "record",
    "results_to_dict",
    "verify",
]

#: Bump when the fixture file layout (not the simulator) changes.
FIXTURE_FORMAT = 1

#: Profile-counter name prefixes excluded from the bit-identity diff.
#: These counters describe how the simulator computed the outcome (position
#: cache reuse, event-queue internals), not the simulated outcome itself, so
#: a perf refactor may legitimately move them while every semantic counter
#: stays frozen.  They are stripped from *both* sides of the comparison, so
#: fixtures recorded before a counter existed (or before one was demoted to
#: implementation detail) keep verifying without a re-record.
PERF_COUNTER_PREFIXES: Tuple[str, ...] = ("snapshot_", "kernel_")


def _semantic_counters(counters: Dict[str, object]) -> Dict[str, object]:
    """Drop performance-implementation counters from a profile dict."""
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith(PERF_COUNTER_PREFIXES)
    }

#: Shared base of every golden case: small enough that one case runs in
#: well under a second, large enough that caches fill, searches fan out
#: over multiple hops and TCGs actually form.
_BASE = dict(
    n_clients=8,
    n_data=200,
    access_range=40,
    cache_size=8,
    group_size=4,
    measure_requests=8,
    warmup_min_time=30.0,
    warmup_max_time=60.0,
    ndp_enabled=False,
    seed=101,
)

#: A moderate all-layer fault plan for the faulty canonical run.
_FAULTY_PLAN = FaultPlan(
    p2p=LinkFaults(loss=0.1, burst_loss=0.3, burst_on=0.05, burst_off=0.5),
    uplink=LinkFaults(loss=0.05),
    downlink=LinkFaults(loss=0.05),
    crash=CrashFaults(rate=0.001, down_min=2.0, down_max=6.0),
)

GOLDEN_CASES: Dict[str, SimulationConfig] = {
    "lc-small": SimulationConfig(scheme=CachingScheme.LC, **_BASE),
    "cc-small": SimulationConfig(scheme=CachingScheme.CC, **_BASE),
    "gc-small": SimulationConfig(
        scheme=CachingScheme.GC, **{**_BASE, "ndp_enabled": True}
    ),
    "gc-faults": SimulationConfig(
        scheme=CachingScheme.GC,
        faults=_FAULTY_PLAN,
        search_retry_limit=1,
        retrieve_retry_limit=1,
        **_BASE,
    ),
}


class GoldenMismatch(AssertionError):
    """A replayed run drifted from its committed fixture."""

    def __init__(self, name: str, diffs: List[str]) -> None:
        self.name = name
        self.diffs = list(diffs)
        listing = "\n  ".join(self.diffs)
        super().__init__(
            f"golden trace {name!r} drifted in {len(self.diffs)} field(s):\n"
            f"  {listing}"
        )


def default_fixtures_dir() -> Path:
    """Where fixtures live when no directory is given (``tests/golden``)."""
    return Path("tests") / "golden"


def results_to_dict(results: Results) -> Dict[str, object]:
    """JSON-ready dict of every deterministic :class:`Results` field.

    The ``profile`` field is replaced by its deterministic core — kernel
    events processed plus the per-subsystem work counters — because
    wall-clock timing legitimately varies between runs.  Counters matching
    :data:`PERF_COUNTER_PREFIXES` are implementation detail and excluded.
    """
    payload = dataclasses.asdict(results)
    payload.pop("profile", None)
    if not payload.get("health"):
        # The failure-aware retrieve counters exist only when the health
        # layer is on; dropping the empty dict keeps pre-health fixtures
        # verifying without a re-record.
        payload.pop("health", None)
    profile = results.profile
    if profile is not None:
        payload["profile"] = {
            "events": profile.events,
            "counters": dict(sorted(_semantic_counters(profile.counters).items())),
        }
    # Normalise tuples (latency_by_outcome values) the way JSON will.
    return json.loads(json.dumps(payload, sort_keys=True))


def fixture_results(fixture: Dict[str, object]) -> Dict[str, object]:
    """A fixture's expected results, normalised for comparison.

    Strips the implementation-detail counters
    (:data:`PERF_COUNTER_PREFIXES`) from the stored profile so fixtures
    recorded before a counter existed — or before one was demoted to
    implementation detail — compare cleanly against
    :func:`results_to_dict` output without a re-record.
    """
    expected = dict(fixture["results"])  # type: ignore[arg-type]
    if not expected.get("health"):
        expected.pop("health", None)
    profile = expected.get("profile")
    if isinstance(profile, dict) and isinstance(profile.get("counters"), dict):
        expected["profile"] = {
            **profile,
            "counters": _semantic_counters(profile["counters"]),
        }
    return expected


def fixture_for(name: str, config: SimulationConfig) -> Dict[str, object]:
    """Run one case and build its fixture payload."""
    results = run_simulation(config)
    return {
        "format": FIXTURE_FORMAT,
        "name": name,
        "code_version": default_code_version(),
        "config": config.as_dict(),
        "results": results_to_dict(results),
    }


def diff_fixture(
    expected: Dict[str, object], actual: Dict[str, object], prefix: str = "results"
) -> List[str]:
    """Field-level diff of two fixture ``results`` payloads.

    Returns human-readable ``path: expected X, got Y`` lines; empty when
    the payloads agree exactly.
    """
    diffs: List[str] = []
    keys = sorted(set(expected) | set(actual))
    for key in keys:
        path = f"{prefix}.{key}"
        if key not in expected:
            diffs.append(f"{path}: unexpected new field {actual[key]!r}")
            continue
        if key not in actual:
            diffs.append(f"{path}: missing (expected {expected[key]!r})")
            continue
        left, right = expected[key], actual[key]
        if isinstance(left, dict) and isinstance(right, dict):
            diffs.extend(diff_fixture(left, right, prefix=path))
        elif left != right:
            diffs.append(f"{path}: expected {left!r}, got {right!r}")
    return diffs


def record(
    directory: Optional[Union[str, Path]] = None,
    cases: Optional[Dict[str, SimulationConfig]] = None,
) -> List[Path]:
    """Simulate every golden case and (re)write its fixture file."""
    directory = Path(directory) if directory is not None else default_fixtures_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name, config in (cases or GOLDEN_CASES).items():
        path = directory / f"{name}.json"
        with path.open("w", encoding="utf-8") as handle:
            json.dump(fixture_for(name, config), handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written


def verify(
    directory: Optional[Union[str, Path]] = None,
) -> Dict[str, List[str]]:
    """Replay every committed fixture; return per-case field-level diffs.

    The stored config is reconstructed through
    :meth:`SimulationConfig.from_dict`, so the round-trip also exercises
    config serialisation.  Raises ``FileNotFoundError`` when the fixture
    directory holds no fixtures at all.
    """
    directory = Path(directory) if directory is not None else default_fixtures_dir()
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise FileNotFoundError(
            f"no golden fixtures in {directory}; run "
            "'python -m repro check golden record' first"
        )
    report: Dict[str, List[str]] = {}
    for path in paths:
        with path.open("r", encoding="utf-8") as handle:
            fixture = json.load(handle)
        name = fixture.get("name", path.stem)
        config = SimulationConfig.from_dict(fixture["config"])
        diffs: List[str] = []
        # Compare only the keys the fixture stored: config fields added
        # after a fixture was recorded verify at their dataclass defaults,
        # so new knobs don't force a re-record.
        stored: Dict[str, object] = fixture["config"]
        round_trip = json.loads(canonical_config(config))
        for key in sorted(stored):
            if round_trip.get(key) != stored[key]:
                diffs.append(
                    f"config.{key}: stored {stored[key]!r}, "
                    f"round-tripped {round_trip.get(key)!r}"
                )
        expected = fixture_results(fixture)
        replayed = results_to_dict(run_simulation(config))
        diffs.extend(diff_fixture(expected, replayed))
        report[name] = diffs
    return report
