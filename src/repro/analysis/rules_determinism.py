"""Determinism rules: all randomness through RandomStreams, no wall clock.

The repo's headline guarantee — bit-identical runs from a
:class:`~repro.core.config.SimulationConfig` — holds only while every
stochastic draw flows from :class:`~repro.sim.random.RandomStreams`
named streams and no simulated state ever observes the host clock.
These rules turn that convention into an enforced contract:

* ``no-stdlib-random`` — the :mod:`random` module is banned outright
  (module-global state, shared across subsystems, not stream-named);
* ``no-direct-rng`` — constructing numpy generators
  (``np.random.default_rng``, legacy ``RandomState``/module-level
  draws, raw bit generators) anywhere but :mod:`repro.sim.random`;
* ``no-wall-clock`` — ``time.time``/``perf_counter``/
  ``datetime.now``-family calls outside the profiling allowlist;
* ``set-iteration-order`` — iterating a ``set`` directly, which feeds
  hash-order into whatever the loop does (scheduling, message fan-out,
  membership deltas); iterate ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.engine import LintRule, LintViolation, ModuleSource, register

__all__ = [
    "NoDirectRngRule",
    "NoStdlibRandomRule",
    "NoWallClockRule",
    "SetIterationOrderRule",
]


def _calls(module: ModuleSource) -> Iterator[ast.Call]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node


@register
class NoStdlibRandomRule(LintRule):
    """The stdlib ``random`` module is never acceptable in sim code."""

    id = "no-stdlib-random"
    description = (
        "the stdlib random module carries hidden global state; every draw "
        "must come from a RandomStreams named stream"
    )
    hint = "draw from RandomStreams(seed).stream('<component>') instead"

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            module, node, "import of the stdlib random module"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and (
                    node.module == "random" or node.module.startswith("random.")
                ):
                    yield self.violation(
                        module, node, "import from the stdlib random module"
                    )
        for call in _calls(module):
            name = module.qualified_name(call.func)
            if name is not None and name.split(".")[0] == "random":
                yield self.violation(module, call, f"call to {name}()")


@register
class NoDirectRngRule(LintRule):
    """numpy generators are built in exactly one place: repro.sim.random."""

    id = "no-direct-rng"
    description = (
        "numpy.random generators constructed outside repro.sim.random "
        "bypass the named-stream seed derivation"
    )
    hint = (
        "take an np.random.Generator parameter, or derive one via "
        "RandomStreams(seed).stream('<component>')"
    )
    allow_modules = ("repro.sim.random",)

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for call in _calls(module):
            name = module.qualified_name(call.func)
            if name is not None and name.startswith("numpy.random."):
                yield self.violation(module, call, f"call to {name}()")


#: Host-clock callables banned outside the profiling allowlist.  The
#: ``datetime`` entries cover both ``import datetime`` (datetime.datetime.now)
#: and ``from datetime import datetime`` (resolves to the same dotted name).
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class NoWallClockRule(LintRule):
    """Simulated state must never observe the host clock."""

    id = "no-wall-clock"
    description = (
        "wall-clock reads make runs machine-dependent; simulated time is "
        "env.now, and profiling belongs in the allowlisted profile module"
    )
    hint = "use env.now for simulated time; profiling code needs an allow pragma"
    allow_modules = ("repro.sim.profile",)

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for call in _calls(module):
            name = module.qualified_name(call.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.violation(module, call, f"call to {name}()")


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _scopes(module: ModuleSource) -> Iterator[ast.AST]:
    yield module.tree
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _set_bindings(scope: ast.AST) -> Dict[str, bool]:
    """Names bound in ``scope`` whose every assignment is a set expression."""
    bindings: Dict[str, bool] = {}
    for node in ast.walk(scope):
        if node is not scope and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # inner scopes are visited on their own
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    is_set = _is_set_expression(node.value)
                    if target.id in bindings:
                        bindings[target.id] = bindings[target.id] and is_set
                    else:
                        bindings[target.id] = is_set
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            bindings[node.target.id] = False
    return {name: True for name, is_set in bindings.items() if is_set}


@register
class SetIterationOrderRule(LintRule):
    """Iterating a set injects hash order into whatever consumes the loop."""

    id = "set-iteration-order"
    description = (
        "set iteration order is an implementation detail of the hash "
        "table; feeding it into scheduling or message ordering breaks "
        "cross-version reproducibility"
    )
    hint = "iterate sorted(<set>) (or keep the collection a list/dict)"

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for scope in _scopes(module):
            set_names = _set_bindings(scope)
            for node in ast.walk(scope):
                if node is not scope and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for iter_node in _iteration_sites(node):
                    if _is_set_expression(iter_node):
                        yield self.violation(
                            module, iter_node, "iteration over a set expression"
                        )
                    elif (
                        isinstance(iter_node, ast.Name)
                        and iter_node.id in set_names
                    ):
                        yield self.violation(
                            module,
                            iter_node,
                            f"iteration over set {iter_node.id!r}",
                        )


def _iteration_sites(node: ast.AST) -> Tuple[Optional[ast.AST], ...]:
    """The expressions a statement/expression iterates over, if any."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return (node.iter,)
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return tuple(generator.iter for generator in node.generators)
    return ()
