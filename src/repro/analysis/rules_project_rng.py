"""Whole-program RNG provenance rules.

The per-file determinism rules stop entropy from being *created* outside
:mod:`repro.sim.random`; these rules police how the sanctioned handles
*flow*.  Every draw must trace — through local assignments, object
attributes, constructor arguments and function returns — back to a named
``RandomStreams`` stream:

* ``rng-provenance`` — a ``.stream(<name>)`` call whose name is not a
  string literal or f-string (the stream identity is invisible to a
  reader and to this linter), or a draw whose receiver *provably* holds
  something that is not a ``RandomStreams`` stream;
* ``rng-shared-stream`` — one named stream drawn from or created in two
  or more modules.  Per-component streams exist precisely so layers
  cannot perturb each other's draw sequences; a shared name couples
  them again.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import (
    LintViolation,
    ModuleSource,
    ProjectRule,
    register_project,
)
from repro.analysis.project.callgraph import CallGraph, build_call_graph
from repro.analysis.project.dataflow import DRAW_METHODS, stream_name, trace_rng_expr
from repro.analysis.project.index import FunctionInfo, ProjectIndex

__all__ = ["RngProvenanceRule", "RngSharedStreamRule"]


def _receiver_tail(expr: ast.expr) -> str:
    """The final identifier of a receiver expression ('' when none)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        return _receiver_tail(expr.value)
    return ""


def _is_rng_named(tail: str) -> bool:
    return "rng" in tail.lower()


def _is_generator_annotated(
    context: Optional[FunctionInfo], module: ModuleSource, name: str
) -> bool:
    """Is ``name`` a parameter annotated as a numpy Generator?"""
    if context is None:
        return False
    args = context.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg != name or arg.annotation is None:
            continue
        annotation = arg.annotation
        dotted = module.qualified_name(annotation)
        if dotted is not None and dotted.startswith("numpy.random."):
            return True
        if isinstance(annotation, ast.Attribute) and annotation.attr == "Generator":
            return True
        if isinstance(annotation, ast.Name) and annotation.id == "Generator":
            return True
    return False


def _function_contexts(
    index: ProjectIndex,
) -> Iterator[Tuple[ModuleSource, Optional[FunctionInfo], ast.AST]]:
    """(module, context, root node) for every code context in the project."""
    for module in index.modules.values():
        for statement in getattr(module.tree, "body", []):
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield module, None, statement
    for function in index.functions.values():
        yield index.modules[function.module], function, function.node


def _calls_in(root: ast.AST) -> Iterator[ast.Call]:
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef) and node is not root:
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_project
class RngProvenanceRule(ProjectRule):
    """Every draw must trace to a named RandomStreams stream."""

    id = "rng-provenance"
    description = (
        "a draw whose handle provably does not come from a named "
        "RandomStreams stream breaks the one-seed determinism contract "
        "even though no banned constructor appears in this file"
    )
    hint = (
        "derive the handle from RandomStreams(seed).stream('<component>') "
        "and pass it down explicitly"
    )

    def check(self, project: ProjectIndex) -> Iterator[LintViolation]:
        graph = build_call_graph(project)
        for module, context, root in _function_contexts(project):
            for call in _calls_in(root):
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr == "stream":
                    yield from self._check_stream_call(module, context, call)
                elif func.attr in DRAW_METHODS:
                    yield from self._check_draw(
                        project, graph, module, context, call
                    )

    def _check_stream_call(
        self,
        module: ModuleSource,
        context: Optional[FunctionInfo],
        call: ast.Call,
    ) -> Iterator[LintViolation]:
        assert isinstance(call.func, ast.Attribute)
        tail = _receiver_tail(call.func.value).lower()
        if "stream" not in tail and "rng" not in tail:
            return  # not a RandomStreams receiver (e.g. an io stream)
        if stream_name(call) is None:
            yield self.violation(
                module,
                call,
                "stream name is not statically resolvable; use a string "
                "literal or an f-string with a literal component prefix",
            )

    def _check_draw(
        self,
        project: ProjectIndex,
        graph: CallGraph,
        module: ModuleSource,
        context: Optional[FunctionInfo],
        call: ast.Call,
    ) -> Iterator[LintViolation]:
        assert isinstance(call.func, ast.Attribute)
        receiver = call.func.value
        tail = _receiver_tail(receiver)
        rng_ish = _is_rng_named(tail) or (
            isinstance(receiver, ast.Name)
            and _is_generator_annotated(context, module, receiver.id)
        )
        if not rng_ish:
            return
        origin = trace_rng_expr(project, graph, module, context, receiver)
        if origin.kind == "value":
            where = f" in {origin.module}" if origin.module else ""
            yield self.violation(
                module,
                call,
                f"draw .{call.func.attr}() on {tail!r} traces to "
                f"{origin.detail}{where}, not a RandomStreams stream",
            )


@register_project
class RngSharedStreamRule(ProjectRule):
    """One named stream must belong to exactly one module."""

    id = "rng-shared-stream"
    description = (
        "two modules deriving the same named stream share one draw "
        "sequence; adding a draw in either silently perturbs the other, "
        "which is exactly the coupling per-component streams exist to "
        "prevent"
    )
    hint = "give each component its own stream name (e.g. '<layer>-<use>')"

    def check(self, project: ProjectIndex) -> Iterator[LintViolation]:
        # stream name -> module -> first .stream(...) site
        sites: Dict[str, Dict[str, Tuple[ModuleSource, Optional[FunctionInfo], ast.Call]]] = {}
        for module, context, root in _function_contexts(project):
            for call in _calls_in(root):
                func = call.func
                if not (isinstance(func, ast.Attribute) and func.attr == "stream"):
                    continue
                tail = _receiver_tail(func.value).lower()
                if "stream" not in tail and "rng" not in tail:
                    continue
                name = stream_name(call)
                if name is None:
                    continue
                per_module = sites.setdefault(name, {})
                per_module.setdefault(module.module, (module, context, call))
        for name in sorted(sites):
            per_module = sites[name]
            if len(per_module) < 2:
                continue
            modules = ", ".join(sorted(per_module))
            for module_name in sorted(per_module):
                module, _context, call = per_module[module_name]
                yield self.violation(
                    module,
                    call,
                    f"stream {name!r} is derived in {len(per_module)} "
                    f"modules ({modules}); named streams must have exactly "
                    "one owner",
                )
