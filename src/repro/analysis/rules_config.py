"""Config-contract rules: string references to real dataclass fields.

:class:`~repro.core.config.SimulationConfig` is referenced by *name* all
over the harness — CLI flag tables, scale-profile dicts, ``replace``
overrides, golden-case bases.  A typo in any of those strings fails at
run time (at best) or silently sweeps the wrong parameter (at worst).
These rules resolve the reference sites statically and check every name
against the real field list:

* ``unknown-config-field`` — keyword arguments of
  ``SimulationConfig(...)`` / ``base_config(...)`` / config
  ``.replace(...)`` calls, ``getattr``/``setattr`` with a literal name
  on a config-ish receiver, ``**``-unpacked module-level dicts, and the
  repo's field-name dict conventions (``*_PROFILE`` keys,
  ``*_CONFIG_FIELDS`` values);
* ``unknown-results-field`` — literal metric names handed to
  ``SweepTable.series(scheme, metric)``;
* ``config-field-unvalidated`` — a ``SimulationConfig`` dataclass field
  that ``__post_init__`` never touches.  Pre-existing fields are
  grandfathered in the committed baseline; *new* fields must either be
  validated or consciously baselined.  ``bool`` fields are exempt (every
  bool is valid).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional

from repro.analysis.engine import LintRule, LintViolation, ModuleSource, register

__all__ = [
    "ConfigFieldValidationRule",
    "UnknownConfigFieldRule",
    "UnknownResultsFieldRule",
    "config_field_names",
    "results_field_names",
]


def config_field_names() -> FrozenSet[str]:
    """The real field set of SimulationConfig (imported, never guessed)."""
    import dataclasses

    from repro.core.config import SimulationConfig

    return frozenset(f.name for f in dataclasses.fields(SimulationConfig))


def results_field_names() -> FrozenSet[str]:
    """Field names plus property names of Results (both are metrics)."""
    import dataclasses

    from repro.core.metrics import Results

    names = {f.name for f in dataclasses.fields(Results)}
    names.update(
        name
        for name, attr in vars(Results).items()
        if isinstance(attr, property)
    )
    return frozenset(names)


def _is_configish(node: ast.AST) -> bool:
    """Heuristic: does this expression name a simulation config?"""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    lowered = name.lower()
    return "config" in lowered or lowered == "cfg"


def _module_level_dicts(module: ModuleSource) -> Dict[str, ast.AST]:
    """Module-level ``name = {...}`` / ``name = dict(...)`` assignments."""
    table: Dict[str, ast.AST] = {}
    body = getattr(module.tree, "body", [])
    for node in body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_dict = isinstance(value, ast.Dict) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "dict"
        )
        if not is_dict:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                table[target.id] = value
    return table


def _dict_string_keys(
    value: ast.AST, dicts: Dict[str, ast.AST], depth: int = 0
) -> Iterator[ast.Constant]:
    """Constant-string keys of a dict expression, following ``**`` spreads."""
    if depth > 4:
        return
    if isinstance(value, ast.Dict):
        for key, item in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                yield key
            elif key is None:  # ``{**other, ...}`` spread
                yield from _dict_string_keys(item, dicts, depth + 1)
    elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id == "dict":
            for keyword in value.keywords:
                if keyword.arg is not None:
                    yield _keyword_as_constant(keyword)
                else:
                    yield from _dict_string_keys(keyword.value, dicts, depth + 1)
    elif isinstance(value, ast.Name) and value.id in dicts:
        yield from _dict_string_keys(dicts[value.id], dicts, depth + 1)


def _keyword_as_constant(keyword: ast.keyword) -> ast.Constant:
    """Wrap a ``dict(key=...)`` keyword as a locatable string constant."""
    constant = ast.Constant(value=keyword.arg)
    constant.lineno = keyword.value.lineno
    constant.col_offset = keyword.value.col_offset
    return constant


@register
class UnknownConfigFieldRule(LintRule):
    """Every string reference to a SimulationConfig field must exist."""

    id = "unknown-config-field"
    description = (
        "a name that is not a SimulationConfig field fails at run time "
        "(constructor/replace) or silently no-ops (profile dicts)"
    )
    hint = "check the field list in repro.core.config.SimulationConfig"

    #: Call targets whose keyword arguments are config fields.
    _CONSTRUCTORS = ("SimulationConfig", "base_config")

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        fields = config_field_names()
        dicts = _module_level_dicts(module)

        for name, value in dicts.items():
            if name.endswith("_PROFILE") or name.endswith("_BASE"):
                for key in _dict_string_keys(value, dicts):
                    if key.value not in fields:
                        yield self._unknown(module, key, key.value)
            elif name.endswith("_CONFIG_FIELDS") and isinstance(value, ast.Dict):
                for item in value.values:
                    if isinstance(item, ast.Constant) and isinstance(item.value, str):
                        if item.value not in fields:
                            yield self._unknown(module, item, item.value)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(module, node, fields, dicts)

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        fields: FrozenSet[str],
        dicts: Dict[str, ast.AST],
    ) -> Iterator[LintViolation]:
        func = node.func
        is_constructor = (
            isinstance(func, ast.Name) and func.id in self._CONSTRUCTORS
        )
        is_replace = (
            isinstance(func, ast.Attribute)
            and func.attr == "replace"
            and _is_configish(func.value)
        )
        is_dc_replace = (
            module.qualified_name(func) == "dataclasses.replace"
            and node.args
            and _is_configish(node.args[0])
        )
        if is_constructor or is_replace or is_dc_replace:
            for keyword in node.keywords:
                if keyword.arg is not None:
                    if keyword.arg not in fields:
                        yield self._unknown(module, keyword.value, keyword.arg)
                else:
                    for key in _dict_string_keys(keyword.value, dicts):
                        if key.value not in fields:
                            yield self._unknown(module, key, key.value)
        if (
            isinstance(func, ast.Name)
            and func.id in ("getattr", "setattr", "hasattr")
            and len(node.args) >= 2
            and _is_configish(node.args[0])
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
            and node.args[1].value not in fields
        ):
            yield self._unknown(module, node.args[1], node.args[1].value)

    def _unknown(
        self, module: ModuleSource, node: ast.AST, name: str
    ) -> LintViolation:
        return self.violation(
            module, node, f"{name!r} is not a SimulationConfig field"
        )


@register
class UnknownResultsFieldRule(LintRule):
    """Literal metric names in ``.series(scheme, metric)`` must exist."""

    id = "unknown-results-field"
    description = (
        "SweepTable.series resolves its metric argument with getattr on "
        "Results; an unknown name only fails once a sweep has already run"
    )
    hint = "check repro.core.metrics.Results fields and properties"

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        fields = results_field_names()
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "series"
                and len(node.args) == 2
            ):
                continue
            metric = node.args[1]
            if (
                isinstance(metric, ast.Constant)
                and isinstance(metric.value, str)
                and metric.value not in fields
            ):
                yield self.violation(
                    module,
                    metric,
                    f"{metric.value!r} is not a Results field or property",
                )


@register
class ConfigFieldValidationRule(LintRule):
    """New SimulationConfig fields must be validated in __post_init__."""

    id = "config-field-unvalidated"
    severity = "warning"
    description = (
        "a field __post_init__ never reads has no contract; bad values "
        "surface deep inside a run instead of at construction"
    )
    hint = (
        "add a check in __post_init__, or consciously grandfather the "
        "field with 'repro lint --update-baseline'"
    )

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "SimulationConfig":
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[LintViolation]:
        post_init = next(
            (
                n
                for n in cls.body
                if isinstance(n, ast.FunctionDef) and n.name == "__post_init__"
            ),
            None,
        )
        validated = set()
        if post_init is not None:
            for node in ast.walk(post_init):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    validated.add(node.attr)
        for field in self._fields(cls):
            name = field.target.id  # type: ignore[union-attr]
            if name not in validated:
                yield self.violation(
                    module,
                    field,
                    f"field {name!r} is never read by __post_init__",
                )

    @staticmethod
    def _fields(cls: ast.ClassDef) -> List[ast.AnnAssign]:
        fields: List[ast.AnnAssign] = []
        for node in cls.body:
            if not (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
            ):
                continue
            if _annotation_name(node.annotation) in ("bool", "ClassVar"):
                continue
            fields.append(node)
        return fields


def _annotation_name(annotation: Optional[ast.AST]) -> str:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Subscript) and isinstance(
        annotation.value, ast.Name
    ):
        return annotation.value.id
    return ""
