"""Taint-style provenance tracing for RNG handles.

:func:`trace_rng_expr` walks an expression *backwards* through the
project — local assignments, ``self.attr`` assignments in any method of
the class, function returns, and (via the call graph's recorded call
sites) from a parameter to every argument expression feeding it — and
classifies what the expression can hold:

* ``stream``  — a ``RandomStreams(...).stream(<name>)`` handle;
* ``streams`` — a ``RandomStreams`` instance itself;
* ``value``   — *definitely* something else (a literal, or an instance
  of an in-project class that is not ``RandomStreams``);
* ``opaque``  — the trace hit a frontier it cannot see past (an
  external library, a parameter with no resolved call sites, the depth
  limit, a mixed merge).

The asymmetry is the point: rules flag only ``value`` origins —
"provably not a stream" — and treat ``opaque`` as innocent, so the
whole-program pass under-approximates instead of drowning real code in
unprovable findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleSource
from repro.analysis.project.callgraph import CallGraph, CallSite, local_class_names
from repro.analysis.project.index import FunctionInfo, ProjectIndex

__all__ = ["DRAW_METHODS", "Origin", "stream_name", "trace_rng_expr"]

#: numpy Generator draw methods — a call to one of these *consumes* entropy.
DRAW_METHODS: FrozenSet[str] = frozenset(
    {
        "random",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "exponential",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "binomial",
        "geometric",
        "bytes",
    }
)

#: The class every stream must derive from, matched by bare name so
#: fixture projects can ship their own stand-in.
_STREAMS_CLASS = "RandomStreams"

_MAX_DEPTH = 10

Origin_kinds = ("stream", "streams", "value", "opaque")


@dataclass(frozen=True)
class Origin:
    """Where an RNG expression's value provably comes from."""

    kind: str  # one of Origin_kinds
    detail: str = ""  # stream name / description of the non-stream value
    module: str = ""  # module where the origin expression lives


OPAQUE = Origin("opaque")


def stream_name(call: ast.Call) -> Optional[str]:
    """The statically-evident name of a ``.stream(<arg>)`` call.

    String literals resolve exactly; f-strings resolve to a template
    with ``{}`` placeholders (still useful for cross-module sharing
    checks); anything else resolves to ``None``.
    """
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts: List[str] = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("{}")
        template = "".join(parts)
        return template if template.strip("{}") else None
    return None


def _merge(origins: Sequence[Origin]) -> Origin:
    """Combine origins from alternative paths: definite only if unanimous."""
    if not origins:
        return OPAQUE
    kinds = {origin.kind for origin in origins}
    if "opaque" in kinds:
        return OPAQUE
    if kinds == {"value"}:
        return origins[0]
    if kinds <= {"stream", "streams"}:
        for origin in origins:
            if origin.kind == "stream":
                return origin
        return origins[0]
    return OPAQUE  # mixed stream/value — cannot rule either way


def _bare_callee_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _function_assignments(
    function: FunctionInfo, name: str
) -> List[ast.expr]:
    """Every expression assigned to local ``name`` inside ``function``."""
    values: List[ast.expr] = []
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    values.append(node.value)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
            and node.value is not None
        ):
            values.append(node.value)
    return values


def _module_assignments(module: ModuleSource, name: str) -> List[ast.expr]:
    values: List[ast.expr] = []
    for node in getattr(module.tree, "body", []):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    values.append(node.value)
    return values


def _param_names(function: FunctionInfo) -> List[str]:
    args = function.node.args
    names = [a.arg for a in [*args.posonlyargs, *args.args]]
    return names


def _argument_for_param(
    site: CallSite, function: FunctionInfo, param: str
) -> Optional[ast.expr]:
    """The argument expression a call site passes for ``param``."""
    names = _param_names(function)
    if function.is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    for keyword in site.call.keywords:
        if keyword.arg == param:
            return keyword.value
    try:
        position = names.index(param)
    except ValueError:
        return None
    if position < len(site.call.args):
        arg = site.call.args[position]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


def trace_rng_expr(
    index: ProjectIndex,
    graph: CallGraph,
    module: ModuleSource,
    context: Optional[FunctionInfo],
    expr: ast.expr,
    depth: int = _MAX_DEPTH,
    seen: Optional[Set[Tuple[str, str]]] = None,
) -> Origin:
    """Classify what ``expr`` (evaluated in ``context``) can hold."""
    if depth <= 0:
        return OPAQUE
    if seen is None:
        seen = set()

    if isinstance(expr, ast.Call):
        return _trace_call(index, graph, module, context, expr, depth, seen)
    if isinstance(expr, ast.Name):
        return _trace_name(index, graph, module, context, expr.id, depth, seen)
    if isinstance(expr, ast.Attribute):
        return _trace_attribute(index, graph, module, context, expr, depth, seen)
    if isinstance(expr, ast.IfExp):
        return _merge(
            [
                trace_rng_expr(index, graph, module, context, side, depth - 1, seen)
                for side in (expr.body, expr.orelse)
            ]
        )
    if isinstance(expr, ast.BoolOp):
        return _merge(
            [
                trace_rng_expr(index, graph, module, context, side, depth - 1, seen)
                for side in expr.values
            ]
        )
    if isinstance(expr, ast.Subscript):
        return _trace_subscript(index, graph, module, context, expr, depth, seen)
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return trace_rng_expr(index, graph, module, context, expr.elt, depth - 1, seen)
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        if not expr.elts:
            return Origin("value", "empty container", module.module)
        return _merge(
            [
                trace_rng_expr(index, graph, module, context, e, depth - 1, seen)
                for e in expr.elts
            ]
        )
    if isinstance(expr, ast.Constant):
        if expr.value is None:
            return OPAQUE  # None legs of Optional handles are not draws
        return Origin("value", f"literal {expr.value!r}", module.module)
    return OPAQUE


def _trace_call(
    index: ProjectIndex,
    graph: CallGraph,
    module: ModuleSource,
    context: Optional[FunctionInfo],
    call: ast.Call,
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Origin:
    func = call.func
    bare = _bare_callee_name(func)
    if bare == _STREAMS_CLASS:
        return Origin("streams", _STREAMS_CLASS, module.module)
    if isinstance(func, ast.Attribute) and func.attr == "stream":
        receiver = trace_rng_expr(
            index, graph, module, context, func.value, depth - 1, seen
        )
        if receiver.kind in ("streams", "opaque"):
            name = stream_name(call)
            return Origin("stream", name or "<dynamic>", module.module)
        return receiver
    resolved = index.resolve_call_target(module, func)
    if resolved is None:
        return OPAQUE
    if resolved in index.classes:
        info = index.classes[resolved]
        if info.name == _STREAMS_CLASS:
            return Origin("streams", _STREAMS_CLASS, module.module)
        return Origin("value", f"{info.name} instance", info.module)
    function = index.functions.get(resolved)
    if function is None:
        return OPAQUE
    key = ("returns", resolved)
    if key in seen:
        return OPAQUE
    seen.add(key)
    returns = [
        node.value
        for node in ast.walk(function.node)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    if not returns:
        return OPAQUE
    target_module = index.modules[function.module]
    return _merge(
        [
            trace_rng_expr(index, graph, target_module, function, r, depth - 1, seen)
            for r in returns
        ]
    )


def _trace_name(
    index: ProjectIndex,
    graph: CallGraph,
    module: ModuleSource,
    context: Optional[FunctionInfo],
    name: str,
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Origin:
    if context is not None:
        assigned = _function_assignments(context, name)
        if assigned:
            return _merge(
                [
                    trace_rng_expr(index, graph, module, context, a, depth - 1, seen)
                    for a in assigned
                ]
            )
        if name in _param_names(context):
            return _trace_param(index, graph, context, name, depth, seen)
    module_assigned = _module_assignments(module, name)
    if module_assigned:
        return _merge(
            [
                trace_rng_expr(index, graph, module, None, a, depth - 1, seen)
                for a in module_assigned
            ]
        )
    return OPAQUE


def _trace_param(
    index: ProjectIndex,
    graph: CallGraph,
    function: FunctionInfo,
    param: str,
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Origin:
    key = ("param", f"{function.qualname}:{param}")
    if key in seen:
        return OPAQUE
    seen.add(key)
    sites = graph.call_sites(function.qualname)
    if not sites:
        return OPAQUE
    origins: List[Origin] = []
    for site in sites:
        argument = _argument_for_param(site, function, param)
        if argument is None:
            origins.append(OPAQUE)
            continue
        origins.append(
            trace_rng_expr(
                index, graph, site.module, site.caller, argument, depth - 1, seen
            )
        )
    return _merge(origins)


def _trace_attribute(
    index: ProjectIndex,
    graph: CallGraph,
    module: ModuleSource,
    context: Optional[FunctionInfo],
    expr: ast.Attribute,
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Origin:
    owners: List[str] = []
    receiver = expr.value
    if (
        isinstance(receiver, ast.Name)
        and receiver.id == "self"
        and context is not None
        and context.class_name is not None
    ):
        owners = [f"{context.module}.{context.class_name}"]
    elif isinstance(receiver, ast.Name) and context is not None:
        owners = local_class_names(index, module, context).get(receiver.id, [])
    if not owners:
        return OPAQUE
    origins: List[Origin] = []
    for owner in owners:
        key = ("attr", f"{owner}.{expr.attr}")
        if key in seen:
            return OPAQUE
        seen.add(key)
        assignments = index.attr_assignments(owner, expr.attr)
        if not assignments:
            origins.append(OPAQUE)
            continue
        for method, value in assignments:
            method_module = index.modules[method.module]
            origins.append(
                trace_rng_expr(
                    index, graph, method_module, method, value, depth - 1, seen
                )
            )
    return _merge(origins)


def _trace_subscript(
    index: ProjectIndex,
    graph: CallGraph,
    module: ModuleSource,
    context: Optional[FunctionInfo],
    expr: ast.Subscript,
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Origin:
    # ``rngs[i]`` where ``rngs`` is a traced container: the element origin
    # is what matters, and the container trace already unwraps
    # comprehensions and displays to their elements.
    return trace_rng_expr(index, graph, module, context, expr.value, depth - 1, seen)
