"""Whole-program analysis: project index, call graph, dataflow.

The per-file rules in :mod:`repro.analysis` see one AST at a time; this
subpackage gives rules the *project* view — every module parsed and
cross-linked (:mod:`~repro.analysis.project.index`), a conservative call
graph over it (:mod:`~repro.analysis.project.callgraph`) and a
taint-style provenance tracer (:mod:`~repro.analysis.project.dataflow`).
The whole-program rules built on top live in
``repro.analysis.rules_project_*`` and run under ``repro lint --project``.
"""

from repro.analysis.project.callgraph import CallGraph, CallSite, build_call_graph
from repro.analysis.project.dataflow import Origin, trace_rng_expr
from repro.analysis.project.index import ClassInfo, FunctionInfo, ProjectIndex

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "Origin",
    "ProjectIndex",
    "build_call_graph",
    "trace_rng_expr",
]
