"""The project index: every module parsed, every symbol cross-linked.

A :class:`ProjectIndex` is built once per ``repro lint --project`` run
from the same :class:`~repro.analysis.engine.ModuleSource` objects the
per-file pass uses.  It records, for the whole file set:

* the module graph (module name -> source, import edges);
* a symbol table of top-level classes and functions, with methods;
* per-class attribute facts: the expressions assigned to ``self.X``
  (fuel for the dataflow tracer) and the class types those attributes
  can hold (``self.x = ClassName(...)`` and ``Union``/``Optional``
  annotations), which the call graph uses to resolve method calls.

Resolution is deliberately *precision over recall*: a name that cannot
be traced to exactly one in-project symbol resolves to nothing, so the
interprocedural rules stay quiet rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.engine import ModuleSource

__all__ = ["ClassInfo", "FunctionInfo", "ProjectIndex"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    name: str
    qualname: str  # "module.func" or "module.Class.method"
    module: str
    node: FunctionNode
    class_name: Optional[str] = None  # bare class name for methods

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One indexed class: methods, base names, attribute facts."""

    name: str
    qualname: str  # "module.Class"
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # raw dotted base names
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.X = <expr>`` assignments, with the method doing the assigning.
    attr_assignments: Dict[str, List[Tuple[FunctionInfo, ast.expr]]] = field(
        default_factory=dict
    )
    #: bare class names an attribute may hold (constructor calls + annotations).
    attr_class_names: Dict[str, List[str]] = field(default_factory=dict)


def _annotation_class_names(annotation: ast.expr) -> List[str]:
    """Bare class names named by an annotation (through Union/Optional)."""
    if isinstance(annotation, ast.Name):
        return [annotation.id]
    if isinstance(annotation, ast.Attribute):
        return [annotation.attr]
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return [annotation.value.split(".")[-1].strip()]
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else ""
        )
        if head_name in ("Union", "Optional"):
            inner = annotation.slice
            elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            names: List[str] = []
            for element in elements:
                names.extend(_annotation_class_names(element))
            return [n for n in names if n != "None"]
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return [
            n
            for side in (annotation.left, annotation.right)
            for n in _annotation_class_names(side)
            if n != "None"
        ]
    return []


class ProjectIndex:
    """Cross-linked view of every linted module."""

    def __init__(
        self,
        modules: Sequence[ModuleSource],
        project_root: Optional[Path] = None,
    ) -> None:
        self.project_root = Path(project_root) if project_root is not None else Path.cwd()
        self.modules: Dict[str, ModuleSource] = {}
        self.by_path: Dict[str, ModuleSource] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for module in modules:
            if module.parse_error is not None:
                continue  # the per-file pass reports it; nothing to index
            self.modules[module.module] = module
            self.by_path[module.display_path] = module
        for module in self.modules.values():
            self._index_module(module)

    # -- construction --------------------------------------------------------

    def _index_module(self, module: ModuleSource) -> None:
        body = getattr(module.tree, "body", [])
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    name=node.name,
                    qualname=f"{module.module}.{node.name}",
                    module=module.module,
                    node=node,
                )
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)

    def _index_class(self, module: ModuleSource, node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=node.name,
            qualname=f"{module.module}.{node.name}",
            module=module.module,
            node=node,
        )
        for base in node.bases:
            dotted = module.qualified_name(base)
            if dotted is None and isinstance(base, ast.Name):
                dotted = base.id
            if dotted is not None:
                info.bases.append(dotted)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    name=item.name,
                    qualname=f"{info.qualname}.{item.name}",
                    module=module.module,
                    node=item,
                    class_name=node.name,
                )
                info.methods[item.name] = method
                self.functions[method.qualname] = method
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                for cls_name in _annotation_class_names(item.annotation):
                    info.attr_class_names.setdefault(item.target.id, []).append(cls_name)
        for method in info.methods.values():
            self._collect_attr_facts(info, method)
        self.classes[info.qualname] = info

    def _collect_attr_facts(self, info: ClassInfo, method: FunctionInfo) -> None:
        for node in ast.walk(method.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if value is not None:
                info.attr_assignments.setdefault(attr, []).append((method, value))
                if isinstance(value, ast.Call):
                    callee = value.func
                    bare = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else callee.attr if isinstance(callee, ast.Attribute) else ""
                    )
                    if bare and bare[0].isupper():
                        info.attr_class_names.setdefault(attr, []).append(bare)
            if annotation is not None:
                for cls_name in _annotation_class_names(annotation):
                    info.attr_class_names.setdefault(attr, []).append(cls_name)

    # -- resolution -----------------------------------------------------------

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """An absolute dotted name -> an indexed symbol qualname, if any."""
        if dotted in self.functions or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            if module_name in self.modules:
                candidate = dotted
                if candidate in self.functions or candidate in self.classes:
                    return candidate
                return None
        return None

    def resolve_name(self, module: ModuleSource, name: str) -> Optional[str]:
        """A bare local name in ``module`` -> an indexed symbol qualname."""
        local = f"{module.module}.{name}"
        if local in self.functions or local in self.classes:
            return local
        dotted = module.imports.get(name)
        if dotted is not None:
            return self.resolve_dotted(dotted)
        return None

    def resolve_call_target(
        self, module: ModuleSource, func: ast.expr
    ) -> Optional[str]:
        """Resolve a call's function expression to a symbol qualname."""
        if isinstance(func, ast.Name):
            return self.resolve_name(module, func.id)
        dotted = module.qualified_name(func)
        if dotted is not None:
            return self.resolve_dotted(dotted)
        return None

    def mro(self, class_qualname: str) -> Iterator[ClassInfo]:
        """The class and its in-project ancestors, nearest first."""
        seen = set()
        stack = [class_qualname]
        while stack:
            qualname = stack.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            info = self.classes.get(qualname)
            if info is None:
                continue
            yield info
            module = self.modules[info.module]
            for base in info.bases:
                resolved = (
                    self.resolve_name(module, base)
                    if "." not in base
                    else self.resolve_dotted(base)
                )
                if resolved is not None:
                    stack.append(resolved)

    def lookup_method(
        self, class_qualname: str, method_name: str
    ) -> Optional[FunctionInfo]:
        """Resolve ``method_name`` on a class through its in-project MRO."""
        for info in self.mro(class_qualname):
            method = info.methods.get(method_name)
            if method is not None:
                return method
        return None

    def attr_classes(self, class_qualname: str, attr: str) -> List[str]:
        """Class qualnames attribute ``attr`` may hold, through the MRO."""
        resolved: List[str] = []
        for info in self.mro(class_qualname):
            module = self.modules[info.module]
            for bare in info.attr_class_names.get(attr, ()):
                qualname = self.resolve_name(module, bare)
                if qualname is not None and qualname in self.classes:
                    if qualname not in resolved:
                        resolved.append(qualname)
        return resolved

    def attr_assignments(
        self, class_qualname: str, attr: str
    ) -> List[Tuple[FunctionInfo, ast.expr]]:
        """Every ``self.attr = <expr>`` through the in-project MRO."""
        found: List[Tuple[FunctionInfo, ast.expr]] = []
        for info in self.mro(class_qualname):
            found.extend(info.attr_assignments.get(attr, ()))
        return found

    def classes_named(self, bare_name: str) -> List[ClassInfo]:
        """Every indexed class with this bare name (any module)."""
        return [c for c in self.classes.values() if c.name == bare_name]

    def class_of(self, function: FunctionInfo) -> Optional[ClassInfo]:
        """The owning ClassInfo of a method (None for plain functions)."""
        if function.class_name is None:
            return None
        return self.classes.get(f"{function.module}.{function.class_name}")

    # -- docs -----------------------------------------------------------------

    def read_doc(self, relative: str) -> Optional[str]:
        """The text of a doc file under the project root, if present."""
        path = self.project_root / relative
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None
