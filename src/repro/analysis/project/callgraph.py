"""A conservative call graph over the project index.

Edges are added only when a call's receiver is resolvable to exactly
one in-project symbol set: plain names (local or imported), ``self.m()``
through the in-project MRO, ``obj.m()`` where ``obj`` is a local whose
type is statically evident (constructor assignment or annotation),
``self.attr.m()`` through the class's recorded attribute types, and
constructor calls (an edge to ``Class.__init__``).  Everything else —
callbacks, duck-typed receivers, dynamic dispatch — resolves to nothing,
so reachability-based rules under-approximate instead of flagging noise.

The graph also records every resolved :class:`CallSite` per callee,
which is what lets the dataflow tracer walk *backwards* from a function
parameter to the argument expressions feeding it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import ModuleSource
from repro.analysis.project.index import (
    FunctionInfo,
    ProjectIndex,
    _annotation_class_names,
)

__all__ = ["CallGraph", "CallSite", "build_call_graph", "local_class_names"]


@dataclass
class CallSite:
    """One resolved call: where it happens and what it calls."""

    callee: str  # callee qualname ("module.Class.__init__" for constructors)
    module: ModuleSource
    caller: Optional[FunctionInfo]  # None for module-level code
    call: ast.Call
    is_constructor: bool = False


@dataclass
class CallGraph:
    """Caller -> callee edges plus per-callee call sites."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    sites: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, caller: Optional[str], site: CallSite) -> None:
        if caller is not None:
            self.edges.setdefault(caller, set()).add(site.callee)
        self.sites.setdefault(site.callee, []).append(site)

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def call_sites(self, qualname: str) -> List[CallSite]:
        return self.sites.get(qualname, [])

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function qualname reachable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen


def local_class_names(
    index: ProjectIndex, module: ModuleSource, function: FunctionInfo
) -> Dict[str, List[str]]:
    """Local name -> class qualnames it evidently holds, inside a function.

    Sources of evidence: ``x = ClassName(...)`` constructor assignments,
    ``x: T = ...`` annotated assignments and annotated parameters.  A name
    assigned anything opaque on top of a known type keeps the known
    candidates — the consumer treats multiple candidates as a union.
    """
    types: Dict[str, List[str]] = {}

    def note(name: str, class_qualname: Optional[str]) -> None:
        if class_qualname is not None and class_qualname in index.classes:
            types.setdefault(name, [])
            if class_qualname not in types[name]:
                types[name].append(class_qualname)

    args = function.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            for bare in _annotation_class_names(arg.annotation):
                note(arg.arg, index.resolve_name(module, bare))
    for node in ast.walk(function.node):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        if not isinstance(target, ast.Name):
            continue
        if annotation is not None:
            for bare in _annotation_class_names(annotation):
                note(target.id, index.resolve_name(module, bare))
        if isinstance(value, ast.Call):
            qualname = index.resolve_call_target(module, value.func)
            if qualname is not None and qualname in index.classes:
                note(target.id, qualname)
    return types


def resolve_call(
    index: ProjectIndex,
    module: ModuleSource,
    caller: Optional[FunctionInfo],
    call: ast.Call,
    local_types: Optional[Dict[str, List[str]]] = None,
) -> List[Tuple[str, bool]]:
    """(callee qualname, is_constructor) candidates for one call node."""
    func = call.func
    direct = index.resolve_call_target(module, func)
    if direct is not None:
        if direct in index.classes:
            init = index.lookup_method(direct, "__init__")
            return [(init.qualname, True)] if init is not None else []
        return [(direct, False)]
    if not isinstance(func, ast.Attribute):
        return []
    receiver = func.value
    method_name = func.attr
    candidates: List[Tuple[str, bool]] = []
    receiver_classes: List[str] = []
    if isinstance(receiver, ast.Name):
        if (
            receiver.id == "self"
            and caller is not None
            and caller.class_name is not None
        ):
            receiver_classes = [f"{caller.module}.{caller.class_name}"]
        elif local_types is not None:
            receiver_classes = local_types.get(receiver.id, [])
    elif (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
        and caller is not None
        and caller.class_name is not None
    ):
        own = f"{caller.module}.{caller.class_name}"
        receiver_classes = index.attr_classes(own, receiver.attr)
    for class_qualname in receiver_classes:
        method = index.lookup_method(class_qualname, method_name)
        if method is not None:
            candidates.append((method.qualname, False))
    return candidates


def _context_calls(
    function_node: ast.AST,
) -> Iterator[ast.Call]:
    """Calls belonging to this context (nested defs included, classes not)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function_node))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def build_call_graph(index: ProjectIndex) -> CallGraph:
    """Resolve every call in every indexed module into one graph."""
    graph = CallGraph()
    for module in index.modules.values():
        # Module-level code: top-level statements minus indexed defs.
        for statement in getattr(module.tree, "body", []):
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    for callee, is_ctor in resolve_call(index, module, None, node):
                        graph.add(
                            None,
                            CallSite(callee, module, None, node, is_ctor),
                        )
    for function in list(index.functions.values()):
        module = index.modules[function.module]
        local_types = local_class_names(index, module, function)
        for call in _context_calls(function.node):
            for callee, is_ctor in resolve_call(
                index, module, function, call, local_types
            ):
                graph.add(
                    function.qualname,
                    CallSite(callee, module, function, call, is_ctor),
                )
    return graph
