"""Incremental result cache for simlint.

Per-file findings are a pure function of (file text, rule code); the
whole-program pass is a pure function of (every file's text, the docs
the project rules read, rule code).  Both therefore cache cleanly under
content hashes:

* the **environment fingerprint** hashes the source of every module in
  ``repro.analysis`` (rules included) — editing any rule invalidates the
  whole cache at once, so a stale cache can never mask a new rule;
* each file caches its *raw* findings (pre-pragma: the pragma layer is
  re-applied every run, so editing only a pragma works without a cache
  entry for it) under ``sha256(display_path NUL text)``;
* the project pass caches under the hash of all file keys plus the doc
  files the whole-program rules consume.

Entries are JSON files under ``.repro-cache/lint/<env>/``; a cache
directory from an older engine simply stops being read (its env
fingerprint no longer matches) and can be deleted wholesale.  Cached
and uncached runs produce byte-identical reports — the cache stores
every :class:`LintViolation` field.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import LintViolation

__all__ = [
    "DEFAULT_CACHE_DIR",
    "LintCache",
    "env_fingerprint",
    "file_key",
    "project_key",
]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".repro-cache") / "lint"

#: Docs the whole-program rules read; part of the project cache key.
PROJECT_DOC_FILES = ("DESIGN.md", "EXPERIMENTS.md", "docs/POLICIES.md")

_env_fingerprint: Optional[str] = None


def env_fingerprint() -> str:
    """Hash of the analysis engine's own source (rules included)."""
    global _env_fingerprint
    if _env_fingerprint is None:
        package_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(source.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _env_fingerprint = digest.hexdigest()[:16]
    return _env_fingerprint


def file_key(display_path: str, text: str) -> str:
    """Content hash of one module (identity of its raw findings)."""
    digest = hashlib.sha256()
    digest.update(display_path.encode("utf-8"))
    digest.update(b"\0")
    digest.update(text.encode("utf-8"))
    return digest.hexdigest()


def project_key(
    file_keys: Sequence[str], project_root: Optional[Path]
) -> str:
    """Identity of the whole-program pass: all files plus the docs."""
    digest = hashlib.sha256()
    for key in sorted(file_keys):
        digest.update(key.encode("utf-8"))
        digest.update(b"\0")
    for relative in PROJECT_DOC_FILES:
        digest.update(relative.encode("utf-8"))
        digest.update(b"\0")
        if project_root is not None:
            doc = Path(project_root) / relative
            try:
                digest.update(doc.read_bytes())
            except OSError:
                pass
        digest.update(b"\0")
    return digest.hexdigest()


def _violation_to_dict(violation: LintViolation) -> Dict[str, object]:
    return {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "column": violation.column,
        "message": violation.message,
        "hint": violation.hint,
        "severity": violation.severity,
        "scope": violation.scope,
        "start_line": violation.start_line,
        "end_line": violation.end_line,
    }


def _violation_from_dict(payload: Dict[str, object]) -> LintViolation:
    return LintViolation(
        rule=str(payload["rule"]),
        path=str(payload["path"]),
        line=int(payload["line"]),  # type: ignore[arg-type]
        column=int(payload["column"]),  # type: ignore[arg-type]
        message=str(payload["message"]),
        hint=str(payload.get("hint", "")),
        severity=str(payload.get("severity", "error")),
        scope=str(payload.get("scope", "file")),
        start_line=int(payload.get("start_line", 0)),  # type: ignore[arg-type]
        end_line=int(payload.get("end_line", 0)),  # type: ignore[arg-type]
    )


class LintCache:
    """Content-addressed findings store under one cache directory."""

    def __init__(self, cache_dir: Path) -> None:
        self.root = Path(cache_dir) / env_fingerprint()
        self.hits = 0
        self.misses = 0

    def _entry_path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.json"

    def get(self, kind: str, key: str) -> Optional[List[LintViolation]]:
        """Cached findings for ``key``, or None on a miss."""
        path = self._entry_path(kind, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            findings = [_violation_from_dict(row) for row in payload]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(
        self, kind: str, key: str, findings: Sequence[LintViolation]
    ) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        rows = [_violation_to_dict(violation) for violation in findings]
        text = json.dumps(rows, sort_keys=True)
        self._entry_path(kind, key).write_text(text, encoding="utf-8")
