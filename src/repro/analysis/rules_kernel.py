"""DES-kernel discipline rules.

A kernel process is a generator driven by
:class:`~repro.sim.kernel.Process`: the *only* things it may yield are
kernel events, the only clock it may read is ``env.now``, and it must
never block the hosting OS thread (one blocked process stalls the whole
simulated world).  Process bodies are recognised statically as generator
functions that touch an ``env`` (a parameter or name called ``env``, or
a ``.env`` attribute such as ``self.env``):

* ``kernel-yield-non-event`` — yielding literals or asyncio awaitables
  from a process body (the kernel fails such a process at run time with
  a ``SimulationError``; the lint catches it at review time, and on the
  paths a run never exercised);
* ``kernel-blocking-call`` — ``time.sleep``, file/socket/subprocess
  I/O, ``input`` inside a process body;
* ``kernel-stale-now`` — a name bound to ``env.now`` *before* a yield
  being treated as the current time *after* it (passed to
  ``env.timeout`` or equality-compared against a fresh ``env.now``).
  Computing an elapsed time (``env.now - start``) stays legal — that is
  the idiomatic latency measurement.
* ``kernel-hot-alloc`` — per-event object construction (container
  displays, comprehensions, ``list()``-family calls, lambdas) inside a
  loop of a scheduler dispatch method (``run``/``step`` on a class named
  like ``Environment``).  The dispatch loop executes once per simulated
  event — millions of times per run — so every allocation there is paid
  at event rate; genuinely-needed ones carry an explaining pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.engine import LintRule, LintViolation, ModuleSource, register

__all__ = [
    "BlockingCallRule",
    "HotLoopAllocRule",
    "StaleNowRule",
    "YieldNonEventRule",
]


def _own_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _references_env(function: ast.AST) -> bool:
    if isinstance(function, ast.FunctionDef):
        if any(arg.arg == "env" for arg in function.args.args):
            return True
    for node in _own_nodes(function):
        if isinstance(node, ast.Name) and node.id == "env":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "env":
            return True
    return False


def _process_generators(module: ModuleSource) -> Iterator[ast.FunctionDef]:
    """Generator functions that look like kernel process bodies."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        yields = [
            n for n in _own_nodes(node) if isinstance(n, (ast.Yield, ast.YieldFrom))
        ]
        if yields and _references_env(node):
            yield node


@register
class YieldNonEventRule(LintRule):
    """Process bodies may only yield kernel events."""

    id = "kernel-yield-non-event"
    description = (
        "a kernel process suspends by yielding Event objects; yielding "
        "literals or asyncio awaitables dies at run time with a "
        "SimulationError"
    )
    hint = "yield env.timeout(delay) / an Event, or return the value instead"

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for function in _process_generators(module):
            for node in _own_nodes(function):
                if not isinstance(node, ast.Yield):
                    continue
                value = node.value
                if value is None:
                    yield self.violation(
                        module, node, "bare yield in a process body"
                    )
                elif isinstance(
                    value, (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set)
                ):
                    yield self.violation(
                        module,
                        node,
                        "process yields a literal, not a kernel event",
                    )
                elif isinstance(value, ast.Call):
                    name = module.qualified_name(value.func)
                    if name is not None and name.split(".")[0] == "asyncio":
                        yield self.violation(
                            module,
                            node,
                            f"process yields {name}(), an asyncio awaitable",
                        )


#: Calls that block the hosting thread (resolved dotted names).
_BLOCKING_QUALIFIED_PREFIXES = (
    "time.sleep",
    "os.system",
    "os.popen",
    "subprocess.",
    "socket.",
    "requests.",
    "urllib.request.",
)

#: Bare builtins that block or do I/O.
_BLOCKING_BUILTINS = frozenset({"open", "input"})


@register
class BlockingCallRule(LintRule):
    """No sleeping or real I/O inside a process body."""

    id = "kernel-blocking-call"
    description = (
        "a blocking call inside a process body stalls every simulated "
        "host at once; simulated delay is env.timeout, and I/O belongs "
        "outside the simulation"
    )
    hint = "yield env.timeout(delay) for delays; hoist I/O out of the process"

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for function in _process_generators(module):
            for node in _own_nodes(function):
                if not isinstance(node, ast.Call):
                    continue
                name = module.qualified_name(node.func)
                if name is not None and name.startswith(_BLOCKING_QUALIFIED_PREFIXES):
                    yield self.violation(
                        module, node, f"blocking call to {name}() in a process body"
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _BLOCKING_BUILTINS
                ):
                    yield self.violation(
                        module,
                        node,
                        f"blocking call to {node.func.id}() in a process body",
                    )
                elif (
                    name is None
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sleep"
                ):
                    yield self.violation(
                        module, node, "call to a .sleep() method in a process body"
                    )


def _is_env_now(node: ast.AST) -> bool:
    """True for ``env.now`` / ``self.env.now`` / ``<anything>.env.now``."""
    if not (isinstance(node, ast.Attribute) and node.attr == "now"):
        return False
    value = node.value
    if isinstance(value, ast.Name) and value.id == "env":
        return True
    return isinstance(value, ast.Attribute) and value.attr == "env"


@register
class StaleNowRule(LintRule):
    """A pre-yield ``env.now`` snapshot is not the current time."""

    id = "kernel-stale-now"
    description = (
        "env.now captured before a yield is the *past* after it; passing "
        "the snapshot to env.timeout or equality-comparing it with a "
        "fresh env.now is a time-travel bug"
    )
    hint = "re-read env.now after the yield (env.now - snapshot stays legal)"

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for function in _process_generators(module):
            snapshots = self._snapshot_lines(function)
            if not snapshots:
                continue
            yield_lines = sorted(
                n.lineno
                for n in _own_nodes(function)
                if isinstance(n, (ast.Yield, ast.YieldFrom))
            )
            for name, use in self._stale_uses(function, set(snapshots)):
                assigned = max(
                    (line for line in snapshots[name] if line < use.lineno),
                    default=None,
                )
                if assigned is None:
                    continue
                if any(assigned < y < use.lineno for y in yield_lines):
                    yield self.violation(
                        module,
                        use,
                        f"{name!r} holds env.now from before a yield but is "
                        "used as the current time",
                    )

    @staticmethod
    def _snapshot_lines(function: ast.AST) -> dict:
        """Names assigned exactly ``env.now`` -> their assignment lines."""
        snapshots: dict = {}
        for node in _own_nodes(function):
            if (
                isinstance(node, ast.Assign)
                and _is_env_now(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                snapshots.setdefault(node.targets[0].id, []).append(node.lineno)
        return snapshots

    @staticmethod
    def _stale_uses(
        function: ast.AST, names: Set[str]
    ) -> Iterator[Tuple[str, ast.AST]]:
        """(name, node) pairs where a snapshot is used as 'the current time'."""
        for node in _own_nodes(function):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "timeout":
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in names:
                            yield arg.id, arg
                if node.func.attr == "run":
                    for keyword in node.keywords:
                        if (
                            keyword.arg == "until"
                            and isinstance(keyword.value, ast.Name)
                            and keyword.value.id in names
                        ):
                            yield keyword.value.id, keyword.value
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                has_fresh_now = any(_is_env_now(operand) for operand in operands)
                if not has_fresh_now:
                    continue
                if not all(
                    isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                ):
                    continue
                for operand in operands:
                    if isinstance(operand, ast.Name) and operand.id in names:
                        yield operand.id, operand


#: Builtin constructors whose call in a dispatch loop allocates per event.
_ALLOCATING_BUILTINS = frozenset({"dict", "frozenset", "list", "set", "tuple"})


def _dispatch_methods(module: ModuleSource) -> Iterator[ast.FunctionDef]:
    """``run``/``step`` methods of scheduler classes (name ~ Environment)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if "Environment" not in node.name:
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name in ("run", "step"):
                yield item


def _loop_bodies(function: ast.FunctionDef) -> Iterator[ast.AST]:
    """Every node inside a For/While loop of the function's own body."""
    for node in _own_nodes(function):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for child in node.body + node.orelse:
            yield from ast.walk(child)


@register
class HotLoopAllocRule(LintRule):
    """No per-event object construction in the dispatch loop."""

    id = "kernel-hot-alloc"
    description = (
        "the scheduler dispatch loop runs once per simulated event; an "
        "object constructed inside it is allocated (and collected) at "
        "event rate — hoist it, reuse a preallocated buffer, or recycle "
        "through a free list"
    )
    hint = (
        "hoist the allocation out of the loop or reuse a buffer; a "
        "deliberate per-event allocation takes "
        "# simlint: allow[kernel-hot-alloc] reason=..."
    )

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for function in _dispatch_methods(module):
            seen: Set[int] = set()
            for node in _loop_bodies(function):
                if id(node) in seen:
                    continue  # nested loops revisit inner bodies
                seen.add(id(node))
                if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                    yield self.violation(
                        module, node, "comprehension builds a fresh container per event"
                    )
                elif isinstance(node, ast.GeneratorExp):
                    yield self.violation(
                        module, node, "generator expression allocates per event"
                    )
                elif isinstance(node, (ast.List, ast.Set, ast.Dict)):
                    kind = type(node).__name__.lower()
                    yield self.violation(
                        module, node, f"{kind} display allocates a container per event"
                    )
                elif isinstance(node, ast.Lambda):
                    yield self.violation(
                        module, node, "lambda creates a function object per event"
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ALLOCATING_BUILTINS
                    and node.func.id not in module.imports
                ):
                    yield self.violation(
                        module,
                        node,
                        f"{node.func.id}() call allocates a container per event",
                    )
