"""Grandfathered-findings baseline for simlint.

The baseline turns simlint from a boil-the-ocean proposition into a
ratchet: findings that predate a rule are recorded once (fingerprinted)
and stop failing the build, while anything *new* still exits non-zero.
``repro lint --update-baseline`` rewrites the file from the current
tree; deleting an entry (or the file) re-arms the corresponding finding.

Fingerprints are **content-addressed, not line-addressed**: the SHA-256
of ``rule :: path :: stripped-source-line``.  Unrelated edits that shift
line numbers leave fingerprints intact; editing the offending line
itself re-arms the finding, which is exactly the moment a human should
re-decide whether it is still acceptable.  Identical offending lines in
one file share a fingerprint, so the baseline stores a multiplicity and
grandfathers at most that many occurrences.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.analysis.engine import LintViolation

__all__ = ["BASELINE_FORMAT", "Baseline", "fingerprint"]

#: Bump when the baseline file layout changes.
BASELINE_FORMAT = 1


def fingerprint(violation: LintViolation, source_line: str) -> str:
    """Stable content-addressed key of one finding."""
    payload = f"{violation.rule}::{violation.path}::{source_line.strip()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """The committed set of grandfathered findings (fingerprint -> count)."""

    entries: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path} is not a simlint baseline file")
        if payload.get("format") != BASELINE_FORMAT:
            raise ValueError(
                f"{path} has baseline format {payload.get('format')!r}; "
                f"this simlint reads format {BASELINE_FORMAT}"
            )
        return cls(entries=list(payload["entries"]))

    def save(self, path: Union[str, Path]) -> None:
        path = Path(path)
        payload = {
            "format": BASELINE_FORMAT,
            "comment": (
                "Grandfathered simlint findings; regenerate with "
                "'python -m repro lint --update-baseline'.  Delete an "
                "entry to re-arm its finding."
            ),
            "entries": sorted(
                self.entries,
                key=lambda e: (str(e.get("path")), str(e.get("rule")), str(e.get("fingerprint"))),
            ),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    def allowances(self) -> Dict[str, int]:
        """Fingerprint -> how many occurrences are grandfathered."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            key = str(entry.get("fingerprint"))
            counts[key] = counts.get(key, 0) + 1
        return counts

    @classmethod
    def from_violations(
        cls, pairs: List[Tuple[LintViolation, str]]
    ) -> "Baseline":
        """Build a baseline grandfathering exactly the given findings.

        ``pairs`` holds ``(violation, source_line)`` tuples; the source
        line feeds the fingerprint and a human-readable note rides along
        so reviewers can audit the file without chasing locations.
        """
        entries = [
            {
                "fingerprint": fingerprint(violation, line),
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "note": violation.message,
            }
            for violation, line in pairs
        ]
        return cls(entries=entries)

    def split(
        self, pairs: List[Tuple[LintViolation, str]]
    ) -> Tuple[List[LintViolation], List[LintViolation], List[str]]:
        """Partition findings into (new, grandfathered) plus stale keys.

        Stale keys are baseline fingerprints that matched nothing — the
        offending code was fixed or rewritten — and should be pruned
        with ``--update-baseline``.
        """
        remaining = self.allowances()
        new: List[LintViolation] = []
        grandfathered: List[LintViolation] = []
        for violation, line in pairs:
            key = fingerprint(violation, line)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered.append(violation)
            else:
                new.append(violation)
        stale = sorted(key for key, count in remaining.items() if count > 0)
        return new, grandfathered, stale
