"""Grandfathered-findings baseline for simlint.

The baseline turns simlint from a boil-the-ocean proposition into a
ratchet: findings that predate a rule are recorded once (fingerprinted)
and stop failing the build, while anything *new* still exits non-zero.
``repro lint --update-baseline`` rewrites the file from the current
tree; ``--prune-baseline`` garbage-collects entries that stopped
matching; deleting an entry (or the file) re-arms the finding.

Fingerprints are **content-addressed, not line-addressed**:

* file-scope findings key on the SHA-256 of
  ``rule :: path :: stripped-source-line`` — unrelated edits that shift
  line numbers leave fingerprints intact, while editing the offending
  line itself re-arms the finding (exactly the moment a human should
  re-decide whether it is still acceptable).  Identical offending lines
  in one file share a fingerprint, so the baseline stores a multiplicity
  and grandfathers at most that many occurrences.
* project-scope findings (whole-program rules) key on
  ``rule :: path :: message`` — their anchor line often belongs to code
  that is only *related* to the defect, so the message is the stable
  identity.

Format 2 adds per-entry ``scope`` and an optional human ``reason``
(preserved across ``--update-baseline`` rewrites), plus a ``modules``
map recording the content hash of every linted file at baseline time
(an audit trail of what the grandfathering was decided against).
Format-1 files load transparently — every entry is treated as
file-scope — and are rewritten as format 2 on the next
``--update-baseline``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.engine import LintViolation

__all__ = ["BASELINE_FORMAT", "Baseline", "fingerprint"]

#: Bump when the baseline file layout changes.
BASELINE_FORMAT = 2

#: Formats :meth:`Baseline.load` understands (older ones auto-upgrade).
_READABLE_FORMATS = (1, 2)


def fingerprint(violation: LintViolation, source_line: str) -> str:
    """Stable content-addressed key of one finding."""
    if violation.scope == "project":
        payload = f"{violation.rule}::{violation.path}::{violation.message}"
    else:
        payload = f"{violation.rule}::{violation.path}::{source_line.strip()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """The committed set of grandfathered findings (fingerprint -> count)."""

    entries: List[Dict[str, object]] = field(default_factory=list)
    #: display path -> sha256 of the file text at baseline time.
    modules: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Format-1 files (no per-entry scope, no modules map) upgrade in
        memory: every entry becomes file-scope.
        """
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path} is not a simlint baseline file")
        version = payload.get("format")
        if version not in _READABLE_FORMATS:
            raise ValueError(
                f"{path} has baseline format {version!r}; this simlint "
                f"reads formats {_READABLE_FORMATS}"
            )
        entries = [dict(entry) for entry in payload["entries"]]
        if version == 1:
            for entry in entries:
                entry.setdefault("scope", "file")
        modules_raw = payload.get("modules", {})
        modules = (
            {str(k): str(v) for k, v in modules_raw.items()}
            if isinstance(modules_raw, dict)
            else {}
        )
        return cls(entries=entries, modules=modules)

    def render(self) -> str:
        """The exact file text :meth:`save` writes (stable byte-for-byte)."""
        payload = {
            "format": BASELINE_FORMAT,
            "comment": (
                "Grandfathered simlint findings; regenerate with "
                "'python -m repro lint --update-baseline', garbage-collect "
                "with '--prune-baseline'.  Delete an entry to re-arm its "
                "finding."
            ),
            "entries": sorted(
                self.entries,
                key=lambda e: (
                    str(e.get("path")),
                    str(e.get("rule")),
                    str(e.get("fingerprint")),
                ),
            ),
            "modules": dict(sorted(self.modules.items())),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path]) -> bool:
        """Write the baseline; returns False when the file was already
        byte-identical (``--update-baseline`` is a strict no-op then)."""
        path = Path(path)
        text = self.render()
        if path.exists() and path.read_text(encoding="utf-8") == text:
            return False
        path.write_text(text, encoding="utf-8")
        return True

    def allowances(self) -> Dict[str, int]:
        """Fingerprint -> how many occurrences are grandfathered."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            key = str(entry.get("fingerprint"))
            counts[key] = counts.get(key, 0) + 1
        return counts

    def reasons(self) -> Dict[str, str]:
        """Fingerprint -> human reason, for entries that carry one."""
        return {
            str(entry["fingerprint"]): str(entry["reason"])
            for entry in self.entries
            if entry.get("reason")
        }

    @classmethod
    def from_violations(
        cls,
        pairs: List[Tuple[LintViolation, str]],
        reasons: Optional[Dict[str, str]] = None,
        modules: Optional[Dict[str, str]] = None,
    ) -> "Baseline":
        """Build a baseline grandfathering exactly the given findings.

        ``pairs`` holds ``(violation, source_line)`` tuples; the source
        line feeds the fingerprint and a human-readable note rides along
        so reviewers can audit the file without chasing locations.
        ``reasons`` (fingerprint -> text, typically from the previous
        baseline) survive the rewrite.
        """
        reasons = reasons or {}
        entries: List[Dict[str, object]] = []
        for violation, line in pairs:
            key = fingerprint(violation, line)
            entry: Dict[str, object] = {
                "fingerprint": key,
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "note": violation.message,
                "scope": violation.scope,
            }
            if key in reasons:
                entry["reason"] = reasons[key]
            entries.append(entry)
        return cls(entries=entries, modules=dict(modules or {}))

    def split(
        self, pairs: List[Tuple[LintViolation, str]]
    ) -> Tuple[List[LintViolation], List[LintViolation], List[str]]:
        """Partition findings into (new, grandfathered) plus stale keys.

        Stale keys are baseline fingerprints that matched nothing — the
        offending code was fixed or rewritten — and should be pruned
        with ``--prune-baseline``.
        """
        remaining = self.allowances()
        new: List[LintViolation] = []
        grandfathered: List[LintViolation] = []
        for violation, line in pairs:
            key = fingerprint(violation, line)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered.append(violation)
            else:
                new.append(violation)
        # One stale entry per unmatched occurrence, so multiplicities
        # survive into --prune-baseline.
        stale = sorted(
            key
            for key, count in remaining.items()
            for _ in range(count)
        )
        return new, grandfathered, stale

    def pruned(
        self, stale: List[str]
    ) -> Tuple["Baseline", List[Dict[str, object]]]:
        """A copy without the ``stale`` fingerprints, plus what was cut.

        Multiplicities are respected: ``stale`` lists each fingerprint
        once per unmatched occurrence, so a fingerprint grandfathered
        three times but matched twice loses exactly one entry.
        """
        budget: Dict[str, int] = {}
        for key in stale:
            budget[key] = budget.get(key, 0) + 1
        kept: List[Dict[str, object]] = []
        removed: List[Dict[str, object]] = []
        # Cut from the end so the surviving entries keep their original
        # relative order (stable for the byte-identity check).
        for entry in reversed(self.entries):
            key = str(entry.get("fingerprint"))
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                removed.append(entry)
            else:
                kept.append(entry)
        kept.reverse()
        removed.reverse()
        return Baseline(entries=kept, modules=dict(self.modules)), removed
