"""Retry-discipline rule.

A retry loop must be bounded: either it iterates over an explicit attempt
range (``for attempt in range(1 + limit)``) or its body consults a budget
— an attempt counter, a deadline, remaining time.  An unbounded
``while True`` retry loop that just grows its backoff turns one stuck
dependency into a stuck host, and in a DES it silently stops simulated
time from terminating.

* ``unbounded-retry`` — a constant-condition ``while`` loop that grows a
  backoff/delay variable without any attempt-count or deadline evidence
  in its body.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.engine import LintRule, LintViolation, ModuleSource, register

__all__ = ["UnboundedRetryRule"]

#: Variable-name fragments that mark a retry sleep/backoff quantity.
_BACKOFF_FRAGMENTS = ("backoff", "delay", "pause", "sleep", "wait")

#: Variable-name fragments that count as bound evidence when compared.
_BOUND_FRAGMENTS = (
    "attempt",
    "budget",
    "count",
    "deadline",
    "limit",
    "remaining",
    "retries",
    "retry",
    "tries",
)


def _own_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Walk a node's body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _is_constant_true(test: ast.expr) -> bool:
    """``while True`` / ``while 1`` — a loop with no terminating test."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _is_backoff_name(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    return any(fragment in name for fragment in _BACKOFF_FRAGMENTS)


def _grows_backoff(node: ast.AST) -> bool:
    """``backoff *= k`` / ``backoff += k`` / ``backoff = backoff * k``."""
    if isinstance(node, ast.AugAssign):
        return isinstance(node.op, (ast.Mult, ast.Add)) and _is_backoff_name(
            node.target
        )
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        value = node.value
        if not (_is_backoff_name(target) and isinstance(value, ast.BinOp)):
            return False
        if not isinstance(value.op, (ast.Mult, ast.Add)):
            return False
        return _is_backoff_name(value.left) or _is_backoff_name(value.right)
    return False


def _is_bound_operand(node: ast.expr) -> bool:
    """An operand that reads like attempt-count or deadline evidence."""
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True  # compares against the simulated clock: a deadline
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    return any(fragment in name for fragment in _BOUND_FRAGMENTS)


def _has_bound_evidence(loop: ast.While) -> bool:
    for node in _own_nodes(loop):
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(_is_bound_operand(operand) for operand in operands):
                return True
        elif isinstance(node, ast.Raise):
            return True  # the loop can refuse instead of spinning
    return False


@register
class UnboundedRetryRule(LintRule):
    """Retry loops need an attempt bound or a deadline check."""

    id = "unbounded-retry"
    description = (
        "a while-True loop that grows a backoff/delay without consulting "
        "an attempt counter or deadline retries forever; one permanently "
        "failing dependency then wedges the whole host"
    )
    hint = (
        "iterate over range(1 + retry_limit), or compare an attempt "
        "counter / deadline inside the loop body"
    )

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            if not _is_constant_true(node.test):
                continue
            if not any(_grows_backoff(child) for child in _own_nodes(node)):
                continue
            if _has_bound_evidence(node):
                continue
            yield self.violation(
                module,
                node,
                "retry loop grows its backoff but never checks an attempt "
                "bound or deadline",
            )
