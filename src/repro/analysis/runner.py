"""The ``repro lint`` front end: baseline application and report rendering.

:func:`run_lint` is the single entry point the CLI (and the test suite)
drives: lint the given paths, split findings against the baseline,
render text or JSON, optionally rewrite the baseline, and map the
outcome to a process exit code (0 = clean or fully grandfathered,
1 = new findings, 2 = usage error — handled by the CLI layer).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.engine import (
    META_RULES,
    LintViolation,
    ModuleSource,
    all_rules,
    display_path,
    iter_python_files,
    lint_source,
)

__all__ = ["DEFAULT_BASELINE", "LintOutcome", "render_rule_catalogue", "run_lint"]

#: The committed baseline at the repo root.
DEFAULT_BASELINE = Path("simlint-baseline.json")


@dataclass
class LintOutcome:
    """Everything one lint invocation decided."""

    new: List[LintViolation] = field(default_factory=list)
    grandfathered: List[LintViolation] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.new:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        """The ``--format json`` payload (also the CI artifact)."""
        return {
            "files_checked": len(self.files),
            "new_count": len(self.new),
            "grandfathered_count": len(self.grandfathered),
            "stale_baseline": list(self.stale_baseline),
            "counts_by_rule": self.counts_by_rule(),
            "violations": [v.as_dict() for v in self.new],
            "grandfathered": [v.as_dict() for v in self.grandfathered],
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for violation in self.new:
            lines.append(
                f"{violation.location}: {violation.rule}: {violation.message}"
            )
            if violation.hint:
                lines.append(f"    hint: {violation.hint}")
        summary = (
            f"simlint: {len(self.files)} file(s), "
            f"{len(self.new)} new finding(s), "
            f"{len(self.grandfathered)} grandfathered"
        )
        if self.stale_baseline:
            summary += f", {len(self.stale_baseline)} stale baseline entr(ies)"
        lines.append(summary)
        if self.stale_baseline:
            lines.append(
                "    hint: prune stale entries with "
                "'python -m repro lint --update-baseline'"
            )
        return "\n".join(lines)


def _collect(
    paths: Sequence[Path],
) -> Tuple[List[Tuple[LintViolation, str]], List[str]]:
    """Lint every file; pair each finding with its source line text."""
    rules = all_rules()
    pairs: List[Tuple[LintViolation, str]] = []
    files: List[str] = []
    for file_path in iter_python_files(paths):
        module = ModuleSource.from_path(file_path, display_path(file_path))
        files.append(module.display_path)
        for violation in lint_source(module, rules):
            pairs.append((violation, module.source_line(violation.line)))
    pairs.sort(key=lambda p: (p[0].path, p[0].line, p[0].column, p[0].rule))
    return pairs, files


def run_lint(
    paths: Sequence[Path],
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
    output_format: str = "text",
    json_report: Optional[Path] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Lint ``paths`` and print a report; returns the exit code.

    ``baseline_path=None`` means "no baseline" (everything is new);
    the CLI passes :data:`DEFAULT_BASELINE` when the flag is omitted.
    ``update_baseline`` rewrites the baseline to grandfather exactly the
    current findings and exits 0.  ``json_report`` additionally writes
    the JSON payload to a file whatever ``output_format`` says (the CI
    artifact path).
    """
    import sys

    out = stream if stream is not None else sys.stdout
    pairs, files = _collect(paths)

    baseline = (
        Baseline.load(baseline_path) if baseline_path is not None else Baseline()
    )
    if update_baseline:
        if baseline_path is None:
            raise ValueError("--update-baseline needs a baseline path")
        # Meta findings (broken pragmas, parse errors) are never
        # grandfathered: they are defects of the suppression machinery.
        keep = [(v, line) for v, line in pairs if v.rule not in META_RULES]
        Baseline.from_violations(keep).save(baseline_path)
        skipped = len(pairs) - len(keep)
        message = (
            f"simlint: baseline {baseline_path} rewritten with "
            f"{len(keep)} entr(ies)"
        )
        if skipped:
            message += f"; {skipped} meta finding(s) NOT grandfathered"
        print(message, file=out)
        return 1 if skipped else 0

    new, grandfathered, stale = baseline.split(pairs)
    outcome = LintOutcome(
        new=new, grandfathered=grandfathered, stale_baseline=stale, files=files
    )
    if json_report is not None:
        Path(json_report).write_text(
            json.dumps(outcome.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if output_format == "json":
        print(json.dumps(outcome.as_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(outcome.render_text(), file=out)
    return outcome.exit_code


def render_rule_catalogue() -> str:
    """The ``--rules`` listing: every rule id with its one-line contract."""
    lines = ["simlint rules:"]
    for rule in all_rules():
        lines.append(f"  {rule.id} [{rule.severity}]")
        lines.append(f"      {rule.description}")
        if rule.allow_modules:
            lines.append(f"      allowlisted: {', '.join(rule.allow_modules)}")
    lines.append("meta rules (engine-level, not suppressible):")
    for rule_id, description in sorted(META_RULES.items()):
        lines.append(f"  {rule_id}: {description}")
    return "\n".join(lines)
