"""The ``repro lint`` front end: caching, baseline application, reports.

:func:`run_lint` is the single entry point the CLI (and the test suite)
drives: lint the given paths (per-file rules, plus the whole-program
pass with ``project=True``), split findings against the baseline,
render text or JSON, optionally rewrite or prune the baseline, and map
the outcome to a process exit code (0 = clean or fully grandfathered,
1 = new findings, 2 = usage error — handled by the CLI layer).

The pipeline is arranged so the incremental cache stays sound:

1. every file's *raw* findings come from the cache or
   :func:`~repro.analysis.engine.collect_findings` (pure per-file);
2. the whole-program findings come from the project cache or the
   project rules (pure in all files + the docs they read);
3. the pragma layer then runs over the *merged* findings of each
   module, every run — so pragma edits need no cache entry, and a
   pragma whose only job is excusing a whole-program finding still
   counts as used.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.cache import (
    DEFAULT_CACHE_DIR,
    LintCache,
    file_key,
    project_key,
)
from repro.analysis.engine import (
    META_RULES,
    LintViolation,
    ModuleSource,
    all_project_rules,
    apply_pragmas,
    collect_findings,
    display_path,
    iter_python_files,
)

__all__ = ["DEFAULT_BASELINE", "LintOutcome", "render_rule_catalogue", "run_lint"]

#: The committed baseline at the repo root.
DEFAULT_BASELINE = Path("simlint-baseline.json")


@dataclass
class LintOutcome:
    """Everything one lint invocation decided."""

    new: List[LintViolation] = field(default_factory=list)
    grandfathered: List[LintViolation] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.new:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        """The ``--format json`` payload (also the CI artifact)."""
        return {
            "files_checked": len(self.files),
            "new_count": len(self.new),
            "grandfathered_count": len(self.grandfathered),
            "stale_baseline": list(self.stale_baseline),
            "counts_by_rule": self.counts_by_rule(),
            "violations": [v.as_dict() for v in self.new],
            "grandfathered": [v.as_dict() for v in self.grandfathered],
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for violation in self.new:
            lines.append(
                f"{violation.location}: {violation.rule}: {violation.message}"
            )
            if violation.hint:
                lines.append(f"    hint: {violation.hint}")
        summary = (
            f"simlint: {len(self.files)} file(s), "
            f"{len(self.new)} new finding(s), "
            f"{len(self.grandfathered)} grandfathered"
        )
        if self.stale_baseline:
            summary += f", {len(self.stale_baseline)} stale baseline entr(ies)"
        lines.append(summary)
        if self.stale_baseline:
            lines.append(
                "    hint: prune stale entries with "
                "'python -m repro lint --prune-baseline'"
            )
        return "\n".join(lines)


def _load_modules(paths: Sequence[Path]) -> List[ModuleSource]:
    return [
        ModuleSource.from_path(file_path, display_path(file_path))
        for file_path in iter_python_files(paths)
    ]


def _file_findings(
    modules: Sequence[ModuleSource], cache: Optional[LintCache]
) -> Dict[str, List[LintViolation]]:
    """display path -> raw per-file findings (cache-aware)."""
    findings: Dict[str, List[LintViolation]] = {}
    for module in modules:
        cached = (
            cache.get("file", file_key(module.display_path, module.text))
            if cache is not None
            else None
        )
        if cached is None:
            cached = collect_findings(module)
            if cache is not None:
                cache.put(
                    "file", file_key(module.display_path, module.text), cached
                )
        findings[module.display_path] = cached
    return findings


def _project_findings(
    modules: Sequence[ModuleSource],
    cache: Optional[LintCache],
    project_root: Optional[Path],
) -> List[LintViolation]:
    """Whole-program findings over the full module set (cache-aware)."""
    key = project_key(
        [file_key(m.display_path, m.text) for m in modules], project_root
    )
    cached = cache.get("project", key) if cache is not None else None
    if cached is not None:
        return cached
    from repro.analysis.project.index import ProjectIndex

    index = ProjectIndex(modules, project_root=project_root or Path("."))
    found: List[LintViolation] = []
    for rule in all_project_rules():
        found.extend(rule.check(index))
    if cache is not None:
        cache.put("project", key, found)
    return found


def _collect(
    paths: Sequence[Path],
    project: bool,
    cache: Optional[LintCache],
    project_root: Optional[Path],
) -> Tuple[List[Tuple[LintViolation, str]], List[str]]:
    """Lint every file; pair each finding with its source line text."""
    modules = _load_modules(paths)
    per_file = _file_findings(modules, cache)
    per_module_project: Dict[str, List[LintViolation]] = {}
    if project:
        for violation in _project_findings(modules, cache, project_root):
            per_module_project.setdefault(violation.path, []).append(violation)
    pairs: List[Tuple[LintViolation, str]] = []
    files: List[str] = []
    for module in modules:
        files.append(module.display_path)
        merged = (
            per_file[module.display_path]
            + per_module_project.get(module.display_path, [])
        )
        for violation in apply_pragmas(module, merged, project=project):
            pairs.append((violation, module.source_line(violation.line)))
    pairs.sort(key=lambda p: (p[0].path, p[0].line, p[0].column, p[0].rule))
    return pairs, files


def _module_hashes(paths: Sequence[Path]) -> Dict[str, str]:
    """display path -> content hash, the baseline's audit map."""
    return {
        module.display_path: file_key(module.display_path, module.text)
        for module in _load_modules(paths)
    }


def run_lint(
    paths: Sequence[Path],
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
    prune_baseline: bool = False,
    output_format: str = "text",
    json_report: Optional[Path] = None,
    stream: Optional[TextIO] = None,
    project: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    project_root: Optional[Path] = None,
) -> int:
    """Lint ``paths`` and print a report; returns the exit code.

    ``baseline_path=None`` means "no baseline" (everything is new);
    the CLI passes :data:`DEFAULT_BASELINE` when the flag is omitted.
    ``project=True`` additionally runs the whole-program rules over the
    full file set.  ``update_baseline`` rewrites the baseline to
    grandfather exactly the current findings (a no-op when nothing
    changed — the file stays byte-identical); ``prune_baseline`` only
    garbage-collects entries that no longer match, refusing to touch
    ones that still fire.  ``json_report`` additionally writes the JSON
    payload to a file whatever ``output_format`` says (the CI artifact
    path).
    """
    import sys

    out = stream if stream is not None else sys.stdout
    if project_root is None:
        project_root = Path(".")
    cache = (
        LintCache(cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR)
        if use_cache
        else None
    )
    pairs, files = _collect(paths, project, cache, project_root)

    baseline = (
        Baseline.load(baseline_path) if baseline_path is not None else Baseline()
    )
    if update_baseline:
        if baseline_path is None:
            raise ValueError("--update-baseline needs a baseline path")
        # Meta findings (broken pragmas, parse errors) are never
        # grandfathered: they are defects of the suppression machinery.
        keep = [(v, line) for v, line in pairs if v.rule not in META_RULES]
        rebuilt = Baseline.from_violations(
            keep, reasons=baseline.reasons(), modules=_module_hashes(paths)
        )
        changed = rebuilt.save(baseline_path)
        skipped = len(pairs) - len(keep)
        if changed:
            message = (
                f"simlint: baseline {baseline_path} rewritten with "
                f"{len(keep)} entr(ies)"
            )
        else:
            message = f"simlint: baseline {baseline_path} already up to date"
        if skipped:
            message += f"; {skipped} meta finding(s) NOT grandfathered"
        print(message, file=out)
        return 1 if skipped else 0

    new, grandfathered, stale = baseline.split(pairs)

    if prune_baseline:
        if baseline_path is None:
            raise ValueError("--prune-baseline needs a baseline path")
        pruned, removed = baseline.pruned(stale)
        for entry in removed:
            print(
                f"simlint: pruned {entry.get('fingerprint')} "
                f"[{entry.get('rule')}] {entry.get('path')}: "
                f"{entry.get('note')}",
                file=out,
            )
        if removed:
            pruned.save(baseline_path)
            print(
                f"simlint: baseline {baseline_path} pruned "
                f"({len(removed)} stale entr(ies) removed, "
                f"{len(pruned.entries)} kept)",
                file=out,
            )
        else:
            print(
                f"simlint: baseline {baseline_path} has no stale entries",
                file=out,
            )
        return 0

    outcome = LintOutcome(
        new=new, grandfathered=grandfathered, stale_baseline=stale, files=files
    )
    if json_report is not None:
        Path(json_report).write_text(
            json.dumps(outcome.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if output_format == "json":
        print(json.dumps(outcome.as_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(outcome.render_text(), file=out)
    return outcome.exit_code


def render_rule_catalogue() -> str:
    """The ``--rules`` listing: every rule id with its one-line contract."""
    from repro.analysis.engine import all_rules

    lines = ["simlint rules:"]
    for rule in all_rules():
        lines.append(f"  {rule.id} [{rule.severity}]")
        lines.append(f"      {rule.description}")
        if rule.allow_modules:
            lines.append(f"      allowlisted: {', '.join(rule.allow_modules)}")
    lines.append("whole-program rules (require --project):")
    for project_rule in all_project_rules():
        lines.append(f"  {project_rule.id} [{project_rule.severity}]")
        lines.append(f"      {project_rule.description}")
    lines.append("meta rules (engine-level, not suppressible):")
    for rule_id, description in sorted(META_RULES.items()):
        lines.append(f"  {rule_id}: {description}")
    return "\n".join(lines)
