"""Analysis tooling: post-run scoring and the ``simlint`` static checker.

Two unrelated-looking halves that answer the same question — *can this
run be trusted?* — at two different times:

* :mod:`repro.analysis.postrun` scores a **finished**
  :class:`~repro.core.simulation.Simulation` against ground truth the
  paper could not observe (TCG discovery precision/recall, cache
  duplication, fairness).  Its public names are re-exported here, so
  ``from repro.analysis import tcg_discovery_quality`` keeps working.
* :mod:`repro.analysis.engine` plus the ``rules_*`` modules are
  **simlint**: an AST-based static-analysis pass, run at review time
  over the source tree (``python -m repro lint``), that enforces the
  repo's determinism contract (all randomness through
  :class:`~repro.sim.random.RandomStreams`, no wall clock in simulated
  code), DES-kernel discipline (only kernel events are yielded from
  process bodies, no blocking calls) and the
  :class:`~repro.core.config.SimulationConfig` field contracts.

See ``docs/ANALYSIS.md`` for the rule catalogue and the
pragma/baseline workflow.
"""

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.engine import (
    LintReport,
    LintRule,
    LintViolation,
    ModuleSource,
    all_rules,
    lint_paths,
    lint_source,
    rule_registry,
)
from repro.analysis.postrun import (
    DiscoveryQuality,
    cache_duplication,
    cache_overlap_matrix,
    group_distinct_items,
    jain_fairness,
    tcg_discovery_quality,
)

__all__ = [
    "Baseline",
    "DiscoveryQuality",
    "LintReport",
    "LintRule",
    "LintViolation",
    "ModuleSource",
    "all_rules",
    "cache_duplication",
    "cache_overlap_matrix",
    "fingerprint",
    "group_distinct_items",
    "jain_fairness",
    "lint_paths",
    "lint_source",
    "rule_registry",
    "tcg_discovery_quality",
]
