"""Observability rules: tracer/sampler APIs consume simulated time only.

The span tracer and the time-series sampler (:mod:`repro.obs`) timestamp
everything with kernel time — the tracer reads its bound ``env.now``, the
sampler runs as a kernel process.  A call site that feeds them a host
clock (``time.time()`` and friends) or any hand-rolled timestamp other
than ``env.now`` would produce timelines that cannot be reconciled with
the simulated run:

* ``obs-raw-time`` — a wall-clock call, or a timestamp keyword whose
  value is not ``.now``, passed into a tracer/sampler method.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.engine import LintRule, LintViolation, ModuleSource, register
from repro.analysis.rules_determinism import _WALL_CLOCK_CALLS

__all__ = ["ObsRawTimeRule"]

#: Keyword names that smell like a caller-supplied timestamp.
_TIME_KEYWORDS = frozenset(
    {"at", "now", "sim_time", "t", "time", "timestamp", "ts", "when"}
)


def _receiver_parts(node: ast.AST) -> List[str]:
    """The dotted-name parts of an attribute chain (lowercased)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr.lower())
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id.lower())
    return parts


def _is_observer_call(call: ast.Call) -> bool:
    """Whether the call's receiver chain names a tracer or sampler."""
    if not isinstance(call.func, ast.Attribute):
        return False
    receiver = _receiver_parts(call.func.value)
    return any("tracer" in part or "sampler" in part for part in receiver)


def _is_sim_time(node: ast.AST) -> bool:
    """Whether an expression reads simulated time (``<env>.now`` / ``now``)."""
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    return isinstance(node, ast.Name) and node.id == "now"


@register
class ObsRawTimeRule(LintRule):
    """Tracer/sampler timestamps come from the kernel, never the host."""

    id = "obs-raw-time"
    description = (
        "tracer/sampler APIs timestamp with kernel time; feeding them a "
        "wall-clock read or a hand-rolled timestamp produces timelines "
        "that cannot be reconciled with the simulated run"
    )
    hint = (
        "drop the timestamp (the bound tracer reads env.now itself) or "
        "pass env.now explicitly"
    )

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_observer_call(node):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                for inner in ast.walk(value):
                    if isinstance(inner, ast.Call):
                        name = module.qualified_name(inner.func)
                        if name in _WALL_CLOCK_CALLS:
                            yield self.violation(
                                module,
                                inner,
                                f"wall-clock call {name}() passed into a "
                                "tracer/sampler API",
                            )
            for keyword in node.keywords:
                if keyword.arg in _TIME_KEYWORDS and not _is_sim_time(
                    keyword.value
                ):
                    yield self.violation(
                        module,
                        keyword.value,
                        f"timestamp keyword {keyword.arg}= fed a value "
                        "other than env.now",
                    )
