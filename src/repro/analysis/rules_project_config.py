"""Whole-program config/Results field flow.

The per-file config rules check that *references* name real fields and
that fields carry a constructed-time contract (``config-field-unvalidated``
— validation is a single-file property of ``__post_init__``, so it stays
per-file).  What only a whole-program view can decide is whether a field
participates in the system at all:

* ``config-field-flow`` (warning) —
  a ``SimulationConfig``/``Results`` field that no module outside its
  defining one ever reads (attribute access or string-literal mention:
  ``getattr``/``as_dict``/sampler column names all count), or a field
  absent from the operator-facing docs (``DESIGN.md`` and
  ``EXPERIMENTS.md``): a knob nobody can discover, or a metric nobody
  reports, is drift between code and paper.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro.analysis.engine import (
    LintViolation,
    ProjectRule,
    register_project,
)
from repro.analysis.project.index import ClassInfo, ProjectIndex

__all__ = ["ConfigFieldFlowRule"]

#: Docs a field must be mentioned in (relative to the project root).
_DOC_FILES = ("DESIGN.md", "EXPERIMENTS.md")


def _class_fields(info: ClassInfo) -> List[Tuple[str, ast.AnnAssign]]:
    """(name, node) of every dataclass field (ClassVar excluded)."""
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for node in info.node.body:
        if not (isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name)):
            continue
        annotation = node.annotation
        head = ""
        if isinstance(annotation, ast.Subscript) and isinstance(
            annotation.value, ast.Name
        ):
            head = annotation.value.id
        elif isinstance(annotation, ast.Name):
            head = annotation.id
        if head == "ClassVar":
            continue
        fields.append((node.target.id, node))
    return fields


def _word_mentions(text: str, words: Set[str]) -> Set[str]:
    """Which of ``words`` appear as whole words in ``text``."""
    found: Set[str] = set()
    for match in re.finditer(r"[A-Za-z_][A-Za-z0-9_]*", text):
        token = match.group(0)
        if token in words:
            found.add(token)
    return found


@register_project
class ConfigFieldFlowRule(ProjectRule):
    """Every config knob and result metric must be read and documented."""

    id = "config-field-flow"
    severity = "warning"
    description = (
        "a SimulationConfig/Results field nobody reads is a dead knob (a "
        "silently ignored setting), and one missing from DESIGN.md/"
        "EXPERIMENTS.md cannot be discovered by operators"
    )
    hint = (
        "wire the field into the code path that should consume it (or "
        "delete it), and add it to the reference tables in DESIGN.md / "
        "EXPERIMENTS.md"
    )

    #: Class bare names whose fields are under contract.
    _CLASSES = ("SimulationConfig", "Results")

    def check(self, project: ProjectIndex) -> Iterator[LintViolation]:
        docs_text = "\n".join(
            text
            for relative in _DOC_FILES
            if (text := project.read_doc(relative)) is not None
        )
        for class_name in self._CLASSES:
            for info in project.classes_named(class_name):
                yield from self._check_class(project, info, docs_text)

    def _check_class(
        self, project: ProjectIndex, info: ClassInfo, docs_text: str
    ) -> Iterator[LintViolation]:
        fields = _class_fields(info)
        if not fields:
            return
        names = {name for name, _node in fields}
        read: Set[str] = set()
        for module in project.modules.values():
            if module.module == info.module:
                continue  # reads in the defining module don't count
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute) and node.attr in names:
                    read.add(node.attr)
                elif (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value in names
                ):
                    read.add(node.value)
        documented = _word_mentions(docs_text, names) if docs_text else set()
        module = project.modules[info.module]
        for name, node in sorted(fields, key=lambda item: item[1].lineno):
            if name not in read:
                yield self.violation(
                    module,
                    node,
                    f"{info.name} field {name!r} is never read outside "
                    f"{info.module} — a dead knob",
                )
            if docs_text and name not in documented:
                yield self.violation(
                    module,
                    node,
                    f"{info.name} field {name!r} is absent from "
                    + " and ".join(_DOC_FILES),
                )
