"""Policy-registry rules: strategies come from the registry, not ``new``.

PR 8 moved every strategy choice (admission, replacement, discovery,
peer-scoring) behind the string-keyed registry in
:mod:`repro.policies.registry`.  A call site that constructs a policy
class directly bypasses the registry — it dodges the conformance battery,
ignores the config's ``*_policy`` overrides, and silently diverges from
what ``repro policies list`` advertises.  The rule flags every direct
constructor call outside the policy modules themselves (which define and
wrap the classes) and the legacy core modules that still house the
wrapped originals.  Tests and tools are not linted, so unit tests may
construct policies directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import LintRule, LintViolation, ModuleSource, register

__all__ = ["PolicyDirectInstantiationRule"]

#: Policy classes that must be reached through the registry factories.
_POLICY_CLASS_NAMES = frozenset(
    {
        # legacy originals (wrapped by the registry builders)
        "AdmissionControl",
        "CooperativeReplacement",
        # registered admission policies
        "AlwaysAdmit",
        "GroCoCaAdmission",
        "ProbCacheAdmission",
        "LeaveCopyDownAdmission",
        # registered replacement policies
        "LRUReplacement",
        "GroCoCaReplacement",
        "LRUMinReplacement",
        "GreedyDualReplacement",
        "PopularityRankReplacement",
    }
)


@register
class PolicyDirectInstantiationRule(LintRule):
    """Policy classes are constructed by their registered builders only."""

    id = "policy-direct-instantiation"
    description = (
        "a directly constructed policy bypasses the registry: config "
        "*_policy overrides are ignored and the conformance battery "
        "never sees the call site"
    )
    hint = (
        "resolve through repro.policies.factory (build_admission / "
        "build_replacement) or registry.resolve(namespace, key)"
    )
    allow_modules = (
        "repro.policies.admission",
        "repro.policies.replacement",
        "repro.core.admission",
        "repro.core.replacement",
    )

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            else:
                continue
            if name in _POLICY_CLASS_NAMES:
                yield self.violation(
                    module,
                    node,
                    f"direct construction of policy class {name!r}",
                )
