"""Transitive DES-kernel discipline: hazards in reachable helpers.

The per-file kernel rules stop at the process body's own statements —
moving a blocking call into a helper function was an escape hatch.  This
rule closes it: it computes the set of functions reachable (through the
conservative call graph) from any kernel root — a process generator or a
scheduler dispatch method (``run``/``step`` on an ``*Environment``
class) — and promotes the per-file hazards into them:

* a **blocking call** anywhere in a reachable helper;
* a **wall-clock read** in a reachable helper whose module the per-file
  ``no-wall-clock`` rule allowlists (the promotion matters exactly
  there: profiling code is fine until the kernel can reach it);
* **interprocedural set iteration** — a call site passes a provably-set
  argument and the reachable callee iterates that parameter (hash order
  flows into simulated behaviour across the call);
* a **per-event allocation** (comprehension, container display,
  ``list()``-family call) anywhere in a helper reachable from a
  dispatch method — the dispatch loop pays it at event rate.

All four report under one id, ``kernel-transitive-hazard``, with the
kind spelled out in the message.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import (
    LintViolation,
    ModuleSource,
    ProjectRule,
    register_project,
)
from repro.analysis.project.callgraph import CallGraph, build_call_graph
from repro.analysis.project.index import FunctionInfo, ProjectIndex
from repro.analysis.rules_determinism import (
    _WALL_CLOCK_CALLS,
    NoWallClockRule,
    _is_set_expression,
    _set_bindings,
)
from repro.analysis.rules_kernel import (
    _ALLOCATING_BUILTINS,
    _BLOCKING_BUILTINS,
    _BLOCKING_QUALIFIED_PREFIXES,
    _own_nodes,
    _references_env,
)

__all__ = ["KernelTransitiveHazardRule"]


def _is_process_generator(function: FunctionInfo) -> bool:
    node = function.node
    yields = [
        n for n in _own_nodes(node) if isinstance(n, (ast.Yield, ast.YieldFrom))
    ]
    return bool(yields) and _references_env(node)


def _is_dispatch_method(function: FunctionInfo) -> bool:
    return (
        function.class_name is not None
        and "Environment" in function.class_name
        and function.name in ("run", "step")
    )


def _positional_params(function: FunctionInfo) -> List[str]:
    args = function.node.args
    names = [a.arg for a in [*args.posonlyargs, *args.args]]
    if function.is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


@register_project
class KernelTransitiveHazardRule(ProjectRule):
    """Kernel discipline must hold in every reachable helper."""

    id = "kernel-transitive-hazard"
    description = (
        "a helper reachable from the event loop inherits the kernel's "
        "discipline: no blocking calls, no wall clock, no hash-ordered "
        "iteration, no per-event allocation on the dispatch path"
    )
    hint = (
        "hoist the hazard out of the kernel-reachable path, or excuse a "
        "deliberate one with # simlint: allow[kernel-transitive-hazard] "
        "reason=..."
    )

    def check(self, project: ProjectIndex) -> Iterator[LintViolation]:
        graph = build_call_graph(project)
        process_roots = {
            f.qualname for f in project.functions.values() if _is_process_generator(f)
        }
        dispatch_roots = {
            f.qualname for f in project.functions.values() if _is_dispatch_method(f)
        }
        reachable = graph.reachable(process_roots | dispatch_roots)
        dispatch_reachable = graph.reachable(dispatch_roots)

        for qualname in sorted(reachable):
            function = project.functions.get(qualname)
            if function is None:
                continue
            module = project.modules[function.module]
            in_process_root = qualname in process_roots
            if not in_process_root:
                yield from self._blocking(module, function)
                yield from self._wall_clock(module, function)
            if qualname in dispatch_reachable and qualname not in dispatch_roots:
                yield from self._allocations(module, function)
        yield from self._set_flow(project, graph, reachable)

    # -- hazard kinds ---------------------------------------------------------

    def _blocking(
        self, module: ModuleSource, function: FunctionInfo
    ) -> Iterator[LintViolation]:
        for node in _own_nodes(function.node):
            if not isinstance(node, ast.Call):
                continue
            name = module.qualified_name(node.func)
            if name is not None and name.startswith(_BLOCKING_QUALIFIED_PREFIXES):
                yield self.violation(
                    module,
                    node,
                    f"blocking call to {name}() in {function.name}(), "
                    "reachable from the kernel",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _BLOCKING_BUILTINS
                and node.func.id not in module.imports
            ):
                yield self.violation(
                    module,
                    node,
                    f"blocking call to {node.func.id}() in {function.name}(), "
                    "reachable from the kernel",
                )

    def _wall_clock(
        self, module: ModuleSource, function: FunctionInfo
    ) -> Iterator[LintViolation]:
        if module.module not in NoWallClockRule.allow_modules:
            return  # the per-file rule already polices this module
        for node in _own_nodes(function.node):
            if not isinstance(node, ast.Call):
                continue
            name = module.qualified_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read {name}() in {function.name}() is "
                    "allowlisted per-file but reachable from the kernel",
                )

    def _allocations(
        self, module: ModuleSource, function: FunctionInfo
    ) -> Iterator[LintViolation]:
        for node in _own_nodes(function.node):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                yield self.violation(
                    module,
                    node,
                    f"comprehension in {function.name}() allocates on the "
                    "dispatch path (paid per event)",
                )
            elif isinstance(node, (ast.List, ast.Set, ast.Dict)):
                kind = type(node).__name__.lower()
                yield self.violation(
                    module,
                    node,
                    f"{kind} display in {function.name}() allocates on the "
                    "dispatch path (paid per event)",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ALLOCATING_BUILTINS
                and node.func.id not in module.imports
            ):
                yield self.violation(
                    module,
                    node,
                    f"{node.func.id}() call in {function.name}() allocates "
                    "on the dispatch path (paid per event)",
                )

    def _set_flow(
        self,
        project: ProjectIndex,
        graph: CallGraph,
        reachable: Set[str],
    ) -> Iterator[LintViolation]:
        # (callee, param) pairs fed a provably-set argument somewhere.
        tainted: Dict[Tuple[str, str], str] = {}
        for qualname in sorted(reachable):
            callee = project.functions.get(qualname)
            if callee is None:
                continue
            params = _positional_params(callee)
            for site in graph.call_sites(qualname):
                caller_sets = (
                    _set_bindings(site.caller.node) if site.caller is not None else {}
                )
                for position, argument in enumerate(site.call.args):
                    if position >= len(params):
                        break
                    if _is_set_expression(argument) or (
                        isinstance(argument, ast.Name) and argument.id in caller_sets
                    ):
                        tainted.setdefault(
                            (qualname, params[position]),
                            site.module.display_path,
                        )
                for keyword in site.call.keywords:
                    if keyword.arg is None or keyword.arg not in params:
                        continue
                    if _is_set_expression(keyword.value) or (
                        isinstance(keyword.value, ast.Name)
                        and keyword.value.id in caller_sets
                    ):
                        tainted.setdefault(
                            (qualname, keyword.arg), site.module.display_path
                        )
        for (qualname, param), caller_path in sorted(tainted.items()):
            callee = project.functions[qualname]
            module = project.modules[callee.module]
            for node in _own_nodes(callee.node):
                if (
                    isinstance(node, (ast.For, ast.AsyncFor))
                    and isinstance(node.iter, ast.Name)
                    and node.iter.id == param
                ):
                    yield self.violation(
                        module,
                        node.iter,
                        f"{callee.name}() iterates parameter {param!r}, "
                        f"which receives a set from {caller_path} — hash "
                        "order reaches the kernel",
                    )
