"""Post-run analysis of a finished :class:`~repro.core.simulation.Simulation`.

The simulator knows things a real deployment would not — the true motion
groups, every cache's contents — so a run can be scored in ways the paper
could not report:

* :func:`tcg_discovery_quality` — precision/recall of the discovered TCG
  pairs against the ground-truth motion groups,
* :func:`cache_duplication` / :func:`group_distinct_items` — how well the
  cooperative cache management suppresses replicas inside groups,
* :func:`cache_overlap_matrix` — pairwise Jaccard similarity of cache
  contents,
* :func:`jain_fairness` — fairness of any per-client series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.core.simulation import Simulation

__all__ = [
    "DiscoveryQuality",
    "cache_duplication",
    "cache_overlap_matrix",
    "group_distinct_items",
    "jain_fairness",
    "tcg_discovery_quality",
]


@dataclass(frozen=True)
class DiscoveryQuality:
    """Pairwise precision/recall of TCG discovery vs true motion groups."""

    true_pairs: int
    discovered_pairs: int
    correct_pairs: int

    @property
    def precision(self) -> float:
        """Fraction of discovered pairs that are true same-group pairs."""
        if self.discovered_pairs == 0:
            return 0.0
        return self.correct_pairs / self.discovered_pairs

    @property
    def recall(self) -> float:
        """Fraction of same-group pairs the MSS discovered."""
        if self.true_pairs == 0:
            return 0.0
        return self.correct_pairs / self.true_pairs

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def tcg_discovery_quality(sim: Simulation) -> DiscoveryQuality:
    """Score the MSS's TCG pairs against the ground-truth motion groups."""
    if sim.tcg is None:
        raise ValueError("the simulation ran without TCG discovery (not GC)")
    member = sim.tcg.member
    groups = np.asarray(sim.group_of)
    same_group = groups[:, None] == groups[None, :]
    np.fill_diagonal(same_group, False)
    upper = np.triu(np.ones_like(member, dtype=bool), k=1)
    discovered = member & upper
    truth = same_group & upper
    return DiscoveryQuality(
        true_pairs=int(truth.sum()),
        discovered_pairs=int(discovered.sum()),
        correct_pairs=int((discovered & truth).sum()),
    )


def _group_caches(sim: Simulation) -> Dict[int, List[Set[int]]]:
    groups: Dict[int, List[Set[int]]] = {}
    for index, group in enumerate(sim.group_of):
        groups.setdefault(group, []).append(set(sim.clients[index].cache.items()))
    return groups


def group_distinct_items(sim: Simulation) -> Dict[int, int]:
    """Distinct items currently cached per motion group."""
    return {
        group: len(set().union(*caches))
        for group, caches in _group_caches(sim).items()
    }


def cache_duplication(sim: Simulation) -> float:
    """Mean (cached copies / distinct items) across groups; 1 = no replicas."""
    factors = []
    for caches in _group_caches(sim).values():
        copies = sum(len(cache) for cache in caches)
        distinct = len(set().union(*caches))
        if distinct:
            factors.append(copies / distinct)
    return float(np.mean(factors)) if factors else 0.0


def cache_overlap_matrix(sim: Simulation) -> np.ndarray:
    """(N, N) Jaccard similarity of cache contents (diagonal = 1)."""
    contents = [set(client.cache.items()) for client in sim.clients]
    n = len(contents)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            union = len(contents[i] | contents[j])
            jaccard = len(contents[i] & contents[j]) / union if union else 0.0
            matrix[i, j] = matrix[j, i] = jaccard
    return matrix


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly fair, 1/n = maximally unfair."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("need at least one value")
    total = array.sum()
    squares = (array**2).sum()
    if squares == 0:
        return 1.0
    return float(total * total / (array.size * squares))
