"""The simlint rule engine: sources, rules, pragmas, reports.

The engine is deliberately small: a :class:`ModuleSource` wraps one
parsed file (source text, AST, an import-alias table for resolving
dotted names like ``np.random.default_rng`` back to
``numpy.random.default_rng``); a :class:`LintRule` walks the AST and
yields structured :class:`LintViolation` records; :func:`lint_source`
applies every registered rule to one module and then the pragma layer;
:func:`lint_paths` walks a source tree and aggregates a
:class:`LintReport`.

Suppression happens at two levels, both audited:

* ``# simlint: allow[rule-id] reason=...`` on the offending line (or
  ``allow-file`` anywhere, for the whole file).  The reason is
  **mandatory** — a pragma without one is itself a violation
  (``pragma-missing-reason``), as is a pragma naming an unknown rule
  (``pragma-unknown-rule``) or one that suppresses nothing
  (``pragma-unused``).
* the committed baseline (:mod:`repro.analysis.baseline`) grandfathers
  pre-existing findings so new code is gated strictly while old code is
  paid down incrementally.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:
    from repro.analysis.project.index import ProjectIndex

__all__ = [
    "LintReport",
    "LintRule",
    "LintViolation",
    "META_RULES",
    "ModuleSource",
    "ProjectRule",
    "all_project_rules",
    "all_rules",
    "apply_pragmas",
    "collect_findings",
    "display_path",
    "iter_python_files",
    "known_rule_ids",
    "lint_paths",
    "lint_source",
    "project_rule_registry",
    "register",
    "register_project",
    "rule_registry",
]


@dataclass(frozen=True)
class LintViolation:
    """One finding: rule id, location, message and a concrete fix hint.

    ``scope`` distinguishes per-file AST findings (``"file"``) from
    whole-program findings (``"project"``); the baseline fingerprints the
    two differently (project findings are anchored by message, not source
    line, because their anchor line often belongs to code that is only
    *related* to the defect).  ``start_line``/``end_line`` bound the
    pragma suppression window (0 means "same as ``line``"): a violation
    anchored on a multiline statement is suppressible from any of its
    lines, and one anchored on a decorated ``def`` from the decorator
    lines as well.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""
    severity: str = "error"
    scope: str = "file"
    start_line: int = 0
    end_line: int = 0

    @property
    def location(self) -> str:
        """``path:line:column`` — the clickable form used by reports."""
        return f"{self.path}:{self.line}:{self.column}"

    @property
    def suppression_window(self) -> Tuple[int, int]:
        """Inclusive line range an ``allow`` pragma may sit on."""
        start = self.start_line or self.line
        end = self.end_line or self.line
        return (min(start, self.line), max(end, self.line))

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the ``--format json`` payload rows)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "severity": self.severity,
            "scope": self.scope,
        }


class ModuleSource:
    """One parsed module: path, text, AST and an import-alias table.

    Parsing is lazy: the incremental cache (:mod:`repro.analysis.cache`)
    can satisfy a warm run from content hashes alone, so a module whose
    findings are cached never pays ``ast.parse``.
    """

    def __init__(self, path: Path, text: str, display_path: Optional[str] = None):
        self.path = Path(path)
        self.display_path = display_path or self.path.as_posix()
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.module = _module_name(self.path)
        self._parsed = False
        self._parse_error: Optional[SyntaxError] = None
        self._tree: Optional[ast.AST] = None
        self._imports: Optional[Dict[str, str]] = None

    def _ensure_parsed(self) -> None:
        if self._parsed:
            return
        self._parsed = True
        try:
            self._tree = ast.parse(self.text)
        except SyntaxError as error:
            self._parse_error = error
            self._tree = ast.Module(body=[], type_ignores=[])
        self._imports = _import_table(self._tree)

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        self._ensure_parsed()
        return self._parse_error

    @property
    def tree(self) -> ast.AST:
        self._ensure_parsed()
        assert self._tree is not None
        return self._tree

    @property
    def imports(self) -> Dict[str, str]:
        self._ensure_parsed()
        assert self._imports is not None
        return self._imports

    @classmethod
    def from_path(cls, path: Path, display_path: Optional[str] = None) -> "ModuleSource":
        return cls(path, Path(path).read_text(encoding="utf-8"), display_path)

    def source_line(self, line: int) -> str:
        """The stripped text of 1-indexed ``line`` ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to its imported dotted name.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the module did
        ``import numpy as np``; names that do not lead back to an import
        resolve to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)]) if parts else base


def _module_name(path: Path) -> str:
    """Dotted module name for a file under a ``repro`` package tree."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _import_table(tree: ast.AST) -> Dict[str, str]:
    """Map local aliases to the dotted names they import."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the top-level name ``a``.
                    top = alias.name.split(".")[0]
                    table[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


class LintRule:
    """Base class: subclass, set the class attributes, implement ``check``.

    ``allow_modules`` lists dotted module names (exact matches) where the
    rule never fires — the sanctioned homes of otherwise-forbidden
    constructs (e.g. :mod:`repro.sim.random` is the one place allowed to
    build numpy generators).
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""
    allow_modules: Tuple[str, ...] = ()

    def check(self, module: ModuleSource) -> Iterator[LintViolation]:
        raise NotImplementedError

    def applies_to(self, module: ModuleSource) -> bool:
        return module.module not in self.allow_modules

    def violation(
        self,
        module: ModuleSource,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> LintViolation:
        start, end = _suppression_window(node)
        return LintViolation(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
            severity=self.severity,
            start_line=start,
            end_line=end,
        )


def _suppression_window(node: ast.AST) -> Tuple[int, int]:
    """Lines an ``allow`` pragma may sit on for a finding anchored at ``node``.

    A ``def``/``class`` anchor accepts the pragma on any decorator line or
    header line (up to, not into, the body — a pragma inside the body
    belongs to body statements).  Any other anchor accepts it anywhere in
    the statement's physical extent, so multiline calls are suppressible
    from the closing-paren line too.
    """
    line = getattr(node, "lineno", 1)
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        start = min([line, *(d.lineno for d in node.decorator_list)])
        end = node.body[0].lineno - 1 if node.body else getattr(node, "end_lineno", line)
        return start, max(end, line)
    return line, getattr(node, "end_lineno", None) or line


_REGISTRY: Dict[str, Type[LintRule]] = {}
_PROJECT_REGISTRY: Dict[str, Type["ProjectRule"]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY or cls.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


class ProjectRule:
    """Base class for whole-program rules (``repro lint --project``).

    Unlike :class:`LintRule`, a project rule sees the whole
    :class:`~repro.analysis.project.index.ProjectIndex` at once and may
    anchor findings in any module.  Findings carry ``scope="project"`` so
    the baseline fingerprints them by message rather than source line.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""

    def check(self, project: "ProjectIndex") -> Iterator[LintViolation]:
        raise NotImplementedError

    def violation(
        self,
        module: ModuleSource,
        node: Optional[ast.AST],
        message: str,
        hint: Optional[str] = None,
    ) -> LintViolation:
        if node is None:
            line, column, window = 1, 1, (1, 1)
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0) + 1
            window = _suppression_window(node)
        return LintViolation(
            rule=self.id,
            path=module.display_path,
            line=line,
            column=column,
            message=message,
            hint=self.hint if hint is None else hint,
            severity=self.severity,
            scope="project",
            start_line=window[0],
            end_line=window[1],
        )


def register_project(cls: Type["ProjectRule"]) -> Type["ProjectRule"]:
    """Class decorator adding a whole-program rule to the registry."""
    if not cls.id:
        raise ValueError(f"project rule {cls.__name__} has no id")
    if cls.id in _PROJECT_REGISTRY or cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _PROJECT_REGISTRY[cls.id] = cls
    return cls


#: Engine-level findings about the suppression machinery itself.  They are
#: not suppressible (a pragma cannot vouch for another pragma).
META_RULES: Dict[str, str] = {
    "parse-error": "the file does not parse; nothing else was checked",
    "pragma-missing-reason": "allow pragmas must carry reason=...",
    "pragma-unknown-rule": "allow pragmas must name registered rules",
    "pragma-unused": "allow pragmas must suppress at least one finding",
}


def rule_registry() -> Dict[str, Type[LintRule]]:
    """The registered AST rules by id (imports the rule modules)."""
    # Imported here, not at module top, to avoid a cycle: rule modules
    # import this module for the base class and the register decorator.
    from repro.analysis import (  # noqa: F401
        rules_config,
        rules_determinism,
        rules_kernel,
        rules_obs,
        rules_policy,
        rules_retry,
    )

    return dict(_REGISTRY)


def project_rule_registry() -> Dict[str, Type["ProjectRule"]]:
    """The registered whole-program rules by id (imports the rule modules)."""
    from repro.analysis import (  # noqa: F401
        rules_project_config,
        rules_project_kernel,
        rules_project_registry,
        rules_project_rng,
    )

    return dict(_PROJECT_REGISTRY)


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [cls() for _, cls in sorted(rule_registry().items())]


def all_project_rules() -> List["ProjectRule"]:
    """Fresh instances of every whole-program rule, sorted by id."""
    return [cls() for _, cls in sorted(project_rule_registry().items())]


def known_rule_ids() -> Set[str]:
    """Every id a pragma may legally name (AST + project + meta rules)."""
    return set(rule_registry()) | set(project_rule_registry()) | set(META_RULES)


# -- pragmas -----------------------------------------------------------------

_PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*(?P<scope>allow-file|allow)\[(?P<rules>[^\]]*)\](?P<rest>.*)$"
)
_REASON_RE = re.compile(r"\breason\s*=\s*\S")


@dataclass
class _Pragma:
    line: int
    scope: str  # "allow" or "allow-file"
    rules: List[str]
    has_reason: bool
    used: bool = False


def _comment_tokens(module: ModuleSource) -> Iterator[Tuple[int, str]]:
    """(line, text) of every real comment — string literals that merely
    *mention* a pragma (docs, hints) must not activate one."""
    import io
    import tokenize

    try:
        for token in tokenize.generate_tokens(io.StringIO(module.text).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return


def _parse_pragmas(module: ModuleSource) -> List[_Pragma]:
    pragmas: List[_Pragma] = []
    for number, text in _comment_tokens(module):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = [r.strip() for r in match.group("rules").split(",") if r.strip()]
        pragmas.append(
            _Pragma(
                line=number,
                scope=match.group("scope"),
                rules=rules,
                has_reason=bool(_REASON_RE.search(match.group("rest"))),
            )
        )
    return pragmas


def _meta_violation(
    module: ModuleSource, rule: str, line: int, message: str, hint: str = ""
) -> LintViolation:
    return LintViolation(
        rule=rule,
        path=module.display_path,
        line=line,
        column=1,
        message=message,
        hint=hint,
    )


def collect_findings(
    module: ModuleSource, rules: Optional[Sequence[LintRule]] = None
) -> List[LintViolation]:
    """Raw per-file findings, before the pragma layer (cacheable)."""
    if module.parse_error is not None:
        line = module.parse_error.lineno or 1
        return [
            _meta_violation(
                module,
                "parse-error",
                line,
                f"syntax error: {module.parse_error.msg}",
            )
        ]
    found: List[LintViolation] = []
    seen: Set[LintViolation] = set()
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(module):
            continue
        for violation in rule.check(module):
            # Overlapping detection sites (e.g. a dict checked both by
            # naming convention and through a ** spread) may report the
            # same finding twice; keep the first.
            if violation not in seen:
                seen.add(violation)
                found.append(violation)
    return found


def apply_pragmas(
    module: ModuleSource,
    found: Sequence[LintViolation],
    project: bool = False,
) -> List[LintViolation]:
    """Suppress ``found`` through the module's pragmas and audit them.

    Applied exactly once per module over the *merged* per-file and
    project-scope findings, so a pragma whose only job is excusing a
    whole-program finding still counts as used.  ``project`` states
    whether whole-program findings are part of ``found``: in a file-only
    run a pragma naming only project rules is exempt from the
    ``pragma-unused`` audit (its findings were never computed).
    """
    if module.parse_error is not None:
        return sorted(found, key=lambda v: (v.line, v.column, v.rule))
    pragmas = _parse_pragmas(module)
    known = known_rule_ids()
    results: List[LintViolation] = []
    for pragma in pragmas:
        if not pragma.has_reason:
            results.append(
                _meta_violation(
                    module,
                    "pragma-missing-reason",
                    pragma.line,
                    "allow pragma without a reason",
                    hint="write # simlint: allow[rule] reason=<why this is safe>",
                )
            )
        for rule_id in pragma.rules:
            if rule_id not in known:
                results.append(
                    _meta_violation(
                        module,
                        "pragma-unknown-rule",
                        pragma.line,
                        f"allow pragma names unknown rule {rule_id!r}",
                        hint="run 'repro lint --rules' for the rule catalogue",
                    )
                )
            elif rule_id in META_RULES:
                results.append(
                    _meta_violation(
                        module,
                        "pragma-unknown-rule",
                        pragma.line,
                        f"meta rule {rule_id!r} cannot be suppressed by pragma",
                    )
                )

    for violation in found:
        if _suppressed(violation, pragmas):
            continue
        results.append(violation)

    project_ids = set(project_rule_registry())
    for pragma in pragmas:
        if pragma.has_reason and not pragma.used and all(r in known for r in pragma.rules):
            if not project and pragma.rules and all(
                r in project_ids for r in pragma.rules
            ):
                continue
            results.append(
                _meta_violation(
                    module,
                    "pragma-unused",
                    pragma.line,
                    f"allow pragma for {', '.join(pragma.rules) or '(nothing)'} "
                    "suppressed no finding",
                    hint="delete the pragma; the code it excused is gone",
                )
            )
    results.sort(key=lambda v: (v.line, v.column, v.rule))
    return results


def lint_source(
    module: ModuleSource, rules: Optional[Sequence[LintRule]] = None
) -> List[LintViolation]:
    """Apply every rule plus the pragma layer to one module."""
    return apply_pragmas(module, collect_findings(module, rules))


def _suppressed(violation: LintViolation, pragmas: List[_Pragma]) -> bool:
    if violation.rule in META_RULES:
        return False
    start, end = violation.suppression_window
    for pragma in pragmas:
        if violation.rule not in pragma.rules:
            continue
        if pragma.scope == "allow-file" or start <= pragma.line <= end:
            pragma.used = True
            return True
    return False


# -- tree walking ------------------------------------------------------------


@dataclass
class LintReport:
    """Everything one ``repro lint`` invocation found."""

    violations: List[LintViolation] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        return {
            "files_checked": len(self.files),
            "violation_count": len(self.violations),
            "counts_by_rule": self.counts_by_rule(),
            "violations": [v.as_dict() for v in self.violations],
        }


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def display_path(path: Path) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path], rules: Optional[Sequence[LintRule]] = None
) -> LintReport:
    """Lint every Python file under ``paths`` and aggregate the findings."""
    rules = list(rules) if rules is not None else all_rules()
    report = LintReport()
    for file_path in iter_python_files(paths):
        module = ModuleSource.from_path(file_path, display_path(file_path))
        report.files.append(module.display_path)
        report.violations.extend(lint_source(module, rules))
    report.violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return report
