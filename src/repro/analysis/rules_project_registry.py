"""Registry/docs/conformance three-way consistency.

Five policy namespaces resolve by string key (docs/POLICIES.md); the
key surface lives in three places that can silently drift apart: the
``@register``/``register_value`` calls in the code, the operator-facing
catalogue in ``docs/POLICIES.md``, and the conformance battery (which
covers exactly the keys the registry's ``_load_builtins`` imports make
visible).  ``registry-consistency`` checks all three against each other:

* **registered-but-undocumented** — a key registered in code that
  ``docs/POLICIES.md`` never mentions in backticks;
* **documented-but-unregistered** — a catalogue-table key with no
  registration site in the code;
* **registered-but-unreachable** — a registration in a module the
  registry's ``_load_builtins`` import closure never reaches, so
  ``conformance_keys()`` cannot see it and the battery never runs it;
* when the *real* registry is in the linted file set, the static scan is
  additionally cross-checked against the runtime registry
  (:mod:`repro.policies.introspection`) in both directions.

The scan is static (string-literal namespaces/keys), so it works on
lint fixtures that ship their own miniature registry; dynamic
registrations with computed keys are invisible to it — the runtime
cross-check is what catches those drifting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import (
    LintViolation,
    ModuleSource,
    ProjectRule,
    register_project,
)
from repro.analysis.project.index import ProjectIndex

__all__ = ["RegistryConsistencyRule"]


@dataclass
class _Registration:
    """One static ``register``/``register_value`` site."""

    namespace: str
    key: str
    module: ModuleSource
    anchor: ast.AST  # the decorated def, or the call itself


def _string_tuple(value: ast.expr) -> List[str]:
    if not isinstance(value, (ast.Tuple, ast.List)):
        return []
    items: List[str] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            items.append(element.value)
    return items


def _find_registry_module(
    project: ProjectIndex,
) -> Tuple[Optional[ModuleSource], Tuple[str, ...]]:
    """The module defining NAMESPACES + _load_builtins, and its namespaces."""
    for module in project.modules.values():
        namespaces: List[str] = []
        has_loader = False
        for node in getattr(module.tree, "body", []):
            if isinstance(node, ast.FunctionDef) and node.name == "_load_builtins":
                has_loader = True
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if (
                isinstance(target, ast.Name)
                and target.id == "NAMESPACES"
                and value is not None
            ):
                namespaces = _string_tuple(value)
        if has_loader and namespaces:
            return module, tuple(namespaces)
    return None, ()


def _registration_call(call: ast.Call, module: ModuleSource) -> Optional[Tuple[str, str]]:
    """(namespace, key) if this call is a literal register/register_value."""
    func = call.func
    bare = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else ""
    )
    if bare not in ("register", "register_value"):
        return None
    dotted = module.qualified_name(func)
    if dotted is not None and not dotted.endswith((".register", ".register_value")):
        return None
    if len(call.args) < 2:
        return None
    namespace_arg, key_arg = call.args[0], call.args[1]
    if not (
        isinstance(namespace_arg, ast.Constant)
        and isinstance(namespace_arg.value, str)
        and isinstance(key_arg, ast.Constant)
        and isinstance(key_arg.value, str)
    ):
        return None
    return namespace_arg.value, key_arg.value


def _collect_registrations(
    project: ProjectIndex, namespaces: Tuple[str, ...]
) -> List[_Registration]:
    found: List[_Registration] = []
    for module in project.modules.values():
        decorator_calls: Set[int] = set()
        # Decorator registrations anchor at the decorated definition, so
        # the allow pragma sits on the def (or its decorators).
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                pair = _registration_call(decorator, module)
                if pair is not None and pair[0] in namespaces:
                    decorator_calls.add(id(decorator))
                    found.append(_Registration(pair[0], pair[1], module, node))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or id(node) in decorator_calls:
                continue
            pair = _registration_call(node, module)
            if pair is not None and pair[0] in namespaces:
                found.append(_Registration(pair[0], pair[1], module, node))
    return found


def _loader_import_closure(
    project: ProjectIndex, registry_module: ModuleSource
) -> Set[str]:
    """Modules reachable from ``_load_builtins`` via in-project imports."""

    def imports_of(module: ModuleSource, root: Optional[ast.AST] = None) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(root if root is not None else module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                names.add(node.module)
                for alias in node.names:
                    names.add(f"{node.module}.{alias.name}")
        return {name for name in names if name in project.modules}

    loader = next(
        (
            node
            for node in getattr(registry_module.tree, "body", [])
            if isinstance(node, ast.FunctionDef) and node.name == "_load_builtins"
        ),
        None,
    )
    if loader is None:
        return set()
    closure: Set[str] = set()
    frontier = imports_of(registry_module, loader)
    while frontier:
        name = frontier.pop()
        if name in closure:
            continue
        closure.add(name)
        frontier |= imports_of(project.modules[name]) - closure
    return closure


@register_project
class RegistryConsistencyRule(ProjectRule):
    """Registered, documented and battery-covered keys must agree."""

    id = "registry-consistency"
    description = (
        "the policy key surface lives in three places — register() calls, "
        "the docs/POLICIES.md catalogue, and the conformance battery's "
        "import closure — and any pairwise drift means an invisible, "
        "undocumented or untested policy"
    )
    hint = (
        "register the key, add it to the docs/POLICIES.md catalogue, and "
        "make sure _load_builtins imports its module"
    )

    def check(self, project: ProjectIndex) -> Iterator[LintViolation]:
        registry_module, namespaces = _find_registry_module(project)
        if registry_module is None:
            return
        registrations = _collect_registrations(project, namespaces)
        doc_text = project.read_doc("docs/POLICIES.md") or ""

        from repro.policies.introspection import (
            documented_keys,
            parse_catalogue_rows,
        )

        documented = documented_keys(doc_text) if doc_text else set()
        catalogue = parse_catalogue_rows(doc_text, namespaces) if doc_text else []
        registered_pairs = {(r.namespace, r.key) for r in registrations}

        if doc_text:
            for registration in registrations:
                if registration.key not in documented:
                    yield self.violation(
                        registration.module,
                        registration.anchor,
                        f"{registration.namespace} policy "
                        f"{registration.key!r} is registered but never "
                        "mentioned in docs/POLICIES.md",
                    )
            for namespace, key in sorted(set(catalogue)):
                if (namespace, key) not in registered_pairs:
                    yield self.violation(
                        registry_module,
                        None,
                        f"docs/POLICIES.md documents {namespace} policy "
                        f"{key!r} but no register() site exists for it",
                    )

        closure = _loader_import_closure(project, registry_module)
        for registration in registrations:
            module_name = registration.module.module
            if module_name == registry_module.module or module_name in closure:
                continue
            yield self.violation(
                registration.module,
                registration.anchor,
                f"{registration.namespace} policy {registration.key!r} is "
                f"registered in {module_name}, which _load_builtins never "
                "imports — conformance_keys() cannot cover it",
            )

        if registry_module.module == "repro.policies.registry":
            yield from self._runtime_cross_check(
                project, registry_module, registered_pairs
            )

    def _runtime_cross_check(
        self,
        project: ProjectIndex,
        registry_module: ModuleSource,
        registered_pairs: Set[Tuple[str, str]],
    ) -> Iterator[LintViolation]:
        try:
            from repro.policies.introspection import registered_policies

            runtime: Dict[str, List[str]] = registered_policies()
        except Exception:  # pragma: no cover - import errors surface elsewhere
            return
        runtime_pairs = {
            (namespace, key)
            for namespace, keys in runtime.items()
            for key in keys
        }
        for namespace, key in sorted(runtime_pairs - registered_pairs):
            yield self.violation(
                registry_module,
                None,
                f"{namespace} policy {key!r} exists at runtime but no "
                "literal register() site was found — dynamic registration "
                "defeats the static consistency checks",
            )
        for namespace, key in sorted(registered_pairs - runtime_pairs):
            yield self.violation(
                registry_module,
                None,
                f"{namespace} policy {key!r} has a register() site but is "
                "missing from the runtime registry — the registration "
                "never executes",
            )
