"""Process-oriented discrete-event simulation kernel.

A small, fast, dependency-free kernel in the style of CSIM/simpy:

* :class:`Environment` owns the clock and the event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a generator; ``yield event`` suspends the process
  until the event fires and resumes it with the event's value.
* :class:`Timeout` fires after a fixed delay.
* :class:`AnyOf` / :class:`AllOf` compose events (used e.g. for the COCA
  reply-or-timeout race).

The kernel is deterministic: simultaneous events fire in schedule order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yielding non-events, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives the interrupt at its current yield
    point and may catch it to handle premature wake-up (e.g. a client being
    forced offline mid-wait).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that can carry a value or an exception.

    Processes wait on events by yielding them.  An event is *triggered* by
    :meth:`succeed` or :meth:`fail`; its callbacks run when the kernel pops
    it off the heap at the trigger time.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = _PENDING
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event fired successfully (no exception)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every waiting process.  If no process
        waits, it surfaces from :meth:`Environment.run` unless
        :meth:`defuse` was called.
        """
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exception = exception
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run inline at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        had_waiter = False
        for callback in callbacks or ():
            had_waiter = True
            callback(self)
        if self._exception is not None and not had_waiter and not self._defused:
            raise self._exception


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay)


class Process(Event):
    """A running generator.  As an Event, it fires when the generator ends.

    The value of the process-event is the generator's return value; an
    uncaught exception inside the generator fails the process-event.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError("Process requires a generator")
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick-start at the current time.
        bootstrap = Event(env)
        bootstrap._state = _TRIGGERED
        bootstrap.add_callback(self._resume)
        env._schedule(bootstrap)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt an unstarted process")
        waited = self._waiting_on
        if waited.callbacks is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        wakeup = Event(self.env)
        wakeup._exception = Interrupt(cause)
        wakeup._state = _TRIGGERED
        wakeup._defused = True
        wakeup.add_callback(self._resume)
        self.env._schedule(wakeup)

    def _resume(self, fired: Event) -> None:
        self._waiting_on = None
        while True:
            try:
                if fired._exception is not None:
                    fired._defused = True
                    target = self.generator.throw(fired._exception)
                else:
                    target = self.generator.send(fired._value)
            except StopIteration as stop:
                if self._state == _PENDING:
                    self.succeed(stop.value)
                return
            except BaseException as exc:  # must fail the process, whatever died
                if self._state == _PENDING:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                self.generator.close()
                if self._state == _PENDING:
                    self.fail(SimulationError(f"process yielded a non-event: {target!r}"))
                return
            if target._state == _PROCESSED:
                # Already fired: resume immediately without a heap trip.
                fired = target
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return


class _Condition(Event):
    """Base for AnyOf/AllOf: fires once ``_check`` is satisfied."""

    __slots__ = ("events", "_fired_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._fired_count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._state == _PROCESSED:
                self._on_fire(event)
            else:
                event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._state != _PENDING:
            if event._exception is not None:
                event._defused = True
            return
        if event._exception is not None:
            event._defused = True
            self.fail(event._exception)
            return
        self._fired_count += 1
        if self.env.monitor is not None:
            self.env.monitor.on_condition_fire(self)
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event._value for event in self.events if event._state == _PROCESSED
        }

    def _check_count(self, needed: int) -> bool:
        return self._fired_count >= needed


class AnyOf(_Condition):
    """Fires when any of the given events fires.

    Value: ``{event: value}`` for the events fired so far.
    """

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count >= 1


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count >= len(self.events)


class Environment:
    """The simulation clock and scheduler.

    ``monitor`` optionally attaches a
    :class:`~repro.check.monitor.InvariantMonitor`: every heap push and
    pop is then reported through ``on_schedule`` / ``on_step`` (event-time
    monotonicity, heap bookkeeping).  Without a monitor the hot path pays
    a single attribute test per event and behaves bit-identically.
    """

    def __init__(self, initial_time: float = 0.0, monitor: Any = None) -> None:
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._seq = 0
        #: Events processed (heap pops) since creation; read by the profiler.
        self.events_processed = 0
        #: Optional invariant oracle (duck-typed; see repro.check.monitor).
        self.monitor = monitor

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        """Scheduled-but-unprocessed events (heap size); read by samplers."""
        return len(self._heap)

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        when = self._now + delay
        heapq.heappush(self._heap, (when, self._seq, event))
        if self.monitor is not None:
            self.monitor.on_schedule(self, when)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the next event.  Raises SimulationError when idle."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _seq, event = heapq.heappop(self._heap)
        if self.monitor is not None:
            self.monitor.on_step(self, when)
        self._now = when
        self.events_processed += 1
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or the clock reaches ``until``."""
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self._now})"
                )
            while self._heap and self._heap[0][0] <= until:
                self.step()
            self._now = max(self._now, until)
        else:
            while self._heap:
                self.step()
