"""Process-oriented discrete-event simulation kernel.

A small, fast, dependency-free kernel in the style of CSIM/simpy:

* :class:`Environment` owns the clock and the scheduler queue.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a generator; ``yield event`` suspends the process
  until the event fires and resumes it with the event's value.
* :class:`Timeout` fires after a fixed delay.
* :class:`AnyOf` / :class:`AllOf` compose events (used e.g. for the COCA
  reply-or-timeout race).

The kernel is deterministic: simultaneous events fire in schedule order.
Formally, events fire in ascending ``(when, seq)`` order, where ``seq`` is
the global schedule counter — every queue implementation below preserves
that order exactly, so swapping queues never changes a simulated outcome.

Two interchangeable scheduler queues are provided (see docs/PERFORMANCE.md):

* :class:`HeapQueue` (default) — one ``heapq`` of ``(when, seq, event)``
  tuples.  The C-accelerated ``heapq`` makes this the fastest queue on
  CPython at every pending-set size we measured, so it is both the
  production queue and the bit-identity oracle for the property suite.
* :class:`CalendarQueue` — a calendar/bucket queue tuned to the
  simulator's periodic structure (beacon periods, timeout tau, sampler
  ticks).  Near-future events live in a ring of width-``w`` time buckets;
  far-future events fall back to a binary heap and migrate into the ring
  as the clock approaches them.  The bucket width and ring size auto-tune
  to the observed event-gap distribution and pending-event count.  Its
  per-operation cost is O(1) but paid in Python bytecode, which on
  CPython does not beat ``heapq``'s O(log n) in C; it is kept as a fully
  supported A/B alternative (and wins where ``heapq`` has no C module).

Select with ``Environment(queue="calendar"|"heap")`` or the
``REPRO_KERNEL_QUEUE`` environment variable.

Hot-path discipline: the environment keeps the globally earliest entry in
a one-slot *front register* so the ubiquitous schedule-then-fire-next
pattern never touches the queue at all; :meth:`Environment.run` dispatches
*batches* of same-tick events with attribute lookups hoisted out of the
loop, and recycles :class:`Timeout` objects through a free list once the
kernel is provably their only owner.  The ``kernel-hot-alloc`` simlint
rule guards this file's dispatch loops against per-event allocations
creeping back in.
"""

from __future__ import annotations

import math
import os
import sys
from heapq import heappop, heappush
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "HeapQueue",
    "Interrupt",
    "Process",
    "QUEUE_IMPLEMENTATIONS",
    "SimulationError",
    "Timeout",
    "default_queue_name",
]


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yielding non-events, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives the interrupt at its current yield
    point and may catch it to handle premature wake-up (e.g. a client being
    forced offline mid-wait).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the queue, callbacks not yet run
_PROCESSED = 2  # callbacks have run

_INF = math.inf

#: One scheduled occurrence: ``(when, seq, event)``.
_Entry = Tuple[float, int, "Event"]


def _entry_seq(entry: _Entry) -> int:
    """Sort key for same-time entries (seq defines dispatch order)."""
    return entry[1]


class Event:
    """A one-shot occurrence that can carry a value or an exception.

    Processes wait on events by yielding them.  An event is *triggered* by
    :meth:`succeed` or :meth:`fail`; its callbacks run when the kernel pops
    it off the queue at the trigger time.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = _PENDING
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event fired successfully (no exception)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every waiting process.  If no process
        waits, it surfaces from :meth:`Environment.run` unless
        :meth:`defuse` was called.
        """
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exception = exception
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run inline at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        had_waiter = False
        for callback in callbacks or ():
            had_waiter = True
            callback(self)
        if self._exception is not None and not had_waiter and not self._defused:
            raise self._exception


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Timeouts are the kernel's dominant allocation, so
    :meth:`Environment.timeout` recycles them through a free list; a
    recycled instance is indistinguishable from a fresh one.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay)


class Process(Event):
    """A running generator.  As an Event, it fires when the generator ends.

    The value of the process-event is the generator's return value; an
    uncaught exception inside the generator fails the process-event.
    """

    __slots__ = ("generator", "_waiting_on", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError("Process requires a generator")
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # One bound method for the process's whole lifetime: creating a
        # fresh bound method per yield is measurable at millions of events.
        self._resume_cb: Callable[[Event], None] = self._resume
        # Kick-start at the current time.
        bootstrap = Event(env)
        bootstrap._state = _TRIGGERED
        bootstrap.add_callback(self._resume_cb)
        env._schedule(bootstrap)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt an unstarted process")
        waited = self._waiting_on
        if waited.callbacks is not None and self._resume_cb in waited.callbacks:
            waited.callbacks.remove(self._resume_cb)
        self._waiting_on = None
        wakeup = Event(self.env)
        wakeup._exception = Interrupt(cause)
        wakeup._state = _TRIGGERED
        wakeup._defused = True
        wakeup.add_callback(self._resume_cb)
        self.env._schedule(wakeup)

    def _resume(self, fired: Event) -> None:
        self._waiting_on = None
        generator = self.generator
        while True:
            try:
                if fired._exception is not None:
                    fired._defused = True
                    target = generator.throw(fired._exception)
                else:
                    target = generator.send(fired._value)
            except StopIteration as stop:
                if self._state == _PENDING:
                    self.succeed(stop.value)
                return
            except BaseException as exc:  # must fail the process, whatever died
                if self._state == _PENDING:
                    self.fail(exc)
                    return
                raise
            if type(target) is Timeout or isinstance(target, Event):
                if target._state != _PROCESSED:
                    self._waiting_on = target
                    callbacks = target.callbacks
                    if callbacks is not None:
                        callbacks.append(self._resume_cb)
                    return
                # Already fired: resume immediately without a queue trip.
                fired = target
                continue
            generator.close()
            if self._state == _PENDING:
                self.fail(SimulationError(f"process yielded a non-event: {target!r}"))
            return


class _Condition(Event):
    """Base for AnyOf/AllOf: fires once ``_check`` is satisfied."""

    __slots__ = ("events", "_fired_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._fired_count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._state == _PROCESSED:
                self._on_fire(event)
            else:
                event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._state != _PENDING:
            if event._exception is not None:
                event._defused = True
            return
        if event._exception is not None:
            event._defused = True
            self.fail(event._exception)
            return
        self._fired_count += 1
        if self.env.monitor is not None:
            self.env.monitor.on_condition_fire(self)
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event._value for event in self.events if event._state == _PROCESSED
        }


class AnyOf(_Condition):
    """Fires when any of the given events fires.

    Value: ``{event: value}`` for the events fired so far.
    """

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count >= 1


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._fired_count >= len(self.events)


class HeapQueue:
    """Reference scheduler queue: one binary heap of ``(when, seq, event)``.

    The bit-identity oracle: every other queue implementation must dispatch
    any schedule in exactly this queue's order.
    """

    name = "heap"

    __slots__ = ("_heap", "size", "_requeue_seq")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._heap: List[_Entry] = []
        #: Pending entries; a plain attribute so the dispatch loop can read
        #: it without a method call.
        self.size = 0
        # Requeued (popped-but-unprocessed) entries sort before every live
        # seq, preserving their original position at the same timestamp.
        self._requeue_seq = -(1 << 62)

    def __len__(self) -> int:
        return self.size

    def push(self, when: float, seq: int, event: Event) -> None:
        heappush(self._heap, (when, seq, event))
        self.size += 1

    def peek(self) -> float:
        """Earliest scheduled time, or +inf when idle."""
        return self._heap[0][0] if self._heap else _INF

    def pop_one(self) -> Tuple[float, Event]:
        when, _seq, event = heappop(self._heap)
        self.size -= 1
        return when, event

    def pop_batch(self, limit: float = _INF) -> Optional[Tuple[float, List[Event]]]:
        """All events at the earliest time <= ``limit``, in seq order."""
        heap = self._heap
        if not heap or heap[0][0] > limit:
            return None
        when, _seq, event = heappop(heap)
        batch = [event]
        while heap and heap[0][0] == when:
            batch.append(heappop(heap)[2])
        self.size -= len(batch)
        return when, batch

    def requeue(self, when: float, events: List[Event]) -> None:
        """Put an unprocessed batch tail back at the front of its tick."""
        for event in events:
            self._requeue_seq += 1
            heappush(self._heap, (when, self._requeue_seq, event))
        self.size += len(events)

    def stats(self) -> Dict[str, int]:
        """Queue-level work counters (none for the reference heap)."""
        return {}


class CalendarQueue:
    """A calendar/bucket queue with a heap fallback for far-future events.

    Near-future events (within ``nslots * width`` of the clock) live in a
    ring of time buckets of width ``width``; a bucket holds the events of
    one width-wide time window of the current "year", appended in schedule
    order.  Far-future events wait in a binary heap and migrate into the
    ring when the clock's year advances to reach them.  Equal-time events
    dispatch in schedule (seq) order — pops break time ties on seq, since
    push order alone is not seq order (the environment's front register
    can flush an older entry behind a newer same-time push) — so dispatch
    order is bit-identical to :class:`HeapQueue`.

    The bucket width auto-tunes to the observed gap between consecutive
    distinct event times (an EWMA sampled every ``_SAMPLE_EVERY`` pops),
    and the ring resizes with the pending-event count, so both the micro
    benches (sparse, regular ticks) and the full simulator (dense
    same-tick bursts around beacon/timeout periods) keep O(1)-ish pops.
    """

    name = "calendar"

    _MIN_SLOTS = 64
    _MAX_SLOTS = 1 << 16
    #: Pops between gap-EWMA samples (one decrement + compare per pop).
    _SAMPLE_EVERY = 64
    #: Samples between geometry checks: 32 * 64 = 2048 pops.
    _TUNE_EVERY = 32

    __slots__ = (
        "_slots",
        "_nslots",
        "_mask",
        "_width",
        "size",
        "_ring_count",
        "_overflow",
        "_horizon",
        "_floor",
        "_cursor",
        "_gap_ewma",
        "_last_pop",
        "_sample_in",
        "_samples",
        "_scans_mark",
        "_requeue_seq",
        "bucket_scans",
        "resizes",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        width: float = 0.005,
        nslots: int = 256,
    ) -> None:
        if width <= 0:
            raise SimulationError(f"bucket width must be positive, got {width}")
        nslots = max(self._MIN_SLOTS, nslots)
        if nslots & (nslots - 1):
            raise SimulationError(f"nslots must be a power of two, got {nslots}")
        self._width = float(width)
        self._nslots = nslots
        self._mask = nslots - 1
        self._slots: List[List[_Entry]] = [[] for _ in range(nslots)]
        #: Pending entries (ring + overflow); a plain attribute so the
        #: dispatch loop can read it without a method call.
        self.size = 0
        self._ring_count = 0
        self._overflow: List[_Entry] = []
        #: Largest time the queue has handed out; the clock's lower bound.
        self._floor = float(initial_time)
        self._horizon = self._anchor(self._floor) + nslots * self._width
        self._cursor = self._slot_of(self._floor)
        self._gap_ewma = self._width
        self._last_pop = self._floor
        self._sample_in = self._SAMPLE_EVERY
        self._samples = 0
        self._scans_mark = 0
        self._requeue_seq = -(1 << 62)
        #: Ring buckets inspected while locating minima; read by the profiler.
        self.bucket_scans = 0
        #: Structure rebuilds (width retune / ring resize); read by the profiler.
        self.resizes = 0

    # -- geometry ----------------------------------------------------------

    def _anchor(self, t: float) -> float:
        """Start of the width-grid cell containing ``t``."""
        return math.floor(t / self._width) * self._width

    def _slot_of(self, when: float) -> int:
        if when >= 0.0:
            return int(when / self._width) & self._mask
        return math.floor(when / self._width) & self._mask

    def __len__(self) -> int:
        return self.size

    # -- scheduling --------------------------------------------------------

    def push(self, when: float, seq: int, event: Event) -> None:
        if when >= self._horizon:
            heappush(self._overflow, (when, seq, event))
        else:
            if when >= self._floor:
                if when >= 0.0:
                    slot = int(when / self._width) & self._mask
                else:
                    slot = math.floor(when / self._width) & self._mask
            else:
                # Defensive: a schedule in the past (the monitor's
                # ``kernel-schedule-in-past`` violation).  The cursor slot
                # is scanned first, so the entry still pops as the minimum.
                slot = self._cursor
            self._slots[slot].append((when, seq, event))
            self._ring_count += 1
        self.size += 1

    def peek(self) -> float:
        """Earliest scheduled time, or +inf when idle."""
        if self._ring_count == 0:
            if not self._overflow:
                return _INF
            if not self._migrate():
                return self._overflow[0][0]
        # The cursor is deliberately not persisted: it may only advance when
        # an entry is popped, else later pushes at not-yet-reached times
        # could land in slots behind it and dispatch out of order.
        slots = self._slots
        cursor = self._cursor
        scans = 1
        while not slots[cursor]:
            cursor = (cursor + 1) & self._mask
            scans += 1
        self.bucket_scans += scans
        best = slots[cursor][0][0]
        for entry in slots[cursor]:
            if entry[0] < best:
                best = entry[0]
        return best

    def _migrate(self) -> bool:
        """Ring empty, overflow not: re-anchor the year at the clock floor.

        Pulls every overflow entry inside the re-anchored year into the
        ring.  Returns False when even the earliest overflow entry lies
        beyond a whole year from the floor — the caller then serves it
        straight from the heap (the far-future fallback).
        """
        width = self._width
        horizon = self._anchor(self._floor) + self._nslots * width
        self._horizon = horizon
        self._cursor = self._slot_of(self._floor)
        overflow = self._overflow
        if overflow[0][0] >= horizon:
            return False
        slots = self._slots
        mask = self._mask
        moved = 0
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            slots[int(entry[0] / width) & mask].append(entry)
            moved += 1
        self._ring_count += moved
        return True

    def pop_one(self) -> Tuple[float, Event]:
        """Remove and return the earliest entry (FIFO within a tick)."""
        if self._ring_count == 0:
            if not self._migrate():
                when, _seq, event = heappop(self._overflow)
                self.size -= 1
                self._floor = when
                return when, event
        slots = self._slots
        cursor = self._cursor
        entries = slots[cursor]
        if not entries:
            mask = self._mask
            scans = 0
            while True:
                cursor = (cursor + 1) & mask
                entries = slots[cursor]
                scans += 1
                if entries:
                    break
            self.bucket_scans += scans
            self._cursor = cursor
        # Strict (when, seq) minimum: in-bucket list order is *usually*
        # seq order, but the environment's front register may flush an
        # older entry behind a newer same-time push, so ties break on seq.
        best_index = 0
        best = entries[0]
        for index in range(1, len(entries)):
            entry = entries[index]
            if entry[0] < best[0] or (
                entry[0] == best[0] and entry[1] < best[1]
            ):
                best = entry
                best_index = index
        entries.pop(best_index)
        self._ring_count -= 1
        self.size -= 1
        self._floor = best[0]
        self._sample_in -= 1
        if not self._sample_in:
            self._gap_sample(best[0])
        return best[0], best[2]

    def pop_batch(self, limit: float = _INF) -> Optional[Tuple[float, List[Event]]]:
        """All events at the earliest time <= ``limit``, in seq order."""
        if self._ring_count == 0:
            if not self._overflow:
                return None
            if not self._migrate():
                return self._pop_overflow_batch(limit)
        slots = self._slots
        cursor = self._cursor
        entries = slots[cursor]
        if not entries:
            mask = self._mask
            scans = 0
            while True:
                cursor = (cursor + 1) & mask
                entries = slots[cursor]
                scans += 1
                if entries:
                    break
            self.bucket_scans += scans
        if len(entries) == 1:
            when = entries[0][0]
            if when > limit:
                # Limit-abort: leave the cursor untouched — it may only
                # advance when an entry is popped, else later pushes at
                # not-yet-reached times could land in slots behind it and
                # dispatch out of order.
                return None
            batch = [entries.pop()[2]]
            count = 1
        else:
            when = entries[0][0]
            for entry in entries:
                if entry[0] < when:
                    when = entry[0]
            if when > limit:
                return None
            matched = [entry for entry in entries if entry[0] == when]
            count = len(matched)
            if count == len(entries):
                del entries[:]
            else:
                slots[cursor] = [entry for entry in entries if entry[0] != when]
            # In-bucket list order is *usually* seq order, but the
            # environment's front register may flush an older entry behind
            # a newer same-time push; timsort makes the sorted common case
            # a single O(n) scan.  Seqs are unique, so the sort never
            # compares the (unorderable) event payloads.
            matched.sort(key=_entry_seq)
            batch = [entry[2] for entry in matched]
        self._cursor = cursor
        self._ring_count -= count
        self.size -= count
        self._floor = when
        self._sample_in -= 1
        if not self._sample_in:
            self._gap_sample(when)
        return when, batch

    def _pop_overflow_batch(self, limit: float) -> Optional[Tuple[float, List[Event]]]:
        """Far-future fallback: serve a whole tick straight from the heap."""
        overflow = self._overflow
        when = overflow[0][0]
        if when > limit:
            return None
        batch = [heappop(overflow)[2]]
        while overflow and overflow[0][0] == when:
            batch.append(heappop(overflow)[2])
        self.size -= len(batch)
        self._floor = when
        self._sample_in -= 1
        if not self._sample_in:
            self._gap_sample(when)
        return when, batch

    def requeue(self, when: float, events: List[Event]) -> None:
        """Put an unprocessed batch tail back at the front of its tick.

        Requeued entries carry negative seq numbers and are *prepended* to
        their bucket so they dispatch before anything scheduled at the same
        time afterwards — exactly where they sat before the failed pop.
        """
        head: List[_Entry] = []
        for event in events:
            self._requeue_seq += 1
            head.append((when, self._requeue_seq, event))
        if when >= self._horizon:
            for entry in head:
                heappush(self._overflow, entry)
        else:
            slot = self._slot_of(when) if when >= self._floor else self._cursor
            self._slots[slot][:0] = head
            self._ring_count += len(head)
        self.size += len(head)

    # -- self-tuning -------------------------------------------------------

    def _gap_sample(self, when: float) -> None:
        """Refresh the distinct-time gap EWMA; periodically check geometry."""
        self._sample_in = self._SAMPLE_EVERY
        last = self._last_pop
        if when > last:
            gap = (when - last) / self._SAMPLE_EVERY
            self._last_pop = when
            self._gap_ewma += 0.25 * (gap - self._gap_ewma)
        self._samples += 1
        if self._samples >= self._TUNE_EVERY:
            self._samples = 0
            self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        """Retune width/ring size when the workload has drifted.

        Two triggers: the mean bucket scan per pop grew past ~4 (width too
        small for the observed gaps — pops walk empty buckets), or the
        pending count outgrew the ring (buckets hold several distinct
        times and pops degrade to linear scans of long lists).
        """
        pops = self._SAMPLE_EVERY * self._TUNE_EVERY
        scans = self.bucket_scans - self._scans_mark
        self._scans_mark = self.bucket_scans
        mean_scans = scans / pops
        target_width = self._gap_ewma
        if target_width <= 0.0 or not math.isfinite(target_width):
            target_width = self._width
        target_width = min(max(target_width, 1e-9), 1e12)
        width_drift = target_width / self._width
        target_slots = self._nslots
        while target_slots < self.size and target_slots < self._MAX_SLOTS:
            target_slots *= 2
        while target_slots > 4 * self.size and target_slots > self._MIN_SLOTS:
            target_slots //= 2
        if (
            mean_scans <= 4.0
            and 0.25 <= width_drift <= 4.0
            and target_slots == self._nslots
        ):
            return
        self._rebuild(target_width, target_slots)

    def _rebuild(self, width: float, nslots: int) -> None:
        """Re-bucket every pending entry under a new geometry."""
        entries: List[_Entry] = self._overflow
        for bucket in self._slots:
            entries.extend(bucket)
        entries.sort(key=_entry_order)
        self._width = width
        self._nslots = nslots
        self._mask = nslots - 1
        self._slots = [[] for _ in range(nslots)]  # simlint: allow[kernel-transitive-hazard] reason=resize slow path; amortised O(1) per event
        self._overflow = []  # simlint: allow[kernel-transitive-hazard] reason=resize slow path; amortised O(1) per event
        self._ring_count = 0
        self.size = 0
        self._horizon = self._anchor(self._floor) + nslots * width
        self._cursor = self._slot_of(self._floor)
        self._gap_ewma = width
        for when, seq, event in entries:
            self.push(when, seq, event)
        self.resizes += 1

    def stats(self) -> Dict[str, int]:
        """Queue-level work counters; read by the profiler."""
        return {"bucket_scans": self.bucket_scans, "queue_resizes": self.resizes}


def _entry_order(entry: _Entry) -> Tuple[float, int]:
    return (entry[0], entry[1])


#: Scheduler queue implementations selectable by name.
QUEUE_IMPLEMENTATIONS: Dict[str, Any] = {
    CalendarQueue.name: CalendarQueue,
    HeapQueue.name: HeapQueue,
}


def default_queue_name() -> str:
    """The queue implementation selected by ``REPRO_KERNEL_QUEUE``."""
    name = os.environ.get("REPRO_KERNEL_QUEUE", "").strip().lower()
    if not name:
        return HeapQueue.name
    if name not in QUEUE_IMPLEMENTATIONS:
        raise SimulationError(
            f"unknown REPRO_KERNEL_QUEUE {name!r}; "
            f"pick one of {sorted(QUEUE_IMPLEMENTATIONS)}"
        )
    return name


# The Timeout free list needs no explicit cap: it only grows when a popped
# timeout has no other owner, so its length is bounded by the high-water
# count of concurrently pending timeouts — memory the run already paid for.
# Free-list invariants (established in the recycle passes of
# :meth:`Environment.run`): every entry has ``callbacks == []`` (a reused
# list object), ``_exception is None`` (Timeouts cannot fail once
# triggered), and ``_defused is False`` (defused ones are not recycled), so
# :meth:`Environment.timeout` only rewrites value, state, and delay.


class Environment:
    """The simulation clock and scheduler.

    ``monitor`` optionally attaches a
    :class:`~repro.check.monitor.InvariantMonitor`: every queue push and
    pop is then reported through ``on_schedule`` / ``on_step`` (event-time
    monotonicity, queue bookkeeping).  Without a monitor the hot path pays
    a single attribute test per event and behaves bit-identically.

    ``queue`` picks the scheduler queue implementation by name
    (:data:`QUEUE_IMPLEMENTATIONS`); default is ``REPRO_KERNEL_QUEUE`` or
    the heap queue.  All implementations dispatch in identical order.

    The *front register* (``_front_*``) holds the entry with the globally
    smallest ``(when, seq)`` so the schedule-then-fire-next pattern — the
    bulk of a sparse workload — never touches the queue.  The invariant
    holds because ``seq`` is monotone: a new push at the same timestamp
    always sorts behind the register and goes to the queue instead.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_front_when",
        "_front_seq",
        "_front_event",
        "events_processed",
        "monitor",
        "_timeout_free",
        "freelist_hits",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        monitor: Any = None,
        queue: Optional[str] = None,
    ) -> None:
        self._now = float(initial_time)
        name = queue if queue is not None else default_queue_name()
        try:
            factory = QUEUE_IMPLEMENTATIONS[name]
        except KeyError:
            raise SimulationError(
                f"unknown kernel queue {name!r}; "
                f"pick one of {sorted(QUEUE_IMPLEMENTATIONS)}"
            ) from None
        self._queue: Union[CalendarQueue, HeapQueue] = factory(self._now)
        self._seq = 0
        self._front_when = _INF
        self._front_seq = 0
        self._front_event: Optional[Event] = None
        #: Events processed (queue pops) since creation; read by the profiler.
        self.events_processed = 0
        #: Optional invariant oracle (duck-typed; see repro.check.monitor).
        self.monitor = monitor
        #: Recycled Timeout instances (see :meth:`timeout`).
        self._timeout_free: List[Timeout] = []
        #: Timeouts served from the free list; read by the profiler.
        self.freelist_hits = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        """Scheduled-but-unprocessed events (queue size); read by samplers."""
        return self._queue.size + (self._front_event is not None)

    @property
    def queue_name(self) -> str:
        """Name of the active scheduler queue implementation."""
        return self._queue.name

    def queue_stats(self) -> Dict[str, int]:
        """Kernel work counters (bucket scans, free-list hits, ...)."""
        stats = dict(self._queue.stats())
        stats["freelist_hits"] = self.freelist_hits
        return stats

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        free = self._timeout_free
        if not free:
            return Timeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        timeout = free.pop()
        timeout._value = value
        timeout._state = _TRIGGERED
        timeout.delay = delay
        self.freelist_hits += 1
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay
        queue = self._queue
        if when < self._front_when:
            front = self._front_event
            if front is None:
                # An empty register may only refill when the queue is empty
                # too, else it would shadow earlier queue entries.
                if queue.size:
                    queue.push(when, seq, timeout)
                else:
                    self._front_when = when
                    self._front_seq = seq
                    self._front_event = timeout
            else:
                queue.push(self._front_when, self._front_seq, front)
                self._front_when = when
                self._front_seq = seq
                self._front_event = timeout
        else:
            queue.push(when, seq, timeout)
        if self.monitor is not None:
            self.monitor.on_schedule(self, when)
        return timeout

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay
        queue = self._queue
        if when < self._front_when:
            front = self._front_event
            if front is None:
                # An empty register may only refill when the queue is empty
                # too, else it would shadow earlier queue entries.
                if queue.size:
                    queue.push(when, seq, event)
                else:
                    self._front_when = when
                    self._front_seq = seq
                    self._front_event = event
            else:
                queue.push(self._front_when, self._front_seq, front)
                self._front_when = when
                self._front_seq = seq
                self._front_event = event
        else:
            queue.push(when, seq, event)
        if self.monitor is not None:
            self.monitor.on_schedule(self, when)

    def _flush_front(self) -> None:
        """Push the front register back into the queue (pre-requeue)."""
        front = self._front_event
        if front is not None:
            self._queue.push(self._front_when, self._front_seq, front)
            self._front_event = None
            self._front_when = _INF

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        if self._front_event is not None:
            return self._front_when
        return self._queue.peek()

    def step(self) -> None:
        """Process the next event.  Raises SimulationError when idle."""
        front = self._front_event
        if front is not None:
            when = self._front_when
            event: Event = front
            self._front_event = None
            self._front_when = _INF
        elif self._queue.size:
            when, event = self._queue.pop_one()
        else:
            raise SimulationError("step() on an empty schedule")
        if self.monitor is not None:
            self.monitor.on_step(self, when)
        self._now = when
        self.events_processed += 1
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or the clock reaches ``until``."""
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self._now})"
                )
            limit = until
        else:
            limit = _INF
        if self.monitor is not None:
            # Checked path: per-event monitor hooks, no free-list recycling.
            while self.peek() <= limit:
                self.step()
            if until is not None and until > self._now:
                self._now = until
            return
        # Hot path: batched same-tick dispatch with hoisted lookups.  The
        # inlined bodies below mirror Event._process; keep them in lockstep.
        queue = self._queue
        pop_batch = queue.pop_batch
        free = self._timeout_free
        getrefcount = sys.getrefcount
        processed = self.events_processed
        event: Event
        try:
            while True:
                front = self._front_event
                when = self._front_when
                if front is not None and when <= limit:
                    self._front_event = None
                    self._front_when = _INF
                    popped = pop_batch(when) if queue.size else None
                    if popped is None:
                        # Single-event lane: no batch list, no index loop.
                        event = front  # type: ignore[assignment]
                        self._now = when
                        processed += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._state = _PROCESSED
                        if callbacks:
                            for callback in callbacks:
                                callback(event)
                        elif event._exception is not None and not event._defused:
                            raise event._exception
                        if (
                            type(event) is Timeout
                            # Sole owner: the `front` and `event` locals plus
                            # getrefcount's own argument.
                            and getrefcount(event) == 3
                            and not event._defused
                        ):
                            # Re-establish the free-list invariants, reusing
                            # the emptied callbacks list (zero allocations).
                            if callbacks:
                                del callbacks[:]
                            event.callbacks = callbacks
                            free.append(event)
                        continue
                    batch = popped[1]
                    batch.insert(0, front)  # type: ignore[arg-type]
                    front = None  # drop the alias so recycling can see batch[0]
                else:
                    # Register empty or beyond the limit; it holds the
                    # global minimum, so the queue cannot beat it.
                    popped = pop_batch(limit)
                    if popped is None:
                        break
                    when, batch = popped
                self._now = when
                index = 0
                count = len(batch)
                try:
                    while index < count:
                        event = batch[index]
                        index += 1
                        processed += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._state = _PROCESSED
                        if callbacks:
                            for callback in callbacks:
                                callback(event)
                        elif event._exception is not None and not event._defused:
                            raise event._exception
                except BaseException:
                    if index < count:
                        # Preserve pre-batching semantics: events the
                        # exception never reached stay scheduled.
                        self._flush_front()
                        queue.requeue(when, batch[index:])
                    raise
                for event in batch:
                    if (
                        type(event) is Timeout
                        # Sole owner: the batch slot, the loop variable,
                        # and getrefcount's argument.
                        and getrefcount(event) == 3
                        and not event._defused
                    ):
                        # Unlike the single-event lane there is no one
                        # emptied list to reuse: each recycled timeout in
                        # the batch needs its own callbacks container.
                        event.callbacks = []  # simlint: allow[kernel-hot-alloc] reason=one list per recycled Timeout; still cheaper than a fresh Timeout
                        free.append(event)
        finally:
            self.events_processed = processed
        if until is not None and until > self._now:
            self._now = until
