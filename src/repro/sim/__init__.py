"""Discrete-event simulation substrate.

The paper's evaluation is built on CSIM (a commercial C++ process-oriented
simulation library).  This package is the from-scratch Python replacement: a
generator-based process kernel (:mod:`repro.sim.kernel`), FCFS resources and
stores (:mod:`repro.sim.resources`), deterministic named random streams
(:mod:`repro.sim.random`) and incremental statistics (:mod:`repro.sim.stats`).
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.profile import RunProfile
from repro.sim.random import RandomStreams
from repro.sim.resources import Resource, Store
from repro.sim.stats import TimeWeightedAverage, WelfordAccumulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "RunProfile",
    "SimulationError",
    "Store",
    "TimeWeightedAverage",
    "Timeout",
    "WelfordAccumulator",
]
