"""FCFS resources and stores for the simulation kernel.

:class:`Resource` models a server with fixed capacity and an infinite FIFO
queue (the MSS channels and the per-host radio are Resources of capacity 1).
:class:`Store` is an unbounded FIFO item buffer (the MSS request queue).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Resource", "Store"]


class Resource:
    """A capacity-limited resource with an infinite FCFS wait queue.

    Usage from a process::

        grant = resource.request()
        yield grant
        try:
            ...  # hold the resource
        finally:
            resource.release(grant)
    """

    __slots__ = ("env", "capacity", "_users", "_queue")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Event] = []
        self._queue: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._queue)

    def request(self) -> Event:
        """Ask for a grant.  The returned event fires when granted."""
        grant = Event(self.env)
        if len(self._users) < self.capacity:
            self._users.append(grant)
            grant.succeed()
        else:
            self._queue.append(grant)
        return grant

    def release(self, grant: Event) -> None:
        """Return a grant; hands the slot to the oldest waiter, if any."""
        try:
            self._users.remove(grant)
        except ValueError:
            # Granted but never fired (still queued): cancel the request.
            try:
                self._queue.remove(grant)
                return
            except ValueError:
                raise SimulationError("release() of a grant not held") from None
        if self._queue:
            waiter = self._queue.popleft()
            self._users.append(waiter)
            waiter.succeed()

    def acquire(self, hold_time: float) -> Iterator[Event]:
        """Process helper: request, hold for ``hold_time``, release.

        Intended to be delegated to with ``yield from``::

            yield from resource.acquire(tx_time)
        """
        grant = self.request()
        yield grant
        try:
            yield self.env.timeout(hold_time)
        finally:
            self.release(grant)


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the oldest item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
