"""Deterministic named random streams.

Every stochastic component of the simulation (mobility, workload, server
updates, disconnection, signature hashing, ...) draws from its own named
stream derived from a single master seed.  Changing one component's draw
pattern therefore never perturbs another component's sequence, and identical
configurations are bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible numpy Generators."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived from (master_seed, name) only, so streams
        are stable regardless of creation order.
        """
        generator = self._streams.get(name)
        if generator is None:
            seed_seq = np.random.SeedSequence(
                self.master_seed, spawn_key=(_name_key(name),)
            )
            generator = np.random.Generator(np.random.PCG64(seed_seq))
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def _name_key(name: str) -> int:
    """Stable 64-bit key for a stream name (Python's hash() is salted)."""
    key = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        key = ((key ^ byte) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return key
