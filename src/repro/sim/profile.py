"""Lightweight per-run instrumentation (wall-clock, events, counters).

Every perf PR from here on is measured against the numbers this module
surfaces: per-run wall-clock time, kernel events processed, the derived
events/second throughput, and a small dictionary of per-subsystem work
counters (P2P transmissions, mobility snapshot rebuilds, NDP beacon
rounds, ...).  The profile rides along on
:class:`~repro.core.metrics.Results` as a ``compare=False`` field, so two
runs of the same configuration still compare equal even though their
wall-clock times differ — the serial/parallel determinism guarantee is
stated over the *simulated* outcome, never over timing.

Collection is cheap (two ``perf_counter`` calls and a handful of integer
reads per run), so :func:`repro.core.simulation.run_simulation` attaches a
profile to every result unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["RunProfile"]


@dataclass
class RunProfile:
    """Timing and work counters of one simulated experiment."""

    #: Wall-clock seconds from configuration build to final results.
    wall_time: float
    #: Kernel events processed (queue pops) over the whole run.
    events: int
    #: Per-subsystem work counters, e.g. ``p2p_broadcasts``,
    #: ``snapshot_rebuilds``, ``ndp_rounds``; mostly event counts, but
    #: accumulated durations (``server_uplink_wait``) are floats.  Runs
    #: with the failure-aware retrieve layer on additionally carry the
    #: ``health_*`` counters (hedges, hedge wins, breaker trips/probes,
    #: budget exhaustions, crash fast-failovers) summed over all hosts.
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        """Kernel throughput; 0 when the run was too fast to time."""
        return self.events / self.wall_time if self.wall_time > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for JSON export (``tools/bench_profile.py``)."""
        return {
            "wall_time": self.wall_time,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            **{f"counter_{name}": value for name, value in sorted(self.counters.items())},
        }

    def __str__(self) -> str:
        extras = "  ".join(
            f"{name}={value}" for name, value in sorted(self.counters.items())
        )
        return (
            f"{self.wall_time:.2f}s wall  {self.events} events  "
            f"{self.events_per_sec:,.0f} events/s"
            + (f"  {extras}" if extras else "")
        )
