"""Incremental statistics.

The COCA timeout adaptation needs a running mean and standard deviation of
peer-search round-trip times, computed incrementally (the paper cites Knuth
TAOCP vol. 2 for this).  :class:`WelfordAccumulator` is that algorithm; it is
also the backbone of every metric the harness reports.

:class:`TimeWeightedAverage` integrates a piecewise-constant signal over
simulated time (used for queue lengths and cache occupancy).
"""

from __future__ import annotations

import math

__all__ = ["TimeWeightedAverage", "WelfordAccumulator"]


class WelfordAccumulator:
    """Numerically stable running mean / variance (Welford's method)."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance; 0.0 until two samples exist."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold another accumulator into this one (Chan's parallel update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        return (
            f"WelfordAccumulator(count={self.count}, mean={self.mean:.6g}, "
            f"stddev={self.stddev:.6g})"
        )


class TimeWeightedAverage:
    """Time integral of a piecewise-constant signal."""

    __slots__ = ("_last_time", "_last_value", "_area", "_start")

    def __init__(self, start_time: float = 0.0, initial_value: float = 0.0) -> None:
        self._start = float(start_time)
        self._last_time = float(start_time)
        self._last_value = float(initial_value)
        self._area = 0.0

    def update(self, now: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._last_value * (now - self._last_time)
        self._last_time = float(now)
        self._last_value = float(value)

    def average(self, now: float) -> float:
        """Time-weighted mean of the signal over [start, now]."""
        span = now - self._start
        if span <= 0:
            return self._last_value
        area = self._area + self._last_value * (now - self._last_time)
        return area / span
