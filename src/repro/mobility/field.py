"""Position snapshots and neighbor queries over a population of hosts."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.geometry import Rectangle
from repro.mobility.rpgm import GroupMemberTrajectory
from repro.mobility.trajectory import Trajectory
from repro.mobility.waypoint import RandomWaypointTrajectory

__all__ = ["MobilityField", "build_group_mobility"]


class MobilityField:
    """The set of all host trajectories with vectorised geometric queries.

    Snapshots are cached per query time: within one simulated instant (e.g.
    a broadcast and its receptions) every query reuses one (N, 2) array.
    """

    def __init__(
        self, trajectories: Sequence[Trajectory], resolution: float = 0.0
    ):
        """``resolution`` > 0 quantises snapshot times to that granularity:
        queries within one bucket share a snapshot.  At the paper's maximum
        speed of 5 m/s a 0.1 s resolution bounds the position error by half
        a metre — far below the transmission range — while collapsing the
        millisecond-scale timestamps of individual transmissions."""
        if not trajectories:
            raise ValueError("MobilityField needs at least one trajectory")
        if resolution < 0:
            raise ValueError("resolution must be >= 0")
        self.trajectories = list(trajectories)
        self.resolution = float(resolution)
        self._snapshot_time = -math.inf
        # One preallocated (N, 2) buffer, refilled in place per bucket.
        self._snapshot = np.empty((len(self.trajectories), 2))
        #: Snapshot rebuilds since creation; read by the profiler.
        self.snapshot_rebuilds = 0

    def __len__(self) -> int:
        return len(self.trajectories)

    def _quantise(self, t: float) -> float:
        if self.resolution <= 0:
            return t
        return math.floor(t / self.resolution) * self.resolution

    def positions(self, t: float) -> np.ndarray:
        """(N, 2) array of positions at time ``t`` (cached per bucket).

        The same buffer is reused across rebuilds: callers that keep the
        array (or a row view) beyond the current snapshot bucket must copy
        it.  Every in-tree caller consumes positions synchronously.
        """
        t = self._quantise(t)
        if t != self._snapshot_time:
            snapshot = self._snapshot
            for index, trajectory in enumerate(self.trajectories):
                snapshot[index] = trajectory.position(t)
            self._snapshot_time = t
            self.snapshot_rebuilds += 1
        return self._snapshot

    def position_of(self, index: int, t: float) -> np.ndarray:
        return self.positions(t)[index]

    def distance(self, i: int, j: int, t: float) -> float:
        positions = self.positions(t)
        return float(np.hypot(*(positions[i] - positions[j])))

    def neighbors_of(
        self,
        index: int,
        t: float,
        radius: float,
        include_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Indices of hosts within ``radius`` of host ``index`` at ``t``.

        ``include_mask`` (bool, length N) removes e.g. disconnected hosts.
        The host itself is never included.
        """
        positions = self.positions(t)
        deltas = positions - positions[index]
        close = (deltas[:, 0] ** 2 + deltas[:, 1] ** 2) <= radius * radius
        close[index] = False
        if include_mask is not None:
            close &= include_mask
        return np.nonzero(close)[0]

    def within_range(
        self,
        point: np.ndarray,
        t: float,
        radius: float,
        include_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Indices of hosts within ``radius`` of an arbitrary ``point``."""
        positions = self.positions(t)
        deltas = positions - np.asarray(point, dtype=float)
        close = (deltas[:, 0] ** 2 + deltas[:, 1] ** 2) <= radius * radius
        if include_mask is not None:
            close &= include_mask
        return np.nonzero(close)[0]

    def pairwise_distances(self, t: float) -> np.ndarray:
        """(N, N) symmetric distance matrix at time ``t``."""
        positions = self.positions(t)
        deltas = positions[:, None, :] - positions[None, :, :]
        return np.sqrt((deltas**2).sum(axis=2))


def build_group_mobility(
    rng: np.random.Generator,
    n_clients: int,
    group_size: int,
    area: Rectangle,
    v_min: float,
    v_max: float,
    pause_time: float = 1.0,
    group_span: float = 50.0,
    resolution: float = 0.0,
) -> Tuple[MobilityField, List[int]]:
    """Build the paper's client motion model (Section V-B).

    Clients are divided into motion groups of ``group_size``; each group's
    reference point follows the random waypoint model and members follow the
    reference with a bounded offset (RPGM).  ``group_size == 1`` gives each
    client an individual random waypoint path (span 0).

    Returns the field plus ``group_of`` mapping client index -> group id.
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    trajectories: List[Trajectory] = []
    group_of: List[int] = []
    group_id = 0
    built = 0
    while built < n_clients:
        members = min(group_size, n_clients - built)
        reference = RandomWaypointTrajectory(
            rng, area, v_min, v_max, pause_time=pause_time
        )
        span = 0.0 if members == 1 else group_span
        for _ in range(members):
            trajectories.append(GroupMemberTrajectory(reference, rng, span))
            group_of.append(group_id)
        built += members
        group_id += 1
    return MobilityField(trajectories, resolution=resolution), group_of
