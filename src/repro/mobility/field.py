"""Position snapshots and neighbor queries over a population of hosts."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.geometry import Rectangle
from repro.mobility.rpgm import GroupMemberTrajectory
from repro.mobility.trajectory import (
    PiecewiseLinearTrajectory,
    StationaryTrajectory,
    Trajectory,
)
from repro.mobility.waypoint import RandomWaypointTrajectory

__all__ = ["MobilityField", "build_group_mobility"]

_INF = math.inf


class MobilityField:
    """The set of all host trajectories with vectorised geometric queries.

    Snapshots are cached per query time: within one simulated instant (e.g.
    a broadcast and its receptions) every query reuses one (N, 2) array.

    For the in-tree trajectory types (stationary, piecewise-linear, RPGM
    group members) snapshots are maintained *incrementally*: the field
    caches each host's active motion segment in flat arrays and evaluates
    the whole population with a handful of vectorised operations, touching
    individual trajectories only when a segment expires.  The arithmetic
    matches the scalar path operation-for-operation and stale segments are
    re-resolved in ascending host order, so positions — and the shared RNG
    stream driving lazy segment generation — are bit-identical to a full
    per-host rebuild.  Unknown :class:`Trajectory` subclasses fall back to
    the per-host rebuild loop (counted by ``snapshot_rebuilds``).
    """

    def __init__(
        self, trajectories: Sequence[Trajectory], resolution: float = 0.0
    ):
        """``resolution`` > 0 quantises snapshot times to that granularity:
        queries within one bucket share a snapshot.  At the paper's maximum
        speed of 5 m/s a 0.1 s resolution bounds the position error by half
        a metre — far below the transmission range — while collapsing the
        millisecond-scale timestamps of individual transmissions."""
        if not trajectories:
            raise ValueError("MobilityField needs at least one trajectory")
        if resolution < 0:
            raise ValueError("resolution must be >= 0")
        self.trajectories = list(trajectories)
        self.resolution = float(resolution)
        self._snapshot_time = -math.inf
        # One preallocated (N, 2) buffer, refilled in place per bucket.
        self._snapshot = np.empty((len(self.trajectories), 2))
        #: Full per-host rebuilds (fallback path only); read by the profiler.
        self.snapshot_rebuilds = 0
        #: Incremental vectorised snapshot computations (one per fresh time).
        self.snapshot_refreshes = 0
        #: Queries served straight from the cached snapshot buffer.
        self.snapshot_reuses = 0
        self._fast = self._build_segment_cache()

    def _build_segment_cache(self) -> bool:
        """Set up per-host active-segment arrays; False on unknown types.

        Each host decomposes into a *base* component (its own piecewise
        path, or the shared group reference) plus an optional *offset*
        component (RPGM drift).  Static components get a sentinel segment
        ``[0, inf)`` with zero velocity so they never go stale.
        """
        n = len(self.trajectories)
        base: List[Optional[PiecewiseLinearTrajectory]] = [None] * n
        off: List[Optional[PiecewiseLinearTrajectory]] = [None] * n
        self._b_start = np.zeros(n)
        self._b_end = np.full(n, _INF)
        self._b_org = np.zeros((n, 2))
        self._b_vel = np.zeros((n, 2))
        self._o_start = np.zeros(n)
        self._o_end = np.full(n, _INF)
        self._o_org = np.zeros((n, 2))
        self._o_vel = np.zeros((n, 2))
        for index, trajectory in enumerate(self.trajectories):
            base_part: Trajectory = trajectory
            if isinstance(trajectory, GroupMemberTrajectory):
                base_part = trajectory.reference
                drift = trajectory._offset
                if drift is not None:
                    off[index] = drift
                    self._o_end[index] = -_INF  # resolve on first query
            if isinstance(base_part, StationaryTrajectory):
                self._b_org[index] = base_part.position(0.0)
            elif isinstance(base_part, PiecewiseLinearTrajectory):
                base[index] = base_part
                self._b_end[index] = -_INF  # resolve on first query
            else:
                return False
        self._base_traj = base
        self._off_traj = off
        self._b_dyn = np.array([t is not None for t in base])
        self._o_dyn = np.array([t is not None for t in off])
        self._any_offset = bool(self._o_dyn.any())
        self._all_offset = bool(self._o_dyn.all())
        self._off_where = np.broadcast_to(self._o_dyn[:, None], (n, 2))
        self._dt = np.empty(n)
        self._odt = np.empty(n)
        self._off_buf = np.empty((n, 2))
        return True

    def __len__(self) -> int:
        return len(self.trajectories)

    def quantise(self, t: float) -> float:
        """The snapshot-bucket key for time ``t``.

        Queries whose keys are equal share one position snapshot; callers
        (e.g. :class:`~repro.net.p2p.P2PNetwork`'s neighbor cache) can use
        the key to memoise derived geometry per bucket.
        """
        if self.resolution <= 0:
            return t
        return math.floor(t / self.resolution) * self.resolution

    _quantise = quantise

    def _refresh_segments(self, t: float) -> None:
        """Re-resolve every expired active segment at time ``t``.

        Ascending host order with base-before-offset per host reproduces
        the scalar rebuild loop's trajectory-extension order exactly, so
        the shared RNG stream sees identical draws.
        """
        stale_b = ((t >= self._b_end) | (t < self._b_start)) & self._b_dyn
        stale_o = ((t >= self._o_end) | (t < self._o_start)) & self._o_dyn
        if not (stale_b.any() or stale_o.any()):
            return
        for index in np.nonzero(stale_b | stale_o)[0]:
            if stale_b[index]:
                segment = self._base_traj[index].active_segment(t)
                self._b_start[index] = segment.start
                self._b_end[index] = segment.end
                self._b_org[index] = segment.origin
                self._b_vel[index] = segment.velocity
            if stale_o[index]:
                segment = self._off_traj[index].active_segment(t)
                self._o_start[index] = segment.start
                self._o_end[index] = segment.end
                self._o_org[index] = segment.origin
                self._o_vel[index] = segment.velocity

    def positions(self, t: float) -> np.ndarray:
        """(N, 2) array of positions at time ``t`` (cached per bucket).

        The same buffer is reused across rebuilds: callers that keep the
        array (or a row view) beyond the current snapshot bucket must copy
        it.  Every in-tree caller consumes positions synchronously.
        """
        t = self._quantise(t)
        snapshot = self._snapshot
        if t == self._snapshot_time:
            self.snapshot_reuses += 1
            return snapshot
        if not self._fast:
            for index, trajectory in enumerate(self.trajectories):
                snapshot[index] = trajectory.position(t)
            self._snapshot_time = t
            self.snapshot_rebuilds += 1
            return snapshot
        self._refresh_segments(t)
        # Segment.position(t) elementwise:  origin + velocity * clamp(t).
        dt = self._dt
        np.clip(t, self._b_start, self._b_end, out=dt)
        dt -= self._b_start
        np.multiply(self._b_vel, dt[:, None], out=snapshot)
        snapshot += self._b_org
        if self._any_offset:
            odt = self._odt
            np.clip(t, self._o_start, self._o_end, out=odt)
            odt -= self._o_start
            drift = np.multiply(self._o_vel, odt[:, None], out=self._off_buf)
            drift += self._o_org
            if self._all_offset:
                snapshot += drift
            else:
                # Masked add: a plain `+ 0.0` would flip the sign of any
                # -0.0 coordinate on offset-free hosts.
                np.add(snapshot, drift, out=snapshot, where=self._off_where)
        self._snapshot_time = t
        self.snapshot_refreshes += 1
        return snapshot

    def position_of(self, index: int, t: float) -> np.ndarray:
        return self.positions(t)[index]

    def distance(self, i: int, j: int, t: float) -> float:
        positions = self.positions(t)
        return float(np.hypot(*(positions[i] - positions[j])))

    def neighbors_of(
        self,
        index: int,
        t: float,
        radius: float,
        include_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Indices of hosts within ``radius`` of host ``index`` at ``t``.

        ``include_mask`` (bool, length N) removes e.g. disconnected hosts.
        The host itself is never included.
        """
        positions = self.positions(t)
        deltas = positions - positions[index]
        close = (deltas[:, 0] ** 2 + deltas[:, 1] ** 2) <= radius * radius
        close[index] = False
        if include_mask is not None:
            close &= include_mask
        return np.nonzero(close)[0]

    def within_range(
        self,
        point: np.ndarray,
        t: float,
        radius: float,
        include_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Indices of hosts within ``radius`` of an arbitrary ``point``."""
        positions = self.positions(t)
        deltas = positions - np.asarray(point, dtype=float)
        close = (deltas[:, 0] ** 2 + deltas[:, 1] ** 2) <= radius * radius
        if include_mask is not None:
            close &= include_mask
        return np.nonzero(close)[0]

    def pairwise_distances(self, t: float) -> np.ndarray:
        """(N, N) symmetric distance matrix at time ``t``."""
        positions = self.positions(t)
        deltas = positions[:, None, :] - positions[None, :, :]
        return np.sqrt((deltas**2).sum(axis=2))


def build_group_mobility(
    rng: np.random.Generator,
    n_clients: int,
    group_size: int,
    area: Rectangle,
    v_min: float,
    v_max: float,
    pause_time: float = 1.0,
    group_span: float = 50.0,
    resolution: float = 0.0,
) -> Tuple[MobilityField, List[int]]:
    """Build the paper's client motion model (Section V-B).

    Clients are divided into motion groups of ``group_size``; each group's
    reference point follows the random waypoint model and members follow the
    reference with a bounded offset (RPGM).  ``group_size == 1`` gives each
    client an individual random waypoint path (span 0).

    Returns the field plus ``group_of`` mapping client index -> group id.
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    trajectories: List[Trajectory] = []
    group_of: List[int] = []
    group_id = 0
    built = 0
    while built < n_clients:
        members = min(group_size, n_clients - built)
        reference = RandomWaypointTrajectory(
            rng, area, v_min, v_max, pause_time=pause_time
        )
        span = 0.0 if members == 1 else group_span
        for _ in range(members):
            trajectories.append(GroupMemberTrajectory(reference, rng, span))
            group_of.append(group_id)
        built += members
        group_id += 1
    return MobilityField(trajectories, resolution=resolution), group_of
