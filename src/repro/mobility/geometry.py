"""Plane geometry helpers for the mobility models."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Rectangle", "euclidean"]


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned service area ``[0, width] x [0, height]``."""

    width: float
    height: float

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"degenerate service area {self.width}x{self.height}")

    def contains(self, point: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Whether ``point`` lies inside the area (inclusive bounds)."""
        x, y = float(point[0]), float(point[1])
        return (
            -tolerance <= x <= self.width + tolerance
            and -tolerance <= y <= self.height + tolerance
        )

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform random point in the area."""
        return np.array(
            [rng.uniform(0.0, self.width), rng.uniform(0.0, self.height)]
        )

    def clamp(self, point: np.ndarray) -> np.ndarray:
        """Project ``point`` onto the area."""
        return np.array(
            [
                min(max(float(point[0]), 0.0), self.width),
                min(max(float(point[1]), 0.0), self.height),
            ]
        )

    @property
    def center(self) -> np.ndarray:
        return np.array([self.width / 2.0, self.height / 2.0])

    @property
    def diagonal(self) -> float:
        return math.hypot(self.width, self.height)


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two points."""
    return math.hypot(float(a[0]) - float(b[0]), float(a[1]) - float(b[1]))


def random_point_in_disc(
    rng: np.random.Generator, radius: float
) -> Tuple[float, float]:
    """A uniform random point in a disc of the given radius around (0, 0)."""
    angle = rng.uniform(0.0, 2.0 * math.pi)
    # sqrt for area-uniform sampling.
    r = radius * math.sqrt(rng.uniform(0.0, 1.0))
    return (r * math.cos(angle), r * math.sin(angle))
