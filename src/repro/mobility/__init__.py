"""Mobility substrate.

Positions are *analytic*: every mobile host owns a lazily-extended
piecewise-linear trajectory, so ``position(t)`` is exact for any time and the
simulation kernel never pays for mobility ticks.

* :mod:`repro.mobility.geometry` — rectangles and vector helpers.
* :mod:`repro.mobility.trajectory` — lazy piecewise-linear trajectories.
* :mod:`repro.mobility.waypoint` — the random waypoint model (Broch et al.).
* :mod:`repro.mobility.rpgm` — the reference point group mobility model
  (Hong et al.), the paper's client motion model.
* :mod:`repro.mobility.field` — position snapshots and neighbor queries over
  a population of trajectories.
"""

from repro.mobility.field import MobilityField, build_group_mobility
from repro.mobility.geometry import Rectangle
from repro.mobility.rpgm import GroupMemberTrajectory
from repro.mobility.trajectory import (
    PiecewiseLinearTrajectory,
    Segment,
    StationaryTrajectory,
    Trajectory,
)
from repro.mobility.waypoint import RandomWaypointTrajectory

__all__ = [
    "GroupMemberTrajectory",
    "MobilityField",
    "PiecewiseLinearTrajectory",
    "RandomWaypointTrajectory",
    "Rectangle",
    "Segment",
    "StationaryTrajectory",
    "Trajectory",
    "build_group_mobility",
]
