"""Lazy piecewise-linear trajectories.

A trajectory is a function ``position(t)``.  Concrete models extend the
segment list on demand: querying a time beyond the last generated segment
triggers generation of further segments, so a simulation only ever pays for
the parts of a path it actually observes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["PiecewiseLinearTrajectory", "Segment", "StationaryTrajectory", "Trajectory"]


@dataclass(frozen=True)
class Segment:
    """Linear motion from ``origin`` at time ``start`` with ``velocity``
    until time ``end`` (``end`` may be ``inf`` for a final segment)."""

    start: float
    end: float
    origin: np.ndarray
    velocity: np.ndarray

    def position(self, t: float) -> np.ndarray:
        """Position at time ``t`` (clamped into [start, end])."""
        dt = min(max(t, self.start), self.end) - self.start
        return self.origin + self.velocity * dt

    @property
    def endpoint(self) -> np.ndarray:
        return self.position(self.end)


class Trajectory:
    """Interface: a time-parameterised path in the plane."""

    def position(self, t: float) -> np.ndarray:
        raise NotImplementedError


class StationaryTrajectory(Trajectory):
    """A host that never moves (used for tests and degenerate setups)."""

    def __init__(self, point):
        self._point = np.asarray(point, dtype=float)

    def position(self, t: float) -> np.ndarray:
        return self._point


class PiecewiseLinearTrajectory(Trajectory):
    """Base class for lazily generated piecewise-linear paths.

    Subclasses implement :meth:`_next_segment`, which must return a segment
    starting exactly where and when the previous one ended.
    """

    def __init__(self, start_time: float, start_point: np.ndarray):
        self._segments: List[Segment] = []
        self._starts: List[float] = []
        self._end_time = float(start_time)
        self._end_point = np.asarray(start_point, dtype=float)

    # -- subclass contract ---------------------------------------------------

    def _next_segment(self, start: float, origin: np.ndarray) -> Segment:
        """Produce the segment beginning at (start, origin)."""
        raise NotImplementedError

    # -- public API ----------------------------------------------------------

    def position(self, t: float) -> np.ndarray:
        return self.active_segment(t).position(t)

    def active_segment(self, t: float) -> Segment:
        """The segment covering time ``t``, generating it on demand.

        Exposed so :class:`~repro.mobility.field.MobilityField` can cache
        segment endpoints in flat arrays and evaluate whole populations
        with vectorised arithmetic instead of per-host calls.
        """
        if self._starts and t < self._starts[0]:
            raise ValueError(
                f"query at t={t} precedes trajectory start {self._starts[0]}"
            )
        self._extend_to(t)
        index = bisect_right(self._starts, t) - 1
        if index < 0:
            # t is before the first generated segment but after start_time:
            # only possible when no segment exists yet (handled by extend).
            index = 0
        return self._segments[index]

    @property
    def generated_until(self) -> float:
        """Latest time covered by already-generated segments."""
        return self._end_time

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    # -- internals -----------------------------------------------------------

    def _extend_to(self, t: float) -> None:
        while self._end_time <= t:
            segment = self._next_segment(self._end_time, self._end_point)
            if segment.start != self._end_time:
                raise ValueError("segment does not start at the trajectory end")
            if segment.end <= segment.start:
                raise ValueError("segment must advance time")
            self._segments.append(segment)
            self._starts.append(segment.start)
            self._end_time = segment.end
            self._end_point = segment.endpoint
