"""Random waypoint mobility (Broch et al., MobiCom'98; the paper's ref [31]).

A host repeatedly picks a uniform random destination in the service area,
moves toward it at a speed drawn uniformly from ``[v_min, v_max]``, then
pauses (the paper uses a one-second pause time).
"""

from __future__ import annotations

import numpy as np

from repro.mobility.geometry import Rectangle, euclidean
from repro.mobility.trajectory import PiecewiseLinearTrajectory, Segment

__all__ = ["RandomWaypointTrajectory"]

_ZERO = np.zeros(2)


class RandomWaypointTrajectory(PiecewiseLinearTrajectory):
    """A lazily generated random-waypoint path."""

    def __init__(
        self,
        rng: np.random.Generator,
        area: Rectangle,
        v_min: float,
        v_max: float,
        pause_time: float = 1.0,
        start_time: float = 0.0,
        start_point: np.ndarray = None,
    ):
        if not 0 < v_min <= v_max:
            raise ValueError(f"need 0 < v_min <= v_max, got {v_min}, {v_max}")
        if pause_time < 0:
            raise ValueError("pause_time must be >= 0")
        self._rng = rng
        self._area = area
        self._v_min = float(v_min)
        self._v_max = float(v_max)
        self._pause_time = float(pause_time)
        self._pausing = False
        if start_point is None:
            start_point = area.random_point(rng)
        elif not area.contains(start_point):
            raise ValueError("start_point outside the service area")
        super().__init__(start_time, start_point)

    def _next_segment(self, start: float, origin: np.ndarray) -> Segment:
        if self._pausing and self._pause_time > 0:
            self._pausing = False
            return Segment(start, start + self._pause_time, origin, _ZERO)
        self._pausing = self._pause_time > 0
        while True:
            target = self._area.random_point(self._rng)
            distance = euclidean(origin, target)
            if distance > 1e-9:
                break
        speed = self._rng.uniform(self._v_min, self._v_max)
        travel_time = distance / speed
        velocity = (target - origin) / travel_time
        return Segment(start, start + travel_time, origin, velocity)
