"""Reference point group mobility (Hong et al.; the paper's ref [30]).

Each motion group has a *reference point* that follows the random waypoint
model.  A member's position is the reference position plus a bounded random
offset that drifts smoothly: every few seconds the member picks a new offset
uniformly in a disc of radius ``span`` and glides linearly toward it.  With a
span of zero the member coincides with the reference, so ``GroupSize = 1``
degenerates to an individual random waypoint model exactly as in Section
VI-C of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.geometry import random_point_in_disc
from repro.mobility.trajectory import (
    PiecewiseLinearTrajectory,
    Segment,
    Trajectory,
)

__all__ = ["GroupMemberTrajectory"]


class _OffsetTrajectory(PiecewiseLinearTrajectory):
    """The member's drift around the group reference point."""

    def __init__(
        self,
        rng: np.random.Generator,
        span: float,
        leg_min: float,
        leg_max: float,
        start_time: float,
    ):
        self._rng = rng
        self._span = float(span)
        self._leg_min = float(leg_min)
        self._leg_max = float(leg_max)
        start = np.array(random_point_in_disc(rng, self._span))
        super().__init__(start_time, start)

    def _next_segment(self, start: float, origin: np.ndarray) -> Segment:
        target = np.array(random_point_in_disc(self._rng, self._span))
        duration = self._rng.uniform(self._leg_min, self._leg_max)
        velocity = (target - origin) / duration
        return Segment(start, start + duration, origin, velocity)


class GroupMemberTrajectory(Trajectory):
    """reference-point position + smooth bounded offset."""

    def __init__(
        self,
        reference: Trajectory,
        rng: np.random.Generator,
        span: float,
        leg_min: float = 5.0,
        leg_max: float = 15.0,
        start_time: float = 0.0,
    ):
        if span < 0:
            raise ValueError("span must be >= 0")
        if not 0 < leg_min <= leg_max:
            raise ValueError("need 0 < leg_min <= leg_max")
        self.reference = reference
        self.span = float(span)
        if span == 0:
            self._offset = None
        else:
            self._offset = _OffsetTrajectory(rng, span, leg_min, leg_max, start_time)

    def position(self, t: float) -> np.ndarray:
        base = self.reference.position(t)
        if self._offset is None:
            return base
        return base + self._offset.position(t)
