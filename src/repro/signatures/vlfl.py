"""Variable-length-to-fixed-length (VLFL) run-length coding (Section IV-D.2).

A sparse cache signature is mostly zeros.  VLFL decomposes the bit sequence
into run-lengths terminated either by ``R = 2^l − 1`` consecutive zeros or
by ``L < R`` zeros followed by a one, and assigns each run a fixed-length
codeword of ``l = log2(R + 1)`` bits.

With zero-probability ``φ = (1 − 1/σ)^(εk)`` the expected run length is
``η = (1 − φ^R) / (1 − φ)`` and the expected compressed size is
``σ' = σ · l / η`` bits.  :func:`find_optimal_r` is the paper's Algorithm 4:
it walks ``R = 1, 3, 7, ...`` while the expected size keeps shrinking.
A client compresses only when ``l < η`` at the optimum, i.e. when the
expected compressed signature is smaller than the raw one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "CompressedSignature",
    "expected_compressed_bits",
    "find_optimal_r",
    "should_compress",
    "vlfl_decode",
    "vlfl_encode",
    "zero_probability",
]


def zero_probability(cache_items: int, size_bits: int, k: int) -> float:
    """φ: probability a given signature bit is zero (ε items hashed k times)."""
    if size_bits < 1 or k < 1 or cache_items < 0:
        raise ValueError("invalid bloom parameters")
    return (1.0 - 1.0 / size_bits) ** (cache_items * k)


def expected_run_length(phi: float, run_cap: int) -> float:
    """η: expected intermediate-symbol length for zero-probability φ."""
    if phi >= 1.0:
        return float(run_cap)
    return (1.0 - phi**run_cap) / (1.0 - phi)


def expected_compressed_bits(size_bits: int, phi: float, run_cap: int) -> float:
    """σ': expected compressed signature size in bits."""
    codeword = math.log2(run_cap + 1)
    return size_bits * codeword / expected_run_length(phi, run_cap)


def find_optimal_r(cache_items: int, size_bits: int, k: int) -> int:
    """Algorithm 4: the run cap ``R = 2^l − 1`` minimising expected size."""
    phi = zero_probability(cache_items, size_bits, k)
    best_size = float(size_bits) + 1.0
    best_r = 1
    for exponent in range(1, 63):
        run_cap = (1 << exponent) - 1
        size = expected_compressed_bits(size_bits, phi, run_cap)
        if size < best_size:
            best_size = size
            best_r = run_cap
        else:
            break
    return best_r


def should_compress(cache_items: int, size_bits: int, k: int) -> bool:
    """The client's local decision of Section IV-D.2.

    Compress iff at the optimal R the codeword length is below the expected
    run length (equivalently: the expected compressed size beats σ).
    """
    phi = zero_probability(cache_items, size_bits, k)
    run_cap = find_optimal_r(cache_items, size_bits, k)
    codeword = math.log2(run_cap + 1)
    return codeword < expected_run_length(phi, run_cap)


@dataclass(frozen=True)
class CompressedSignature:
    """A VLFL-encoded bit vector.

    ``payload`` is the packed codeword stream; ``original_bits`` is σ so the
    decoder can strip the phantom terminator of a trailing zero run.
    """

    run_cap: int
    original_bits: int
    symbol_count: int
    payload: bytes

    @property
    def codeword_bits(self) -> int:
        return max(1, (self.run_cap + 1).bit_length() - 1)

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    @property
    def size_bits(self) -> int:
        return self.symbol_count * self.codeword_bits


def _symbols_for_gap(zeros: int, run_cap: int, terminated: bool) -> List[int]:
    """Symbols encoding ``zeros`` consecutive zeros (+ a one iff terminated)."""
    symbols = [run_cap] * (zeros // run_cap)
    remainder = zeros % run_cap
    if terminated:
        symbols.append(remainder)  # L zeros then the terminating one
    elif remainder:
        symbols.append(remainder)  # tail; decoder truncates the phantom one
    return symbols


def vlfl_encode(bits: np.ndarray, run_cap: int) -> CompressedSignature:
    """Encode a 0/1 vector with run cap ``R`` (must be ``2^l − 1``).

    Works over the positions of set bits, so the cost is linear in the
    number of ones rather than in σ (cache signatures are sparse).
    """
    if run_cap < 1 or (run_cap + 1) & run_cap:
        raise ValueError(f"run cap must be 2**l - 1, got {run_cap}")
    bits = np.asarray(bits).astype(bool)
    ones = np.nonzero(bits)[0]
    boundaries = np.concatenate([[-1], ones])
    gaps = np.diff(boundaries) - 1  # zeros before each one
    symbols: List[int] = []
    for gap in gaps:
        symbols.extend(_symbols_for_gap(int(gap), run_cap, terminated=True))
    tail = len(bits) - (int(ones[-1]) + 1 if ones.size else 0)
    symbols.extend(_symbols_for_gap(tail, run_cap, terminated=False))
    codeword = max(1, (run_cap + 1).bit_length() - 1)
    if symbols:
        values = np.asarray(symbols, dtype=np.uint32)
        shifts = np.arange(codeword - 1, -1, -1, dtype=np.uint32)
        bitstream = ((values[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
        payload = np.packbits(bitstream.ravel()).tobytes()
    else:
        payload = b""
    return CompressedSignature(
        run_cap=run_cap,
        original_bits=len(bits),
        symbol_count=len(symbols),
        payload=payload,
    )


def vlfl_decode(compressed: CompressedSignature) -> np.ndarray:
    """Invert :func:`vlfl_encode`; returns a bool vector of σ bits."""
    result = np.zeros(compressed.original_bits, dtype=bool)
    if compressed.symbol_count == 0:
        return result
    codeword = compressed.codeword_bits
    bitstream = np.unpackbits(np.frombuffer(compressed.payload, dtype=np.uint8))
    bitstream = bitstream[: compressed.symbol_count * codeword]
    weights = 1 << np.arange(codeword - 1, -1, -1, dtype=np.int64)
    values = bitstream.reshape(-1, codeword).astype(np.int64) @ weights
    # Each symbol contributes `value` zeros, plus a terminating one unless
    # it is a full run of R zeros.
    terminated = values != compressed.run_cap
    lengths = values + terminated
    positions = np.cumsum(lengths) - 1  # index of each terminating one
    one_positions = positions[terminated]
    one_positions = one_positions[one_positions < compressed.original_bits]
    result[one_positions] = True
    return result
