"""Bloom filters over item identifiers (Section IV-D.1, ref [28]).

All hosts must hash identically for signatures to be comparable, so the k
hash functions live in a shared :class:`SignatureScheme`: a family of
universal hashes ``h_i(x) = ((a_i x + b_i) mod p) mod σ`` with a large prime
``p`` and coefficients drawn once from a seeded stream.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np

__all__ = ["BloomFilter", "SignatureScheme"]

_PRIME = (1 << 61) - 1  # Mersenne prime > any item id we hash


class SignatureScheme:
    """The shared (σ, k) configuration and hash family."""

    def __init__(self, rng: np.random.Generator, size_bits: int, k: int):
        if size_bits < 1:
            raise ValueError("size_bits must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.size_bits = int(size_bits)
        self.k = int(k)
        self._a = rng.integers(1, _PRIME, size=self.k, dtype=np.int64)
        self._b = rng.integers(0, _PRIME, size=self.k, dtype=np.int64)
        # positions() is a pure function of the item and the (fixed) hash
        # family, and the item universe is small (n_data), so the hot
        # signature paths memoise it instead of redoing the object-dtype
        # modular arithmetic per query.
        self._positions: dict = {}

    def positions(self, item: int) -> Tuple[int, ...]:
        """The k bit positions of ``item``'s data signature (memoised)."""
        item = int(item)
        cached = self._positions.get(item)
        if cached is None:
            values = (
                self._a.astype(object) * item + self._b.astype(object)
            ) % _PRIME
            cached = tuple(int(v % self.size_bits) for v in values)
            self._positions[item] = cached
        return cached

    def make_filter(self) -> "BloomFilter":
        return BloomFilter(self)

    def data_signature(self, item: int) -> "BloomFilter":
        """A Bloom filter containing exactly one item."""
        signature = BloomFilter(self)
        signature.add(item)
        return signature

    # -- analytics (Section IV-D.1) ------------------------------------------

    def false_positive_probability(self, n_items: int) -> float:
        """P(false positive) after inserting ``n_items`` elements."""
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        zero_stays = (1.0 - 1.0 / self.size_bits) ** (n_items * self.k)
        return (1.0 - zero_stays) ** self.k

    @staticmethod
    def optimal_k(size_bits: int, n_items: int) -> int:
        """The k minimising false positives: ``(ln 2) σ / n``."""
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        return max(1, round(math.log(2.0) * size_bits / n_items))


class BloomFilter:
    """A σ-bit Bloom filter over a shared scheme."""

    def __init__(self, scheme: SignatureScheme):
        self.scheme = scheme
        self.bits = np.zeros(scheme.size_bits, dtype=bool)

    def add(self, item: int) -> None:
        for position in self.scheme.positions(item):
            self.bits[position] = True

    def add_all(self, items: Iterable[int]) -> None:
        for item in items:
            self.add(item)

    def might_contain(self, item: int) -> bool:
        """True when all of the item's bits are set (possible member)."""
        return all(self.bits[p] for p in self.scheme.positions(item))

    def superimpose(self, other: "BloomFilter") -> None:
        """Bitwise OR another signature into this one (cache/peer signatures)."""
        if other.scheme is not self.scheme:
            raise ValueError("cannot combine signatures from different schemes")
        self.bits |= other.bits

    def covers(self, other: "BloomFilter") -> bool:
        """Whether this signature has every bit of ``other`` set.

        This is the paper's filtering test: ``search AND peer == search``.
        """
        if other.scheme is not self.scheme:
            raise ValueError("cannot compare signatures from different schemes")
        return bool(np.all(self.bits[other.bits]))

    @property
    def popcount(self) -> int:
        return int(self.bits.sum())

    @property
    def size_bytes(self) -> int:
        """Uncompressed wire size."""
        return (self.scheme.size_bits + 7) // 8

    def copy(self) -> "BloomFilter":
        clone = BloomFilter(self.scheme)
        clone.bits = self.bits.copy()
        return clone
