"""Counting Bloom filter for a client's own cache (Section IV-D.3).

A client regenerates its cache signature after every insertion/eviction; to
make that cheap it maintains σ counters of π_c bits each.  Increments on a
saturated counter are discarded (the counter sticks at ``2^π_c − 1``);
a decrement on a counter that is already zero signals an inconsistency and
the whole vector must be reset and rebuilt from the cache content to avoid
false negatives.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.signatures.bloom import BloomFilter, SignatureScheme

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter:
    """σ saturating counters of π_c bits backing a cache signature."""

    def __init__(self, scheme: SignatureScheme, counter_bits: int = 4):
        if counter_bits < 1:
            raise ValueError("counter_bits must be >= 1")
        self.scheme = scheme
        self.counter_bits = int(counter_bits)
        self.max_value = (1 << self.counter_bits) - 1
        self.counters = np.zeros(scheme.size_bits, dtype=np.int64)
        self.rebuilds = 0

    def add(self, item: int) -> None:
        """Record an insertion into the cache."""
        for position in self.scheme.positions(item):
            if self.counters[position] < self.max_value:
                self.counters[position] += 1

    def remove(self, item: int) -> bool:
        """Record an eviction.  Returns False when a rebuild is required.

        A zero counter cannot be decremented; per the paper the client must
        then reset and reconstruct the vector (call :meth:`rebuild`).
        """
        positions = self.scheme.positions(item)
        if any(self.counters[p] == 0 for p in positions):
            return False
        for position in positions:
            self.counters[position] -= 1
        return True

    def rebuild(self, items: Iterable[int]) -> None:
        """Reset and reconstruct from the full cache content."""
        self.counters[:] = 0
        for item in items:
            self.add(item)
        self.rebuilds += 1

    def signature(self) -> BloomFilter:
        """The cache signature: bit i set iff counter i is non-zero."""
        bloom = BloomFilter(self.scheme)
        bloom.bits = self.counters > 0
        return bloom

    def might_contain(self, item: int) -> bool:
        return all(self.counters[p] > 0 for p in self.scheme.positions(item))
