"""Peer-signature counter vector with dynamic counter width (Section IV-D.4).

A GroCoCa client aggregates the cache signatures of its TCG members into a
vector of σ counters of π_p bits.  π_p is *dynamic*: it starts at zero while
the TCG is empty, grows when a counter would overflow, and contracts when
every counter fits in one fewer bit.  Counters are updated by full signature
collections (SigRequest/SigReply) and by the insertion/eviction bit-position
lists piggybacked on broadcast requests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.signatures.bloom import BloomFilter, SignatureScheme

__all__ = ["PeerSignature"]


class PeerSignature:
    """Aggregated TCG cache signatures with adaptive counter width."""

    def __init__(self, scheme: SignatureScheme):
        self.scheme = scheme
        self.counters = np.zeros(scheme.size_bits, dtype=np.int64)
        self.counter_bits = 0  # π_p; zero while no signatures are merged
        self.expansions = 0
        self.contractions = 0
        # Cached max(counters), maintained incrementally by the update
        # paths so the per-broadcast piggyback deltas skip the full-vector
        # reduction; < 0 marks it stale (recompute on next _fit_width).
        self._peak = 0

    # -- width management -------------------------------------------------------

    def _fit_width(self) -> None:
        if self._peak < 0:
            self._peak = int(self.counters.max()) if self.counters.size else 0
        peak = self._peak
        needed = peak.bit_length() if peak > 0 else 0
        if needed > self.counter_bits:
            self.expansions += needed - self.counter_bits
            self.counter_bits = needed
        else:
            # Contract while all values fall below 2^(π_p − 1).
            while self.counter_bits > needed:
                self.contractions += 1
                self.counter_bits -= 1

    @property
    def memory_bits(self) -> int:
        """Storage footprint of the vector: σ · π_p."""
        return self.scheme.size_bits * self.counter_bits

    # -- updates ------------------------------------------------------------------

    def reset(self) -> None:
        """Forget everything (member departure / reconnection resync)."""
        self.counters[:] = 0
        self.counter_bits = 0
        self._peak = 0

    def merge_signature(self, signature: BloomFilter) -> None:
        """Add one member's full cache signature."""
        if signature.scheme is not self.scheme:
            raise ValueError("signature from a different scheme")
        self.counters += signature.bits
        self._peak = -1  # whole-vector add: recompute lazily
        self._fit_width()

    def apply_update(
        self, insertions: Sequence[int], evictions: Sequence[int]
    ) -> None:
        """Apply a piggybacked insertion/eviction bit-position delta."""
        counters = self.counters
        peak = self._peak
        for position in insertions:
            value = counters[position] + 1
            counters[position] = value
            if peak >= 0 and value > peak:
                peak = int(value)
        for position in evictions:
            value = counters[position]
            if value > 0:
                counters[position] = value - 1
                if value == peak:
                    # The decremented counter may have been the only one
                    # at the peak; a full recompute settles it.
                    peak = -1
        self._peak = peak
        self._fit_width()

    # -- queries ---------------------------------------------------------------------

    def matches_positions(self, positions: Iterable[int]) -> bool:
        """AND-filter: every given bit position is non-zero."""
        return all(self.counters[p] > 0 for p in positions)

    def covers(self, signature: BloomFilter) -> bool:
        """Search-signature test: peers likely cache all of ``signature``."""
        return bool(np.all(self.counters[signature.bits] > 0))

    def bloom(self) -> BloomFilter:
        """Collapse the counters to a plain signature."""
        result = BloomFilter(self.scheme)
        result.bits = self.counters > 0
        return result
