"""Cache signature substrate (Section IV-D).

* :mod:`repro.signatures.bloom` — the shared hash scheme, plain Bloom
  filters and their false-positive mathematics.
* :mod:`repro.signatures.counting` — the counting Bloom filter each client
  keeps for its own cache (π_c-bit saturating counters).
* :mod:`repro.signatures.vlfl` — variable-length-to-fixed-length run-length
  compression, including Algorithm 4 (``find_optimal_r``).
* :mod:`repro.signatures.peer` — the peer-signature counter vector with
  dynamic counter width (π_p expand/contract).
"""

from repro.signatures.bloom import BloomFilter, SignatureScheme
from repro.signatures.counting import CountingBloomFilter
from repro.signatures.peer import PeerSignature
from repro.signatures.vlfl import (
    CompressedSignature,
    expected_compressed_bits,
    find_optimal_r,
    should_compress,
    vlfl_decode,
    vlfl_encode,
)

__all__ = [
    "BloomFilter",
    "CompressedSignature",
    "CountingBloomFilter",
    "PeerSignature",
    "SignatureScheme",
    "expected_compressed_bits",
    "find_optimal_r",
    "should_compress",
    "vlfl_decode",
    "vlfl_encode",
]
