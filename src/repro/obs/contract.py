"""The trace contract: structural well-formedness plus conservation.

:func:`check_trace` is executable documentation of the request protocol.
It verifies, over one run's event list:

* **balance** — every span that opens also closes, and nothing closes
  twice or out of nowhere,
* **monotonicity** — events are recorded in non-decreasing sim-time,
* **containment** — a child span nests inside its parent's interval, and
  a parented instant falls inside its parent span,
* **conservation** — recorded span/instant counts reconcile *exactly*
  with the run's :class:`~repro.core.metrics.Results` counters (requests
  by outcome, searches, bypasses, fallbacks, retries, validations) and
  with the :class:`~repro.sim.profile.RunProfile` fault/NDP counters.

Spans swept by :meth:`~repro.obs.tracer.Tracer.finish` (in flight when
the run stopped) close with ``recorded=False`` and are exempt from
conservation; containment still applies, which is exactly what makes an
instrumentation bug (a span whose close call was lost while its parent
completed) fail loudly instead of masquerading as in-flight work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.metrics import Results
from repro.obs.tracer import Span, TraceEvent, derive_spans
from repro.sim.profile import RunProfile

__all__ = ["check_trace"]


def _recorded(args: Dict[str, object]) -> bool:
    return bool(args.get("recorded", False))


def _check_balance(events: Sequence[TraceEvent], problems: List[str]) -> None:
    open_spans: Set[int] = set()
    closed: Set[int] = set()
    last_time = float("-inf")
    for event in events:
        if event.time < last_time:
            problems.append(
                f"time went backwards: {event.name!r} at {event.time} "
                f"after {last_time}"
            )
        last_time = event.time
        if event.kind == "B":
            if event.span in open_spans or event.span in closed:
                problems.append(f"span {event.span} ({event.name!r}) opened twice")
            open_spans.add(event.span)
        elif event.kind == "E":
            if event.span not in open_spans:
                problems.append(
                    f"span {event.span} ({event.name!r}) closed without opening"
                )
            open_spans.discard(event.span)
            closed.add(event.span)
    for span in sorted(open_spans):
        problems.append(f"span {span} never closed (unbalanced trace)")


def _check_containment(spans: Sequence[Span], problems: List[str]) -> None:
    intervals: Dict[int, Tuple[float, float, str]] = {
        span.span: (span.start, span.end, span.name) for span in spans
    }
    for span in spans:
        if span.parent is None:
            continue
        parent = intervals.get(span.parent)
        if parent is None:
            problems.append(
                f"span {span.span} ({span.name!r}) references unknown "
                f"parent {span.parent}"
            )
            continue
        start, end, parent_name = parent
        if span.start < start or span.end > end:
            problems.append(
                f"span {span.span} ({span.name!r}) [{span.start}, {span.end}] "
                f"escapes parent {span.parent} ({parent_name!r}) "
                f"[{start}, {end}]"
            )


def _check_instants(
    events: Sequence[TraceEvent],
    spans: Sequence[Span],
    problems: List[str],
) -> None:
    intervals = {span.span: (span.start, span.end, span.name) for span in spans}
    for event in events:
        if event.kind != "I" or event.parent is None:
            continue
        parent = intervals.get(event.parent)
        if parent is None:
            problems.append(
                f"instant {event.name!r} references unknown parent {event.parent}"
            )
            continue
        start, end, parent_name = parent
        if not start <= event.time <= end:
            problems.append(
                f"instant {event.name!r} at {event.time} outside parent "
                f"{event.parent} ({parent_name!r}) [{start}, {end}]"
            )


def _count_spans(
    spans: Sequence[Span], name: str, statuses: Optional[Set[str]] = None
) -> int:
    return sum(
        1
        for span in spans
        if span.name == name
        and _recorded(span.args)
        and (statuses is None or span.status in statuses)
    )


def _count_instants(
    events: Sequence[TraceEvent], name: str, recorded_only: bool = True
) -> int:
    return sum(
        1
        for event in events
        if event.kind == "I"
        and event.name == name
        and (not recorded_only or _recorded(event.args))
    )


def _check_conservation(
    events: Sequence[TraceEvent],
    spans: Sequence[Span],
    results: Results,
    problems: List[str],
) -> None:
    def expect(label: str, observed: int, expected: int) -> None:
        if observed != expected:
            problems.append(
                f"conservation: {label}: trace has {observed}, "
                f"Results says {expected}"
            )

    requests = [s for s in spans if s.name == "request" and _recorded(s.args)]
    expect("recorded request spans", len(requests), results.requests)
    by_status = {
        "local_hit": results.local_hits,
        "global_hit": results.global_hits,
        "server": results.server_requests,
        "failure": results.failures,
    }
    for status, expected in by_status.items():
        observed = sum(1 for s in requests if s.status == status)
        expect(f"request status {status!r}", observed, expected)
        # Per-outcome latency accumulators must count the same requests
        # the spans do (zero-count outcomes are omitted from Results).
        latency_count = results.latency_by_outcome.get(status.upper(), (0, 0.0))[0]
        expect(f"latency_by_outcome[{status.upper()!r}]", observed, latency_count)
    tcg_hits = sum(
        1
        for s in requests
        if s.status == "global_hit" and bool(s.args.get("from_tcg"))
    )
    expect("TCG-member global hits", tcg_hits, results.global_hits_tcg)

    searches = [s for s in spans if s.name == "search"]
    opened = sum(1 for s in searches if bool(s.args.get("recorded_open")))
    expect("recorded search spans", opened, results.peer_searches)
    fallbacks = _count_spans(spans, "search", {"timeout", "fallback"})
    expect("MSS fallbacks", fallbacks, results.mss_fallbacks)
    expect(
        "bypassed searches",
        _count_instants(events, "search-bypassed"),
        results.bypassed_searches,
    )
    validations = _count_spans(spans, "validate", {"refreshed", "valid"})
    expect("validations", validations, results.validations)
    expect(
        "validation refreshes",
        _count_spans(spans, "validate", {"refreshed"}),
        results.validation_refreshes,
    )
    expect(
        "search retries",
        _count_instants(events, "search-retry"),
        results.search_retries,
    )
    expect(
        "retrieve retries",
        _count_instants(events, "retrieve-retry"),
        results.retrieve_retries,
    )
    expect(
        "uplink retries",
        _count_instants(events, "uplink-retry"),
        results.uplink_retries,
    )

    # Failure-aware retrieve layer (repro.net.health): each counted event
    # emits exactly one instant inside the retrieve span.  ``.get`` keeps
    # pre-health Results (empty dict) reconciling at zero.
    health_checks = (
        ("retrieve-hedge", "hedge"),
        ("hedge-win", "hedge_win"),
        ("breaker-open", "breaker_trip"),
        ("breaker-probe", "breaker_probe"),
        ("budget-exhausted", "budget_exhausted"),
        ("fast-failover", "fast_failover"),
    )
    for instant, kind in health_checks:
        expect(
            f"health {kind}",
            _count_instants(events, instant),
            results.health.get(kind, 0),
        )


def _check_profile(
    events: Sequence[TraceEvent], profile: RunProfile, problems: List[str]
) -> None:
    counters = profile.counters
    checks = (
        ("ndp-round", "ndp_rounds"),
        ("fault-crash", "fault_crashes"),
    )
    for instant, counter in checks:
        observed = _count_instants(events, instant, recorded_only=False)
        expected = int(counters.get(counter, 0))
        if observed != expected:
            problems.append(
                f"conservation: {instant!r} instants: trace has {observed}, "
                f"RunProfile.counters[{counter!r}] says {expected}"
            )


def check_trace(
    events: Sequence[TraceEvent],
    results: Optional[Results] = None,
    profile: Optional[RunProfile] = None,
) -> List[str]:
    """Verify one run's trace; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    _check_balance(events, problems)
    spans = derive_spans(events)
    _check_containment(spans, problems)
    _check_instants(events, spans, problems)
    if results is not None:
        _check_conservation(events, spans, results, problems)
    if profile is not None:
        _check_profile(events, profile, problems)
    return problems
