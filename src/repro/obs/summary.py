"""Per-phase latency breakdowns from recorded traces.

``repro trace summarize PATH`` renders the output of
:func:`phase_breakdown`: one row per span name (request, local, search,
retrieve, mss, validate, ...) with count, mean / p50 / p95 / max duration
and the total simulated time spent in that phase.  ``PATH`` may be a
``trace.jsonl`` file, a traced-run directory, or a sweep output root —
directories are searched recursively and their runs aggregated into one
table (the per-sweep phase-latency view).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from repro.obs.export import load_events
from repro.obs.tracer import Span, TraceEvent, derive_spans

__all__ = [
    "PhaseStats",
    "find_trace_files",
    "format_breakdown",
    "phase_breakdown",
    "summarize_path",
]


@dataclass(frozen=True)
class PhaseStats:
    """Duration statistics of every span sharing one name."""

    name: str
    count: int
    mean: float
    p50: float
    p95: float
    max: float
    total: float


def phase_breakdown(spans: Sequence[Span]) -> List[PhaseStats]:
    """Duration statistics per span name, widest total first."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
    stats = []
    for name, durations in by_name.items():
        array = np.asarray(durations)
        stats.append(
            PhaseStats(
                name=name,
                count=len(durations),
                mean=float(array.mean()),
                p50=float(np.percentile(array, 50.0)),
                p95=float(np.percentile(array, 95.0)),
                max=float(array.max()),
                total=float(array.sum()),
            )
        )
    stats.sort(key=lambda s: (-s.total, s.name))
    return stats


def format_breakdown(stats: Sequence[PhaseStats], title: str = "") -> str:
    """Render the breakdown as the CLI's text table (durations in ms)."""
    lines = []
    if title:
        lines.append(title)
    header = (
        f"  {'phase':<12} {'count':>7} {'mean':>9} {'p50':>9} "
        f"{'p95':>9} {'max':>9} {'total':>10}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for row in stats:
        lines.append(
            f"  {row.name:<12} {row.count:>7} "
            f"{row.mean * 1e3:>8.2f}m {row.p50 * 1e3:>8.2f}m "
            f"{row.p95 * 1e3:>8.2f}m {row.max * 1e3:>8.2f}m "
            f"{row.total:>9.3f}s"
        )
    if not stats:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


def find_trace_files(path: Path) -> List[Path]:
    """Every ``trace.jsonl`` reachable from ``path`` (file or directory)."""
    path = Path(path)
    if path.is_file():
        return [path]
    if path.is_dir():
        return sorted(path.rglob("trace.jsonl"))
    raise FileNotFoundError(f"no trace file or directory at {path}")


def summarize_path(path: Path) -> str:
    """The ``repro trace summarize`` payload for a file / run / sweep dir."""
    files = find_trace_files(path)
    if not files:
        raise FileNotFoundError(f"no trace.jsonl found under {path}")
    events: List[TraceEvent] = []
    for file in files:
        events.extend(load_events(file))
    title = (
        f"phase latency breakdown: {len(files)} trace(s), "
        f"{len(events)} event(s)"
    )
    return format_breakdown(phase_breakdown(derive_spans(events)), title)
