"""The committed Chrome-trace schema and a dependency-free validator.

``chrome_trace.schema.json`` (committed next to this module) pins the
exact shape :func:`repro.obs.export.write_chrome_trace` emits.  The
validator implements the small JSON-Schema subset that file uses —
``type`` / ``required`` / ``properties`` / ``additionalProperties`` /
``items`` / ``enum`` / ``minimum`` / ``minLength`` — so the trace-contract
tests can validate exports without adding a ``jsonschema`` dependency to
the simulation environment (the test suite cross-checks against the real
``jsonschema`` package whenever it happens to be installed).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

__all__ = ["load_chrome_trace_schema", "validate"]

_SCHEMA_PATH = Path(__file__).resolve().parent / "chrome_trace.schema.json"


def load_chrome_trace_schema() -> Dict[str, object]:
    """The committed schema for ``trace.chrome.json`` exports."""
    with open(_SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    if not isinstance(schema, dict):
        raise ValueError(f"{_SCHEMA_PATH} does not hold a schema object")
    return schema


#: JSON-Schema ``type`` names to the Python shapes they admit.  ``bool``
#: is checked before ``integer``/``number`` because it subclasses int.
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: object, name: str) -> bool:
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    expected = _TYPES.get(name)
    if expected is None:
        raise ValueError(f"unsupported schema type {name!r}")
    return isinstance(value, expected)


def validate(instance: object, schema: Dict[str, object]) -> List[str]:
    """Validate ``instance``; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    _validate(instance, schema, "$", problems)
    return problems


def _validate(
    instance: object,
    schema: Dict[str, object],
    where: str,
    problems: List[str],
) -> None:
    type_name = schema.get("type")
    if isinstance(type_name, str) and not _type_ok(instance, type_name):
        problems.append(
            f"{where}: expected {type_name}, got {type(instance).__name__}"
        )
        return
    enum = schema.get("enum")
    if isinstance(enum, list) and instance not in enum:
        problems.append(f"{where}: {instance!r} is not one of {enum}")
    minimum = schema.get("minimum")
    if (
        isinstance(minimum, (int, float))
        and isinstance(instance, (int, float))
        and not isinstance(instance, bool)
        and instance < minimum
    ):
        problems.append(f"{where}: {instance!r} is below the minimum {minimum}")
    min_length = schema.get("minLength")
    if (
        isinstance(min_length, int)
        and isinstance(instance, str)
        and len(instance) < min_length
    ):
        problems.append(f"{where}: shorter than minLength {min_length}")
    if isinstance(instance, dict):
        required = schema.get("required")
        if isinstance(required, list):
            for key in required:
                if key not in instance:
                    problems.append(f"{where}: missing required key {key!r}")
        properties = schema.get("properties")
        properties = properties if isinstance(properties, dict) else {}
        for key, value in instance.items():
            subschema = properties.get(key)
            if isinstance(subschema, dict):
                _validate(value, subschema, f"{where}.{key}", problems)
            elif schema.get("additionalProperties") is False:
                problems.append(f"{where}: unexpected key {key!r}")
    elif isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                _validate(value, items, f"{where}[{index}]", problems)
