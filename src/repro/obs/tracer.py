"""Span/event tracing over simulated time.

The tracer records three kinds of :class:`TraceEvent`:

* ``B`` — a span opens (``begin``): a named interval keyed by an integer
  span id, optionally parented to an enclosing span,
* ``E`` — a span closes (``end``) with a status string,
* ``I`` — an instant (``instant``): a point event with no duration.

Timestamps are **always** ``env.now`` of the bound
:class:`~repro.sim.kernel.Environment` — callers never pass a time, so a
wall-clock value cannot leak into a trace (the ``obs-raw-time`` simlint
rule guards the call sites of any future API that does take one).

The tracer is passive: it draws no randomness, schedules no events and
never touches simulation state, so attaching it cannot change a run's
:class:`~repro.core.metrics.Results` (the bit-identity tests pin this).
Hot paths guard every call site with ``if tracer is not None`` — a
traced-off run executes not a single tracer instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.sim.kernel import Environment

__all__ = ["Span", "TraceError", "TraceEvent", "Tracer", "derive_spans"]


class TraceError(RuntimeError):
    """Tracer misuse: unbound environment, unknown or double-closed span."""


class TraceEvent:
    """One recorded occurrence (begin / end / instant)."""

    __slots__ = ("kind", "name", "time", "host", "span", "parent", "status", "args")

    def __init__(
        self,
        kind: str,
        name: str,
        time: float,
        host: Optional[int],
        span: int,
        parent: Optional[int],
        status: Optional[str],
        args: Dict[str, object],
    ) -> None:
        self.kind = kind  # "B" | "E" | "I"
        self.name = name
        self.time = time
        self.host = host
        self.span = span  # -1 for instants
        self.parent = parent
        self.status = status  # set on "E" events only
        self.args = args

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (one JSONL line of the event log)."""
        payload: Dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "t": self.time,
        }
        if self.host is not None:
            payload["host"] = self.host
        if self.span >= 0:
            payload["span"] = self.span
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.status is not None:
            payload["status"] = self.status
        if self.args:
            payload["args"] = self.args
        return payload

    def __repr__(self) -> str:
        return (
            f"TraceEvent({self.kind} {self.name!r} t={self.time} "
            f"host={self.host} span={self.span})"
        )


@dataclass(frozen=True)
class Span:
    """One completed interval, derived by pairing a B event with its E."""

    span: int
    name: str
    host: Optional[int]
    start: float
    end: float
    parent: Optional[int]
    status: str
    args: Dict[str, object]

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects :class:`TraceEvent` records in kernel event order."""

    def __init__(self) -> None:
        self._env: Optional[Environment] = None
        self.events: List[TraceEvent] = []
        self._open: Dict[int, TraceEvent] = {}
        self._next_span = 0
        self.finished = False

    def bind(self, env: Environment) -> None:
        """Attach the simulation clock; must happen before any recording."""
        self._env = env

    def _now(self) -> float:
        if self._env is None:
            raise TraceError("tracer is not bound to an Environment yet")
        return self._env.now

    @property
    def open_spans(self) -> int:
        """How many spans are currently open."""
        return len(self._open)

    def begin(
        self,
        name: str,
        host: Optional[int] = None,
        parent: Optional[int] = None,
        **args: object,
    ) -> int:
        """Open a span; returns its id (pass it to :meth:`end`)."""
        span = self._next_span
        self._next_span += 1
        event = TraceEvent("B", name, self._now(), host, span, parent, None, args)
        self.events.append(event)
        self._open[span] = event
        return span

    def end(self, span: int, status: str = "ok", **args: object) -> None:
        """Close an open span with a status string."""
        opened = self._open.pop(span, None)
        if opened is None:
            raise TraceError(f"end() of unknown or already-closed span {span}")
        self.events.append(
            TraceEvent(
                "E", opened.name, self._now(), opened.host, span,
                opened.parent, status, args,
            )
        )

    def instant(
        self,
        name: str,
        host: Optional[int] = None,
        parent: Optional[int] = None,
        **args: object,
    ) -> None:
        """Record a point event."""
        self.events.append(
            TraceEvent("I", name, self._now(), host, -1, parent, None, args)
        )

    def finish(self) -> None:
        """Close every span still open (requests in flight at run end).

        Swept spans close with status ``"unfinished"`` and
        ``recorded=False`` so the trace contract's conservation checks
        never count them against the run's :class:`Results`.
        """
        for span in sorted(self._open, reverse=True):
            self.end(span, status="unfinished", recorded=False)
        self.finished = True

    def spans(self) -> List[Span]:
        """The completed spans, in open order."""
        return derive_spans(self.events)


def derive_spans(events: Iterable[TraceEvent]) -> List[Span]:
    """Pair B/E events into :class:`Span` records (open order).

    A span whose E event is missing (a trace written before
    :meth:`Tracer.finish`, or an injected instrumentation bug) surfaces
    with ``end=start`` and status ``"open"`` so downstream checks can
    flag it rather than crash.
    """
    opened: Dict[int, TraceEvent] = {}
    order: List[int] = []
    closed: Dict[int, Span] = {}
    for event in events:
        if event.kind == "B":
            opened[event.span] = event
            order.append(event.span)
        elif event.kind == "E":
            begin = opened.get(event.span)
            if begin is None:
                continue  # dangling E: reported by the contract checker
            merged = dict(begin.args)
            merged.update(event.args)
            closed[event.span] = Span(
                span=event.span,
                name=begin.name,
                host=begin.host,
                start=begin.time,
                end=event.time,
                parent=begin.parent,
                status=event.status or "ok",
                args=merged,
            )
    spans: List[Span] = []
    for span_id in order:
        span = closed.get(span_id)
        if span is None:
            begin = opened[span_id]
            span = Span(
                span=span_id,
                name=begin.name,
                host=begin.host,
                start=begin.time,
                end=begin.time,
                parent=begin.parent,
                status="open",
                args=dict(begin.args),
            )
        spans.append(span)
    return spans
