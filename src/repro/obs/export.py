"""Trace and time-series exporters.

Three on-disk formats per traced run, all derived from the same event
list:

* ``trace.jsonl`` — one :class:`~repro.obs.tracer.TraceEvent` per line,
  the lossless source of truth (``load_events`` reads it back),
* ``trace.chrome.json`` — Chrome trace-event JSON (open in Perfetto /
  ``chrome://tracing``); sim-time seconds become microseconds, every host
  is a process, spans are ``ph="X"`` complete events, instants are
  thread-scoped ``ph="i"``,
* ``series.csv`` — the sampler's windowed time series.

:func:`export_bundle` writes all of them plus a ``manifest.json`` tying
the trace back to its configuration and results.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.obs.tracer import TraceEvent, derive_spans

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.config import SimulationConfig
    from repro.core.metrics import Results
    from repro.obs.sampler import TimeSeriesSampler

__all__ = [
    "export_bundle",
    "load_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_series_csv",
]

#: Process id used for system-level events (NDP, TCG, kernel) in the
#: Chrome export; host ``h`` maps to pid ``h + 1``.
_SYSTEM_PID = 0


def write_jsonl(events: Iterable[TraceEvent], path: Path) -> Path:
    """One JSON object per line, in recording order."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.as_dict(), sort_keys=True))
            handle.write("\n")
    return path


def load_events(path: Path) -> List[TraceEvent]:
    """Read a ``trace.jsonl`` file back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            events.append(
                TraceEvent(
                    kind=payload["kind"],
                    name=payload["name"],
                    time=float(payload["t"]),
                    host=payload.get("host"),
                    span=int(payload.get("span", -1)),
                    parent=payload.get("parent"),
                    status=payload.get("status"),
                    args=payload.get("args", {}),
                )
            )
    return events


def _pid(host: Optional[int]) -> int:
    return _SYSTEM_PID if host is None else host + 1


def _micros(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace_payload(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """The Chrome trace-event JSON document for one event list."""
    rows: List[Dict[str, object]] = []
    pids = {_SYSTEM_PID}
    for span in derive_spans(events):
        pids.add(_pid(span.host))
        rows.append(
            {
                "name": span.name,
                "ph": "X",
                "cat": "span",
                "pid": _pid(span.host),
                "tid": _pid(span.host),
                "ts": _micros(span.start),
                "dur": _micros(span.duration),
                "args": dict(span.args, status=span.status, span=span.span),
            }
        )
    for event in events:
        if event.kind != "I":
            continue
        pids.add(_pid(event.host))
        rows.append(
            {
                "name": event.name,
                "ph": "i",
                "cat": "instant",
                "pid": _pid(event.host),
                "tid": _pid(event.host),
                "ts": _micros(event.time),
                "s": "t",
                "args": dict(event.args),
            }
        )
    metadata: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {
                "name": "system" if pid == _SYSTEM_PID else f"host {pid - 1}"
            },
        }
        for pid in sorted(pids)
    ]
    return {
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "sim-microseconds"},
        "traceEvents": metadata + rows,
    }


def write_chrome_trace(events: Sequence[TraceEvent], path: Path) -> Path:
    """Write the Perfetto-viewable Chrome trace-event JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_payload(events), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def write_series_csv(sampler: "TimeSeriesSampler", path: Path) -> Path:
    """Write the sampler's time series as CSV (header + one row/sample)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(sampler.columns)
        writer.writerows(sampler.rows)
    return path


def export_bundle(
    observer: object,
    out_dir: Path,
    config: Optional["SimulationConfig"] = None,
    results: Optional["Results"] = None,
) -> Dict[str, Path]:
    """Write every export of one traced run into ``out_dir``.

    ``observer`` is a :class:`~repro.obs.session.Observer`; the directory
    is created if needed.  Returns ``{"jsonl": ..., "chrome": ...,
    "series": ..., "manifest": ...}`` (``series`` only when the observer
    sampled).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    tracer = observer.tracer  # type: ignore[attr-defined]
    sampler = observer.sampler  # type: ignore[attr-defined]
    paths = {
        "jsonl": write_jsonl(tracer.events, out_dir / "trace.jsonl"),
        "chrome": write_chrome_trace(tracer.events, out_dir / "trace.chrome.json"),
    }
    if sampler is not None:
        paths["series"] = write_series_csv(sampler, out_dir / "series.csv")
    manifest: Dict[str, object] = {"events": len(tracer.events)}
    if config is not None:
        manifest["config"] = config.as_dict()
    if results is not None:
        manifest["results"] = results.as_dict()
    manifest_path = out_dir / "manifest.json"
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")
    paths["manifest"] = manifest_path
    return paths
