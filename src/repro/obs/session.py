"""Wiring a tracer + sampler onto runs and sweeps.

:class:`Observer` bundles one :class:`~repro.obs.tracer.Tracer` and
(optionally) one :class:`~repro.obs.sampler.TimeSeriesSampler` for one
run; :func:`~repro.core.simulation.run_simulation` accepts it via the
``observer`` keyword exactly like the invariant monitor.

:func:`run_traced` is the one-call form: run a configuration, export the
JSONL / Chrome / CSV bundle into a directory, return the results and the
written paths.  :func:`traced_runner` adapts it to the
``runner`` hook of :func:`~repro.experiments.parallel.execute_runs`, so
``repro sweep --trace-out DIR`` records one timeline per sweep run (the
function is a module-level partial target, so it pickles into worker
processes); :func:`aggregate_sweep` then folds every per-run timeline
under the output root into one per-sweep phase-latency breakdown.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.metrics import Results
from repro.obs.export import export_bundle
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.simulation import Simulation

__all__ = [
    "Observer",
    "aggregate_sweep",
    "run_traced",
    "trace_slug",
    "traced_runner",
]


class Observer:
    """One run's observability bundle: a tracer plus an optional sampler.

    ``sample_period`` of ``None`` disables the time-series sampler (the
    tracer alone schedules no kernel events at all).
    """

    def __init__(
        self,
        sample_period: Optional[float] = 5.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.sampler = (
            TimeSeriesSampler(sample_period) if sample_period is not None else None
        )

    def attach(self, simulation: "Simulation") -> None:
        """Bind to a built simulation (called by ``Simulation.__init__``)."""
        self.tracer.bind(simulation.env)
        if self.sampler is not None:
            self.sampler.attach(simulation)

    def finalize(self, simulation: "Simulation") -> None:
        """Close open spans and take the final sample (end of run)."""
        self.tracer.finish()
        if self.sampler is not None:
            self.sampler.finalize()


def trace_slug(config: SimulationConfig) -> str:
    """A stable per-config directory name for sweep trace output."""
    from repro.experiments.cache import config_key

    key = config_key(config)
    return f"{config.scheme.value.lower()}-s{config.seed}-{key[:12]}"


def run_traced(
    config: SimulationConfig,
    out_dir: Path,
    sample_period: Optional[float] = 5.0,
    monitor: object = None,
) -> Tuple[Results, Dict[str, Path]]:
    """Run one traced simulation and export the bundle into ``out_dir``."""
    from repro.core.simulation import run_simulation

    observer = Observer(sample_period=sample_period)
    results = run_simulation(config, monitor=monitor, observer=observer)
    paths = export_bundle(observer, Path(out_dir), config=config, results=results)
    return results, paths


def _traced_run(out_root: str, sample_period: float, config: SimulationConfig) -> Results:
    """Module-level sweep runner body (picklable partial target)."""
    results, _paths = run_traced(
        config, Path(out_root) / trace_slug(config), sample_period=sample_period
    )
    return results


def traced_runner(
    out_root: Path, sample_period: float = 5.0
) -> Callable[[SimulationConfig], Results]:
    """A ``runner`` for :func:`~repro.experiments.parallel.execute_runs`.

    Each run writes its bundle to ``out_root/<trace_slug(config)>``; the
    returned callable is a :func:`functools.partial` over module-level
    state, so process-pool workers can unpickle it.
    """
    return functools.partial(_traced_run, str(out_root), sample_period)


def aggregate_sweep(out_root: Path) -> str:
    """Fold every per-run trace under ``out_root`` into one breakdown."""
    from repro.obs.summary import summarize_path

    return summarize_path(Path(out_root))
