"""Periodic time-series sampling of a running simulation.

A :class:`TimeSeriesSampler` is a kernel process in the style of the
invariant monitor's audit loop: every ``period`` simulated seconds it
reads the live simulation — request counters, cache fill, server-channel
queue depths, power totals, NDP neighbourhood sizes, TCG sizes, kernel
event counts — and appends one row.  Between two samples it derives the
*windowed* per-tier hit ratios from the cumulative outcome deltas, so the
series integrates back to the run's aggregate ratios exactly (the
Hypothesis property tests pin this).

Sampling is read-only.  The timeout events it schedules interleave with
the simulation's own events but never change their relative order, so the
simulated outcome is identical for every sample period (also pinned by a
property test).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.core.metrics import RequestOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.simulation import Simulation

__all__ = ["SAMPLE_COLUMNS", "TimeSeriesSampler"]

#: CSV column order of one sample row.
SAMPLE_COLUMNS: Tuple[str, ...] = (
    "t",
    "requests",
    "local_hits",
    "global_hits",
    "server_requests",
    "failures",
    "win_requests",
    "win_local",
    "win_global",
    "win_server",
    "win_failures",
    "win_local_ratio",
    "win_global_ratio",
    "win_server_ratio",
    "cache_fill",
    "uplink_queue",
    "downlink_queue",
    "power_data",
    "power_signature",
    "power_beacon",
    "neighbors_mean",
    "tcg_size_mean",
    "events_processed",
    "pending_events",
    "win_request_rate",
    "win_hot_entropy",
)


class TimeSeriesSampler:
    """Windowed time series of one run, sampled every ``period`` seconds."""

    def __init__(self, period: float = 5.0) -> None:
        if not period > 0:
            raise ValueError(f"sample period must be positive, got {period}")
        self.period = float(period)
        self.rows: List[List[float]] = []
        self._simulation: Optional["Simulation"] = None
        self._last_outcomes: Dict[RequestOutcome, int] = {
            outcome: 0 for outcome in RequestOutcome
        }
        self._last_requests = 0
        self._last_time = 0.0
        self.finalized = False

    @property
    def columns(self) -> Tuple[str, ...]:
        return SAMPLE_COLUMNS

    def attach(self, simulation: "Simulation") -> None:
        """Bind to a built simulation and start the sampling process."""
        if self._simulation is not None:
            raise RuntimeError("sampler is already attached to a simulation")
        self._simulation = simulation
        simulation.env.process(self._run(simulation))

    def _run(self, simulation: "Simulation") -> "Iterator[object]":
        env = simulation.env
        while True:
            yield env.timeout(self.period)
            self.sample()

    def finalize(self) -> None:
        """Take the closing partial-window sample at the end of the run."""
        if not self.finalized:
            self.sample()
            self.finalized = True

    def sample(self) -> None:
        """Append one row read from the live simulation."""
        simulation = self._simulation
        if simulation is None:
            raise RuntimeError("sampler is not attached to a simulation")
        env = simulation.env
        metrics = simulation.metrics
        config = simulation.config

        outcomes = dict(metrics.outcomes)
        win = {
            outcome: outcomes[outcome] - self._last_outcomes[outcome]
            for outcome in RequestOutcome
        }
        win_requests = metrics.requests - self._last_requests
        self._last_outcomes = outcomes
        self._last_requests = metrics.requests

        def ratio(outcome: RequestOutcome) -> float:
            return win[outcome] / win_requests if win_requests else 0.0

        cache_fill = sum(len(client.cache) for client in simulation.clients) / (
            config.n_clients * config.cache_size
        )
        power = simulation.ledger.by_purpose()

        if simulation.ndp is not None:
            counts = [
                int(simulation.ndp.live_neighbors(client.index).size)
                for client in simulation.clients
            ]
            neighbors_mean = sum(counts) / len(counts)
        else:
            neighbors_mean = math.nan
        if simulation.tcg is not None:
            tcg_size_mean = float(simulation.tcg.member.sum()) / config.n_clients
        else:
            tcg_size_mean = math.nan

        # Workload-side window: how many items the demand process drew
        # this window and how concentrated they were.  take_window() is
        # pure counting on the engine — no RNG, no events — so reading
        # it never perturbs the run.
        elapsed = env.now - self._last_time
        self._last_time = env.now
        drawn, hot_entropy = simulation.workload.take_window()
        request_rate = drawn / elapsed if elapsed > 0 else 0.0

        self.rows.append(
            [
                env.now,
                float(metrics.requests),
                float(outcomes[RequestOutcome.LOCAL_HIT]),
                float(outcomes[RequestOutcome.GLOBAL_HIT]),
                float(outcomes[RequestOutcome.SERVER]),
                float(outcomes[RequestOutcome.FAILURE]),
                float(win_requests),
                float(win[RequestOutcome.LOCAL_HIT]),
                float(win[RequestOutcome.GLOBAL_HIT]),
                float(win[RequestOutcome.SERVER]),
                float(win[RequestOutcome.FAILURE]),
                ratio(RequestOutcome.LOCAL_HIT),
                ratio(RequestOutcome.GLOBAL_HIT),
                ratio(RequestOutcome.SERVER),
                cache_fill,
                float(simulation.channel.uplink_queue_length),
                float(simulation.channel.downlink_queue_length),
                power["data"],
                power["signature"],
                power["beacon"],
                neighbors_mean,
                tcg_size_mean,
                float(env.events_processed),
                float(env.pending_events),
                request_rate,
                hot_entropy,
            ]
        )

    def series(self, column: str) -> List[float]:
        """One named column of the sampled time series."""
        try:
            index = SAMPLE_COLUMNS.index(column)
        except ValueError:
            raise KeyError(
                f"unknown sample column {column!r}; "
                f"available: {', '.join(SAMPLE_COLUMNS)}"
            ) from None
        return [row[index] for row in self.rows]
