"""Observability: span tracing, time-series sampling, trace exporters.

See ``docs/OBSERVABILITY.md`` for the span taxonomy, the exporter formats
and the Perfetto workflow.  The layer is strictly read-only: attaching an
:class:`Observer` never changes a run's :class:`~repro.core.metrics.Results`,
and a run without one executes not a single tracing instruction (the
bit-identity and trace-contract test suites pin both properties).
"""

from repro.obs.contract import check_trace
from repro.obs.export import (
    export_bundle,
    load_events,
    write_chrome_trace,
    write_jsonl,
    write_series_csv,
)
from repro.obs.sampler import SAMPLE_COLUMNS, TimeSeriesSampler
from repro.obs.schema import load_chrome_trace_schema, validate
from repro.obs.session import (
    Observer,
    aggregate_sweep,
    run_traced,
    trace_slug,
    traced_runner,
)
from repro.obs.summary import (
    PhaseStats,
    format_breakdown,
    phase_breakdown,
    summarize_path,
)
from repro.obs.tracer import Span, TraceError, TraceEvent, Tracer, derive_spans

__all__ = [
    "SAMPLE_COLUMNS",
    "Observer",
    "PhaseStats",
    "Span",
    "TraceError",
    "TraceEvent",
    "Tracer",
    "TimeSeriesSampler",
    "aggregate_sweep",
    "check_trace",
    "derive_spans",
    "export_bundle",
    "format_breakdown",
    "load_chrome_trace_schema",
    "load_events",
    "phase_breakdown",
    "run_traced",
    "summarize_path",
    "trace_slug",
    "traced_runner",
    "validate",
    "write_chrome_trace",
    "write_jsonl",
    "write_series_csv",
]
