"""Zipf-distributed rank sampling.

Rank ``k`` (1-based) is drawn with probability proportional to ``1 / k**θ``.
``θ = 0`` degenerates to the uniform distribution; larger θ skews accesses
toward the hottest ranks, as in the paper's Fig. 3 sweep.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfGenerator"]


class ZipfGenerator:
    """Inverse-CDF sampler over ranks ``0 .. n-1``."""

    def __init__(self, rng: np.random.Generator, n: int, theta: float):
        if n < 1:
            raise ValueError("need at least one rank")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.rng = rng
        self.n = int(n)
        self.theta = float(theta)
        weights = 1.0 / np.power(np.arange(1, self.n + 1, dtype=float), self.theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def probability(self, rank: int) -> float:
        """P(rank), 0-based."""
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)

    def sample(self) -> int:
        """Draw one 0-based rank."""
        return int(np.searchsorted(self._cdf, self.rng.random(), side="right"))

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` 0-based ranks."""
        return np.searchsorted(self._cdf, self.rng.random(count), side="right")
