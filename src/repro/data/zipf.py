"""Zipf-distributed rank sampling.

Rank ``k`` (1-based) is drawn with probability proportional to ``1 / k**θ``.
``θ = 0`` degenerates to the uniform distribution; larger θ skews accesses
toward the hottest ranks, as in the paper's Fig. 3 sweep.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["ZipfGenerator"]


@lru_cache(maxsize=256)
def _zipf_cdf(n: int, theta: float) -> np.ndarray:
    """The normalised Zipf CDF over ranks ``1..n``, shared across instances.

    A sweep builds one :class:`ZipfGenerator` per host per run, and every
    host of a run repeats the same ``(n, theta)`` — recomputing the
    harmonic normalisation each time was O(hosts x n) of pure waste.  The
    cached array is marked read-only so no sampler can corrupt a sibling's
    table.
    """
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    cdf.flags.writeable = False
    return cdf


class ZipfGenerator:
    """Inverse-CDF sampler over ranks ``0 .. n-1``."""

    def __init__(self, rng: np.random.Generator, n: int, theta: float):
        if n < 1:
            raise ValueError("need at least one rank")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.rng = rng
        self.n = int(n)
        self.theta = float(theta)
        self._cdf = _zipf_cdf(self.n, self.theta)

    def probability(self, rank: int) -> float:
        """P(rank), 0-based."""
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)

    def sample(self) -> int:
        """Draw one 0-based rank."""
        return int(np.searchsorted(self._cdf, self.rng.random(), side="right"))

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` 0-based ranks."""
        return np.searchsorted(self._cdf, self.rng.random(count), side="right")
