"""Workload and server-database substrate.

* :mod:`repro.data.zipf` — Zipf(θ) rank sampling.
* :mod:`repro.data.workload` — per-motion-group access ranges and the
  client request stream (Section V-B).
* :mod:`repro.data.server_db` — the MSS database with its random update
  process and EWMA update-interval TTL model (Sections IV-F and V-C).
"""

from repro.data.server_db import ServerDatabase
from repro.data.workload import AccessPattern, build_access_patterns
from repro.data.zipf import ZipfGenerator

__all__ = [
    "AccessPattern",
    "ServerDatabase",
    "ZipfGenerator",
    "build_access_patterns",
]
