"""Client access patterns (Section V-B).

All members of a motion group share a common *access range*: a window of
``AccessRange`` consecutive item identifiers starting at a random offset
(wrapping around the database).  Within the window accesses follow a Zipf
distribution; the hottest rank is the same item for every group member,
which is what gives cooperative caching its payoff inside a group.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.data.zipf import ZipfGenerator

__all__ = ["AccessPattern", "build_access_patterns"]


class AccessPattern:
    """Zipf accesses over one group's window of the database."""

    def __init__(
        self,
        rng: np.random.Generator,
        n_data: int,
        access_range: int,
        theta: float,
        start: int,
    ):
        if not 1 <= access_range <= n_data:
            raise ValueError(
                f"access_range must be in [1, {n_data}], got {access_range}"
            )
        self.n_data = int(n_data)
        self.access_range = int(access_range)
        self.start = int(start) % self.n_data
        self._zipf = ZipfGenerator(rng, self.access_range, theta)

    @property
    def theta(self) -> float:
        return self._zipf.theta

    def item_for_rank(self, rank: int) -> int:
        """The item id holding the given popularity rank (0 = hottest)."""
        if not 0 <= rank < self.access_range:
            raise IndexError(rank)
        return (self.start + rank) % self.n_data

    def next_rank(self) -> int:
        """Draw the next popularity rank (0 = hottest)."""
        return self._zipf.sample()

    def next_item(self) -> int:
        """Draw the next requested item id."""
        return self.item_for_rank(self.next_rank())

    def covers(self, item: int) -> bool:
        """Whether ``item`` lies inside this pattern's window."""
        offset = (item - self.start) % self.n_data
        return offset < self.access_range


def build_access_patterns(
    rng: np.random.Generator,
    group_of: Sequence[int],
    n_data: int,
    access_range: int,
    theta: float,
) -> List[AccessPattern]:
    """One pattern per client; clients of a group share start and ranking.

    Each group's window start is drawn uniformly at random, per the paper's
    note in Section VI-E ("the access range of each motion group is randomly
    assigned").  Every member gets its own sampler (independent draws) over
    the shared window.
    """
    group_start = {}
    for group in group_of:
        if group not in group_start:
            group_start[group] = int(rng.integers(0, n_data))
    return [
        AccessPattern(rng, n_data, access_range, theta, group_start[group])
        for group in group_of
    ]
