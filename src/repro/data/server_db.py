"""The MSS database with updates and the EWMA TTL model (Sections IV-F, V-C).

Items are updated at ``DataUpdateRate`` items/second at uniformly random
item ids.  For each item the MSS tracks the last-update time ``t_l`` and an
EWMA of the update interval ``u_x``:

    u_x  <-  α (t_c − t_l) + (1 − α) u_x        on every update at t_c

Items idle for longer than their current ``u_x`` are aged the same way by a
periodic examination pass, so a dormant item's TTL horizon keeps growing.
When a client fetches item ``x`` at time ``t_c`` the MSS assigns

    TTL = max(u_x − (t_c − t_l), 0)

i.e. the expected remaining lifetime of the current version.  Items that
have never been updated get an infinite TTL (the paper's default setting is
"no data update").
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sim.kernel import Environment

__all__ = ["ServerDatabase"]


class ServerDatabase:
    """Item versions, the update process, and TTL assignment."""

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        n_data: int,
        update_rate: float = 0.0,
        alpha: float = 0.5,
        examine_interval: float = 30.0,
    ):
        if n_data < 1:
            raise ValueError("need at least one item")
        if update_rate < 0:
            raise ValueError("update_rate must be >= 0")
        if not 0 <= alpha <= 1:
            raise ValueError("alpha must be in [0, 1]")
        if examine_interval <= 0:
            raise ValueError("examine_interval must be positive")
        self.env = env
        self.rng = rng
        self.n_data = int(n_data)
        self.update_rate = float(update_rate)
        self.alpha = float(alpha)
        self.examine_interval = float(examine_interval)
        self.version = np.zeros(self.n_data, dtype=np.int64)
        self._last_update = np.zeros(self.n_data)  # t_l; creation time is 0
        self._interval = np.full(self.n_data, np.nan)  # u_x; nan = never updated
        self.updates_applied = 0
        if self.update_rate > 0:
            env.process(self._update_process())
            env.process(self._examine_process())

    # -- update machinery ---------------------------------------------------------

    def _update_process(self):
        while True:
            yield self.env.timeout(self.rng.exponential(1.0 / self.update_rate))
            self.apply_update(int(self.rng.integers(0, self.n_data)))

    def _examine_process(self):
        while True:
            yield self.env.timeout(self.examine_interval)
            self.examine_idle_items()

    def apply_update(self, item: int) -> None:
        """Install a new version of ``item`` and refresh its EWMA interval."""
        now = self.env.now
        gap = now - self._last_update[item]
        if math.isnan(self._interval[item]):
            self._interval[item] = gap
        else:
            self._interval[item] = (
                self.alpha * gap + (1.0 - self.alpha) * self._interval[item]
            )
        self._last_update[item] = now
        self.version[item] += 1
        self.updates_applied += 1

    def examine_idle_items(self) -> int:
        """Age the EWMA of items idle longer than their current interval.

        Per Section IV-F, ``t_l`` is *not* advanced — only the interval
        estimate grows.  Returns the number of items aged.
        """
        now = self.env.now
        idle_for = now - self._last_update
        stale = ~np.isnan(self._interval) & (idle_for > self._interval)
        if not stale.any():
            return 0
        self._interval[stale] = (
            self.alpha * idle_for[stale] + (1.0 - self.alpha) * self._interval[stale]
        )
        return int(stale.sum())

    # -- client-facing API -----------------------------------------------------------

    def assign_ttl(self, item: int, now: Optional[float] = None) -> float:
        """TTL for a copy of ``item`` fetched at ``now``."""
        if now is None:
            now = self.env.now
        interval = self._interval[item]
        if math.isnan(interval):
            return math.inf
        return max(interval - (now - self._last_update[item]), 0.0)

    def last_update_time(self, item: int) -> float:
        return float(self._last_update[item])

    def update_interval(self, item: int) -> float:
        """Current EWMA update interval (nan when never updated)."""
        return float(self._interval[item])

    def updated_since(self, item: int, retrieve_time: float) -> bool:
        """Whether ``item`` changed after a copy retrieved at ``retrieve_time``.

        This is the MSS-side validation check: ``t_r < t_l``.
        """
        return retrieve_time < self._last_update[item]
