"""GroCoCa / COCA: peer-to-peer cooperative caching in mobile environments.

A full reproduction of Chow, Leong and Chan's COCA (ICDCS'04) and GroCoCa
(IEEE JSAC) cooperative caching schemes, including every substrate the
paper's evaluation depends on: a discrete-event simulation kernel, random
waypoint and reference-point-group mobility, a contended P2P wireless
medium with the Feeney–Nilsson power model, Zipf workloads, an MSS with
TTL-based lazy consistency, and the complete cache signature machinery
(Bloom filters, counting filters, VLFL compression, peer counter vectors).

Quick start::

    from repro import CachingScheme, SimulationConfig, run_simulation

    config = SimulationConfig(scheme=CachingScheme.GC, measure_requests=50)
    results = run_simulation(config)
    print(results.access_latency, results.gch_ratio)
"""

from repro.check import InvariantMonitor, InvariantViolation
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import (
    Metrics,
    RequestOutcome,
    Results,
    TracingDisabledError,
)
from repro.core.simulation import Simulation, compare_schemes, run_simulation
from repro.obs import Observer, TimeSeriesSampler, Tracer, run_traced

__version__ = "1.0.0"

__all__ = [
    "CachingScheme",
    "InvariantMonitor",
    "InvariantViolation",
    "Metrics",
    "Observer",
    "RequestOutcome",
    "Results",
    "Simulation",
    "SimulationConfig",
    "TimeSeriesSampler",
    "Tracer",
    "TracingDisabledError",
    "compare_schemes",
    "run_simulation",
    "run_traced",
    "__version__",
]
