"""Push-only and hybrid delivery client populations.

Both systems reuse the DES kernel and the Zipf workload substrate; the
hybrid system additionally reuses the pull substrate's FCFS server
channels.  The client's radio is modelled awake for the whole pull wait
(it must listen for its reply) and for the index-probe/receive phases of a
broadcast tune, dozing between index and item — the standard (1, m)
energy model, with rates from :class:`repro.delivery.power.ListeningPower`.

``compare_delivery_models`` puts the paper's Section I argument in one
table: push scales but pays cycle-bound latency and doze energy; pull is
fast until the downlink saturates; hybrid sits between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.workload import AccessPattern, build_access_patterns
from repro.delivery.power import ListeningPower
from repro.delivery.schedule import BroadcastSchedule
from repro.net.channel import ServerChannel
from repro.sim.kernel import Environment
from repro.sim.random import RandomStreams
from repro.sim.stats import WelfordAccumulator

__all__ = [
    "DeliveryResults",
    "HybridSystem",
    "PushSystem",
    "compare_delivery_models",
]


@dataclass
class DeliveryResults:
    """Headline metrics of one delivery-model run."""

    model: str
    requests: int
    access_latency: float
    power_per_request: float
    pushed_fraction: float  # share of requests served from the air
    server_requests: int


def aggregate_popularity(
    patterns: Sequence[AccessPattern], n_data: int
) -> np.ndarray:
    """Population-wide access probability per item (the server's view)."""
    popularity = np.zeros(n_data)
    for pattern in patterns:
        for rank in range(pattern.access_range):
            popularity[pattern.item_for_rank(rank)] += pattern._zipf.probability(
                rank
            )
    total = popularity.sum()
    return popularity / total if total > 0 else popularity


class _DeliveryBase:
    """Shared wiring: environment, workload, accumulators."""

    def __init__(
        self,
        n_clients: int,
        n_data: int,
        access_range: int,
        theta: float,
        think_time_mean: float,
        seed: int,
    ):
        self.env = Environment()
        self.n_clients = int(n_clients)
        self.n_data = int(n_data)
        self.think_time_mean = float(think_time_mean)
        streams = RandomStreams(seed)
        self.patterns = build_access_patterns(
            streams.stream("delivery-workload"),
            list(range(n_clients)),
            n_data,
            access_range,
            theta,
        )
        self.rngs = [
            streams.stream(f"delivery-client-{i}") for i in range(n_clients)
        ]
        self.latency = WelfordAccumulator()
        self.energy = WelfordAccumulator()
        self.completed = [0] * n_clients
        self.pushed = 0
        self.server_requests = 0

    def _run_until(self, requests_per_client: int, hard_stop: float) -> None:
        while (
            min(self.completed) < requests_per_client
            and self.env.now < hard_stop
        ):
            self.env.run(until=self.env.now + 50.0)

    def _results(self, model: str) -> DeliveryResults:
        total = sum(self.completed)
        return DeliveryResults(
            model=model,
            requests=total,
            access_latency=self.latency.mean,
            power_per_request=self.energy.mean,
            pushed_fraction=self.pushed / total if total else 0.0,
            server_requests=self.server_requests,
        )


class PushSystem(_DeliveryBase):
    """Clients served exclusively from the broadcast channel."""

    def __init__(
        self,
        n_clients: int,
        n_data: int,
        access_range: int,
        theta: float,
        item_bytes: int = 3072,
        index_bytes: int = 128,
        bandwidth_bps: float = 2_500_000.0,
        index_every: int = 50,
        think_time_mean: float = 1.0,
        listening: Optional[ListeningPower] = None,
        seed: int = 1,
    ):
        super().__init__(
            n_clients, n_data, access_range, theta, think_time_mean, seed
        )
        self.schedule = BroadcastSchedule(
            n_data, item_bytes, index_bytes, bandwidth_bps, index_every
        )
        self.listening = listening or ListeningPower()
        for index in range(n_clients):
            self.env.process(self._client(index))

    def _client(self, index: int):
        pattern, rng = self.patterns[index], self.rngs[index]
        while True:
            yield self.env.timeout(rng.exponential(self.think_time_mean))
            item = pattern.next_item()
            outcome = self.schedule.tune(item, self.env.now)
            yield self.env.timeout(outcome.latency)
            self.latency.add(outcome.latency)
            self.energy.add(
                self.listening.cost(outcome.active_time, outcome.doze_time)
            )
            self.completed[index] += 1
            self.pushed += 1

    def run(
        self, requests_per_client: int = 20, hard_stop: float = 100_000.0
    ) -> DeliveryResults:
        self._run_until(requests_per_client, hard_stop)
        return self._results("push")


class HybridSystem(_DeliveryBase):
    """Hot items on the air, cold items pulled over the server channels."""

    def __init__(
        self,
        n_clients: int,
        n_data: int,
        access_range: int,
        theta: float,
        hot_items: int,
        item_bytes: int = 3072,
        index_bytes: int = 128,
        broadcast_bps: float = 1_250_000.0,
        downlink_bps: float = 1_250_000.0,
        uplink_bps: float = 200_000.0,
        request_bytes: int = 96,
        index_every: int = 50,
        think_time_mean: float = 1.0,
        listening: Optional[ListeningPower] = None,
        seed: int = 1,
    ):
        if not 1 <= hot_items <= n_data:
            raise ValueError("hot_items must be in [1, n_data]")
        super().__init__(
            n_clients, n_data, access_range, theta, think_time_mean, seed
        )
        popularity = aggregate_popularity(self.patterns, n_data)
        ranked = np.argsort(popularity)[::-1]
        self.hot_rank = {int(item): i for i, item in enumerate(ranked[:hot_items])}
        self.schedule = BroadcastSchedule(
            hot_items, item_bytes, index_bytes, broadcast_bps, index_every
        )
        self.channel = ServerChannel(self.env, downlink_bps, uplink_bps)
        self.item_bytes = int(item_bytes)
        self.request_bytes = int(request_bytes)
        self.listening = listening or ListeningPower()
        for index in range(n_clients):
            self.env.process(self._client(index))

    def _client(self, index: int):
        pattern, rng = self.patterns[index], self.rngs[index]
        while True:
            yield self.env.timeout(rng.exponential(self.think_time_mean))
            item = pattern.next_item()
            start = self.env.now
            rank = self.hot_rank.get(item)
            if rank is not None:
                outcome = self.schedule.tune(rank, start)
                yield self.env.timeout(outcome.latency)
                self.energy.add(
                    self.listening.cost(outcome.active_time, outcome.doze_time)
                )
                self.pushed += 1
            else:
                yield from self.channel.send_uplink(self.request_bytes)
                yield from self.channel.send_downlink(self.item_bytes)
                self.server_requests += 1
                # Awake for the whole pull wait.
                self.energy.add(
                    self.listening.cost(self.env.now - start, 0.0)
                )
            self.latency.add(self.env.now - start)
            self.completed[index] += 1

    def run(
        self, requests_per_client: int = 20, hard_stop: float = 100_000.0
    ) -> DeliveryResults:
        self._run_until(requests_per_client, hard_stop)
        return self._results("hybrid")


def compare_delivery_models(
    n_clients: int = 20,
    n_data: int = 2000,
    access_range: int = 200,
    theta: float = 0.5,
    hot_items: int = 200,
    requests_per_client: int = 20,
    bandwidth_bps: float = 2_500_000.0,
    seed: int = 1,
    listening: Optional[ListeningPower] = None,
) -> Dict[str, DeliveryResults]:
    """Push vs hybrid vs pull (plain client-server) on the same workload.

    The pull system reuses the main library's conventional-caching scheme
    with caching disabled in spirit (cache of one item) so the comparison
    isolates the *delivery* models; its radio energy is the awake time over
    the pull latency, like the hybrid's pull path.  The hybrid splits the
    channel budget evenly between the broadcast disk and the downlink.
    """
    listening = listening or ListeningPower()
    push = PushSystem(
        n_clients,
        n_data,
        access_range,
        theta,
        bandwidth_bps=bandwidth_bps,
        listening=listening,
        seed=seed,
    ).run(requests_per_client)
    hybrid = HybridSystem(
        n_clients,
        n_data,
        access_range,
        theta,
        hot_items=hot_items,
        broadcast_bps=bandwidth_bps / 2.0,
        downlink_bps=bandwidth_bps / 2.0,
        listening=listening,
        seed=seed,
    ).run(requests_per_client)

    # Pull: every request goes to the server over the full-rate downlink.
    env = Environment()
    channel = ServerChannel(env, bandwidth_bps, 200_000.0)
    streams = RandomStreams(seed)
    patterns = build_access_patterns(
        streams.stream("delivery-workload"),
        list(range(n_clients)),
        n_data,
        access_range,
        theta,
    )
    latency = WelfordAccumulator()
    energy = WelfordAccumulator()
    completed = [0] * n_clients

    def puller(index):
        pattern = patterns[index]
        client_rng = streams.stream(f"delivery-client-{index}")
        while True:
            yield env.timeout(client_rng.exponential(1.0))
            pattern.next_item()
            start = env.now
            yield from channel.send_uplink(96)
            yield from channel.send_downlink(3072)
            latency.add(env.now - start)
            energy.add(listening.cost(env.now - start, 0.0))
            completed[index] += 1

    for index in range(n_clients):
        env.process(puller(index))
    while min(completed) < requests_per_client and env.now < 100_000.0:
        env.run(until=env.now + 50.0)
    pull = DeliveryResults(
        model="pull",
        requests=sum(completed),
        access_latency=latency.mean,
        power_per_request=energy.mean,
        pushed_fraction=0.0,
        server_requests=sum(completed),
    )
    return {"pull": pull, "push": push, "hybrid": hybrid}
