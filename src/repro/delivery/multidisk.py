"""Multi-disk broadcast scheduling (Acharya et al.'s Broadcast Disks).

A flat disk gives every item the same period; a multi-disk schedule spins
hot items on faster "disks" so they appear several times per major cycle,
trading cold-item latency for hot-item latency.  This is the standard
push-side optimisation the hybrid model of Section I would deploy.

Construction follows the classic algorithm: with relative frequencies
``f_i`` and ``L = lcm(f)``, disk *i* is split into ``L / f_i`` chunks and
each of the ``L`` minor cycles broadcasts the next chunk of every disk.
The flattened slot sequence is then segmented with a (1, m) index exactly
like :class:`~repro.delivery.schedule.BroadcastSchedule`, and
:meth:`tune` returns the same :class:`~repro.delivery.schedule.TuneOutcome`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.delivery.schedule import TuneOutcome

__all__ = ["MultiDiskSchedule"]


def _lcm_all(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result = result * value // math.gcd(result, value)
    return result


class MultiDiskSchedule:
    """Broadcast disks with per-disk relative frequencies + (1, m) index."""

    def __init__(
        self,
        disks: Sequence[Sequence[int]],
        frequencies: Sequence[int],
        item_bytes: int,
        index_bytes: int,
        bandwidth_bps: float,
        index_every: int,
    ):
        if len(disks) != len(frequencies) or not disks:
            raise ValueError("need matching, non-empty disks and frequencies")
        if any(f < 1 for f in frequencies):
            raise ValueError("frequencies must be >= 1")
        if any(not disk for disk in disks):
            raise ValueError("every disk needs at least one item")
        if item_bytes < 1 or index_bytes < 1 or bandwidth_bps <= 0:
            raise ValueError("invalid channel parameters")
        if index_every < 1:
            raise ValueError("index_every must be >= 1")
        seen: set = set()
        for disk in disks:
            for item in disk:
                if item in seen:
                    raise ValueError(f"item {item} appears on two disks")
                seen.add(item)

        self.item_time = item_bytes * 8.0 / bandwidth_bps
        self.index_time = index_bytes * 8.0 / bandwidth_bps

        # Build one major cycle of data slots.
        cycles = _lcm_all(list(frequencies))
        chunked: List[List[List[int]]] = []
        for disk, frequency in zip(disks, frequencies):
            n_chunks = cycles // frequency
            size = -(-len(disk) // n_chunks)  # ceil
            chunks = [
                list(disk[start : start + size])
                for start in range(0, len(disk), size)
            ]
            while len(chunks) < n_chunks:
                chunks.append([])  # padding chunk (dead air skipped below)
            chunked.append(chunks)
        slots: List[int] = []
        for minor in range(cycles):
            for chunks in chunked:
                slots.extend(chunks[minor % len(chunks)])
        self.slots = slots

        self.index_every = min(int(index_every), len(slots))
        self.segments = -(-len(slots) // self.index_every)
        self.segment_time = self.index_time + self.index_every * self.item_time
        self._positions: Dict[int, List[int]] = {}
        for position, item in enumerate(slots):
            self._positions.setdefault(item, []).append(position)

    @property
    def cycle_time(self) -> float:
        return self.segments * self.segment_time

    def broadcasts_per_cycle(self, item: int) -> int:
        return len(self._positions.get(item, ()))

    def _slot_start(self, position: int, cycle_start: float) -> float:
        segment, offset = divmod(position, self.index_every)
        return (
            cycle_start
            + segment * self.segment_time
            + self.index_time
            + offset * self.item_time
        )

    def next_index_end(self, t: float) -> float:
        within = t % self.segment_time
        segment_start = t - within
        if within > 1e-12:
            segment_start += self.segment_time
        return segment_start + self.index_time

    def tune(self, item: int, t: float) -> TuneOutcome:
        """Tune in at ``t`` for ``item``; same contract as the flat disk."""
        positions = self._positions.get(item)
        if not positions:
            raise KeyError(f"item {item} is not on the air")
        index_end = self.next_index_end(t)
        cycle_start = (index_end // self.cycle_time) * self.cycle_time
        best = math.inf
        for candidate_cycle in (cycle_start, cycle_start + self.cycle_time):
            for position in positions:
                slot = self._slot_start(position, candidate_cycle)
                if slot >= index_end - 1e-12:
                    best = min(best, slot)
                    break  # positions are sorted; first hit is earliest
            if best < math.inf:
                break
        received = best + self.item_time
        return TuneOutcome(
            latency=received - t,
            active_time=(index_end - t) + self.item_time,
            doze_time=max(best - index_end, 0.0),
        )
