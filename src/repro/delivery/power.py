"""Listening power for broadcast clients.

The Table I model charges per *message*; a broadcast client's dominant
cost is instead the time its receiver spends awake.  Rates follow the
WaveLAN measurements of the paper's ref [29] (Feeney & Nilsson): idle
(actively listening) ≈ 843 mW, doze ≈ 66 mW — expressed here in µW so the
results share the paper's µW·s unit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ListeningPower"]


@dataclass(frozen=True)
class ListeningPower:
    """Radio power rates in µW (µW·s per second of that state)."""

    active_uw: float = 843_000.0  # receiver awake / receiving
    doze_uw: float = 66_000.0  # doze mode between index and item

    def cost(self, active_time: float, doze_time: float) -> float:
        """Energy in µW·s for one tuning episode."""
        if active_time < 0 or doze_time < 0:
            raise ValueError("times must be non-negative")
        return self.active_uw * active_time + self.doze_uw * doze_time
