"""Data dissemination models beyond pull (Section I of the paper).

The paper motivates COCA against the *push-based* and *hybrid* data
delivery models: broadcast channels scale to any number of clients but
"suffer from longer access latency and higher power consumption, as they
need to tune in to the broadcast and wait for the broadcast index or their
desired items to appear".  This package makes that comparison concrete:

* :mod:`repro.delivery.schedule` — a flat broadcast disk with (1, m)
  air indexing (Imielinski et al.),
* :mod:`repro.delivery.power` — tune/doze listening power,
* :mod:`repro.delivery.models` — push-only and hybrid (push hot items,
  pull the rest) client populations, sharing the DES kernel and the
  pull substrate of the main library.
"""

from repro.delivery.models import (
    DeliveryResults,
    HybridSystem,
    PushSystem,
    compare_delivery_models,
)
from repro.delivery.multidisk import MultiDiskSchedule
from repro.delivery.power import ListeningPower
from repro.delivery.schedule import BroadcastSchedule

__all__ = [
    "BroadcastSchedule",
    "DeliveryResults",
    "HybridSystem",
    "ListeningPower",
    "MultiDiskSchedule",
    "PushSystem",
    "compare_delivery_models",
]
