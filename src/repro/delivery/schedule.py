"""A flat broadcast disk with (1, m) air indexing.

The server cyclically broadcasts its ``n_items`` data items; a full index
of the schedule is interleaved every ``m`` data items so clients can doze.
A client that tunes in at time ``t``:

1. listens (active) until the end of the next index slot,
2. learns its item's slot from the index and dozes,
3. wakes for the item's slot and receives it (active).

All times derive from slot arithmetic — the broadcast channel has no
contention, which is exactly why push scales and why its latency is bound
to the cycle length.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BroadcastSchedule", "TuneOutcome"]


@dataclass(frozen=True)
class TuneOutcome:
    """One client tuning episode."""

    latency: float  # tune-in until the item is fully received
    active_time: float  # radio awake (index probe + index + item)
    doze_time: float  # radio dozing between index and item


class BroadcastSchedule:
    """Cyclic schedule of ``n_items`` items with an index every ``m``."""

    def __init__(
        self,
        n_items: int,
        item_bytes: int,
        index_bytes: int,
        bandwidth_bps: float,
        index_every: int,
    ):
        if n_items < 1:
            raise ValueError("need at least one item on the disk")
        if item_bytes < 1 or index_bytes < 1:
            raise ValueError("sizes must be positive")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if index_every < 1:
            raise ValueError("index_every must be >= 1")
        self.n_items = int(n_items)
        self.item_time = item_bytes * 8.0 / bandwidth_bps
        self.index_time = index_bytes * 8.0 / bandwidth_bps
        self.index_every = min(int(index_every), self.n_items)
        self.segments = -(-self.n_items // self.index_every)  # ceil division
        # One segment: [index][item][item]...[item]
        self.segment_time = self.index_time + self.index_every * self.item_time

    @property
    def cycle_time(self) -> float:
        """Duration of one full broadcast cycle.

        The last segment may hold fewer items but we keep segments uniform
        (the tail is padded), which only lengthens the cycle marginally and
        keeps the arithmetic exact.
        """
        return self.segments * self.segment_time

    def item_slot_start(self, item: int, cycle_start: float) -> float:
        """When ``item``'s slot begins within the cycle at ``cycle_start``."""
        if not 0 <= item < self.n_items:
            raise IndexError(item)
        segment, offset = divmod(item, self.index_every)
        return (
            cycle_start
            + segment * self.segment_time
            + self.index_time
            + offset * self.item_time
        )

    def next_index_end(self, t: float) -> float:
        """End of the first index slot that *begins* at or after ``t``.

        A client tuning in mid-index cannot decode it and must wait for the
        next one, exactly like the (1, m) analysis.
        """
        within = t % self.segment_time
        segment_start = t - within
        if within > 1e-12:
            segment_start += self.segment_time
        return segment_start + self.index_time

    def tune(self, item: int, t: float) -> TuneOutcome:
        """The full tuning episode for ``item`` starting at time ``t``."""
        index_end = self.next_index_end(t)
        # Find the item's next slot at or after the index end.
        cycle_start = (index_end // self.cycle_time) * self.cycle_time
        slot = self.item_slot_start(item, cycle_start)
        while slot < index_end - 1e-12:
            cycle_start += self.cycle_time
            slot = self.item_slot_start(item, cycle_start)
        received = slot + self.item_time
        active = (index_end - t) + self.item_time
        doze = max(slot - index_end, 0.0)
        return TuneOutcome(
            latency=received - t, active_time=active, doze_time=doze
        )

    def expected_latency(self) -> float:
        """Mean access latency for a uniformly random arrival and item.

        Approximately half a segment (index wait) plus half a cycle (item
        wait) plus the item slot itself — the classic (1, m) result.
        """
        return (
            self.segment_time / 2.0
            + self.index_time
            + self.cycle_time / 2.0
            + self.item_time
        )
