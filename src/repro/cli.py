"""Command-line interface.

Six subcommands cover the common workflows::

    python -m repro run      --scheme GC --clients 20 --seed 7 [--check]
    python -m repro compare  --clients 20 --cache-size 30
    python -m repro figure   fig2 --profile quick
    python -m repro sweep    fig2 --jobs 4 --cache results/cache --profile
    python -m repro trace    summarize results/traces
    python -m repro policies list [--namespace replacement]
    python -m repro workloads list
    python -m repro check    golden record|verify [--fixtures DIR]

``run`` simulates one configuration and prints the paper's metrics
(``--check`` attaches the runtime invariant oracle and prints its audit
summary; ``--trace-out DIR`` records a span timeline and exports the
JSONL / Chrome-trace / CSV bundle — see docs/OBSERVABILITY.md);
``compare`` runs LC / CC / GC paired on the same seed; ``figure``
regenerates one of the paper's figures as a text table (see DESIGN.md
for the figure index); ``sweep`` is ``figure`` plus the execution layer
— parallel workers (``--jobs``), the persistent result cache
(``--cache``), per-run profiling output (``--profile``) and per-run
trace bundles (``--trace-out DIR``); ``trace summarize`` folds recorded
timelines into a per-phase latency breakdown; ``check golden`` records
or replays the committed golden-trace fixtures.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Results
from repro.core.simulation import compare_schemes, run_simulation
from repro.policies import registry as policy_registry

__all__ = ["build_parser", "main"]

FIGURES = {
    "fig2": ("sweep_cache_size", "effect of cache size"),
    "fig3": ("sweep_skewness", "effect of access skewness"),
    "fig4": ("sweep_access_range", "effect of access range"),
    "fig5": ("sweep_group_size", "effect of motion group size"),
    "fig6": ("sweep_update_rate", "effect of data update rate"),
    "fig7": ("sweep_n_clients", "effect of number of MHs"),
    "fig8": ("sweep_disconnection", "effect of disconnection probability"),
    "fig-loss": ("sweep_link_loss", "effect of wireless message loss"),
    "fig-policy": (
        "sweep_peer_policy",
        "retrieve scoring policy x P2P fault rate",
    ),
    "fig-matrix": (
        "sweep_policy_matrix",
        "admission/replacement policy x Zipf skewness",
    ),
    "fig-workload": (
        "sweep_workload",
        "workload engine x caching scheme",
    ),
}


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", type=int, help="number of mobile hosts")
    parser.add_argument("--data", type=int, help="database size (items)")
    parser.add_argument("--cache-size", type=int, help="client cache (items)")
    parser.add_argument("--access-range", type=int, help="per-group range")
    parser.add_argument("--theta", type=float, help="Zipf skewness")
    parser.add_argument("--group-size", type=int, help="motion group size")
    parser.add_argument("--update-rate", type=float, help="item updates/s")
    parser.add_argument("--p-disc", type=float, help="disconnection prob.")
    parser.add_argument("--requests", type=int, help="measured requests/client")
    parser.add_argument("--seed", type=int, help="master random seed")
    parser.add_argument(
        "--no-ndp", action="store_true", help="disable beaconing (faster)"
    )
    parser.add_argument(
        "--workload",
        metavar="KEY",
        help="workload registry key (see 'repro workloads list')",
    )
    parser.add_argument(
        "--workload-param",
        metavar="NAME=VALUE",
        action="append",
        dest="workload_param",
        help="one workload parameter (repeatable); VALUE is parsed as "
        "JSON when possible, else kept as a string",
    )


def _add_policy_arguments(parser: argparse.ArgumentParser) -> None:
    """Registry-key overrides (see ``repro policies list``)."""
    parser.add_argument(
        "--admission", metavar="KEY", help="admission policy registry key"
    )
    parser.add_argument(
        "--replacement", metavar="KEY", help="replacement policy registry key"
    )
    parser.add_argument(
        "--discovery", metavar="KEY", help="discovery policy registry key"
    )
    parser.add_argument(
        "--peer-policy", metavar="KEY", help="retrieve peer-scoring key"
    )


_CONFIG_FIELDS = {
    "clients": "n_clients",
    "data": "n_data",
    "cache_size": "cache_size",
    "access_range": "access_range",
    "theta": "theta",
    "group_size": "group_size",
    "update_rate": "data_update_rate",
    "p_disc": "p_disc",
    "requests": "measure_requests",
    "seed": "seed",
    "admission": "admission_policy",
    "replacement": "replacement_policy",
    "discovery": "discovery_policy",
    "peer_policy": "peer_policy",
    "workload": "workload",
}


def _parse_workload_params(pairs: List[str]) -> dict:
    """``NAME=VALUE`` strings -> a ``workload_params`` dict."""
    import json

    params = {}
    for pair in pairs:
        name, separator, text = pair.partition("=")
        if not separator or not name:
            raise argparse.ArgumentTypeError(
                f"--workload-param expects NAME=VALUE, got {pair!r}"
            )
        try:
            params[name] = json.loads(text)
        except json.JSONDecodeError:
            params[name] = text  # e.g. a bare file path
    return params


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    overrides = {}
    for arg_name, field in _CONFIG_FIELDS.items():
        value = getattr(args, arg_name, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "workload_param", None):
        overrides["workload_params"] = _parse_workload_params(args.workload_param)
    if getattr(args, "no_ndp", False):
        overrides["ndp_enabled"] = False
    if getattr(args, "scheme", None):
        # Resolved through the registry's "scheme" namespace (the enum
        # name doubles as the registry key, lowercased).
        overrides["scheme"] = policy_registry.resolve(
            "scheme", args.scheme.lower()
        ).to_enum()
    return SimulationConfig(**overrides)


def _print_results(results: Results) -> None:
    print(f"  scheme                : {results.scheme}")
    print(f"  requests              : {results.requests}")
    print(f"  access latency        : {results.access_latency * 1000:.1f} ms")
    print(f"  server request ratio  : {results.server_request_ratio:.1f} %")
    print(f"  local cache hits      : {results.lch_ratio:.1f} %")
    print(f"  global cache hits     : {results.gch_ratio:.1f} %")
    print(f"  ... from TCG members  : {results.global_hits_tcg}")
    if results.global_hits:
        print(f"  power per GCH         : {results.power_per_gch:,.0f} uW.s")
    print(f"  measured window       : {results.measured_time:.0f} s simulated")


def _job_count(text: str) -> int:
    """argparse type for --jobs: a non-negative worker count."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one per core), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GroCoCa/COCA mobile cooperative caching simulator",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="simulate one configuration")
    run_parser.add_argument(
        "--scheme", choices=[s.name for s in CachingScheme], default="GC"
    )
    run_parser.add_argument(
        "--check",
        action="store_true",
        help="attach the runtime invariant oracle and print its audit summary",
    )
    run_parser.add_argument(
        "--trace-out",
        metavar="DIR",
        help="record a span timeline and export trace.jsonl, "
        "trace.chrome.json and series.csv into DIR",
    )
    run_parser.add_argument(
        "--sample-period",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="time-series sampler period in simulated seconds (default 5)",
    )
    _add_config_arguments(run_parser)
    _add_policy_arguments(run_parser)

    compare_parser = commands.add_parser(
        "compare", help="run LC / CC / GC on the same seed"
    )
    _add_config_arguments(compare_parser)

    figure_parser = commands.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument("figure", choices=sorted(FIGURES))
    figure_parser.add_argument(
        "--profile",
        choices=["quick", "bench", "full"],
        help="scale profile (default: REPRO_PROFILE or bench)",
    )

    sweep_parser = commands.add_parser(
        "sweep",
        help="run a figure sweep with parallel workers, caching, profiling",
    )
    sweep_parser.add_argument("figure", choices=sorted(FIGURES))
    sweep_parser.add_argument(
        "--scale",
        choices=["quick", "bench", "full"],
        help="scale profile (default: REPRO_PROFILE or bench)",
    )
    sweep_parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        metavar="N",
        help="worker processes (1 = serial, 0 = one per core); results are "
        "identical to the serial runner",
    )
    sweep_parser.add_argument(
        "--cache",
        metavar="DIR",
        help="persistent result cache directory; repeated sweeps only "
        "simulate configurations that changed",
    )
    sweep_parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-run wall-clock, events processed and events/s",
    )
    sweep_parser.add_argument(
        "--csv", metavar="PATH", help="also export the table as CSV"
    )
    sweep_parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="kill a run exceeding this wall-clock budget (needs --jobs >= 2)",
    )
    sweep_parser.add_argument(
        "--attempts",
        type=int,
        default=2,
        metavar="N",
        help="executions per run before it is quarantined (default 2)",
    )
    sweep_parser.add_argument(
        "--salvage",
        action="store_true",
        help="keep the partial sweep when runs fail instead of aborting",
    )
    sweep_parser.add_argument(
        "--trace-out",
        metavar="DIR",
        help="record one trace bundle per run under DIR and print the "
        "per-sweep phase-latency breakdown",
    )
    sweep_parser.add_argument(
        "--sample-period",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="time-series sampler period for traced runs (default 5)",
    )

    trace_parser = commands.add_parser(
        "trace", help="inspect recorded trace bundles"
    )
    trace_commands = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )
    summarize_parser = trace_commands.add_parser(
        "summarize",
        help="per-phase latency breakdown of one or many trace bundles",
    )
    summarize_parser.add_argument(
        "path",
        help="a trace.jsonl file, or a directory searched recursively",
    )

    lint_parser = commands.add_parser(
        "lint",
        help="simlint: static determinism / kernel / config-contract checks",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    lint_parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="output_format",
        help="report format on stdout (default text)",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings "
        "(default: simlint-baseline.json)",
    )
    lint_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report every finding as new",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather the current findings",
    )
    lint_parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="remove baseline entries that no longer match any finding "
        "(entries that still fire are kept)",
    )
    lint_parser.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program rules (call-graph / dataflow) "
        "over the full file set",
    )
    lint_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute all findings, bypassing .repro-cache/lint/",
    )
    lint_parser.add_argument(
        "--json-report",
        metavar="FILE",
        help="also write the JSON report to FILE (the CI artifact)",
    )
    lint_parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    policies_parser = commands.add_parser(
        "policies", help="inspect the policy plugin registry"
    )
    policies_commands = policies_parser.add_subparsers(
        dest="policies_command", required=True
    )
    policies_list = policies_commands.add_parser(
        "list", help="print every registered policy key with its summary"
    )
    policies_list.add_argument(
        "--namespace",
        choices=list(policy_registry.NAMESPACES),
        help="only list one namespace",
    )

    workloads_parser = commands.add_parser(
        "workloads", help="inspect the workload engine registry"
    )
    workloads_commands = workloads_parser.add_subparsers(
        dest="workloads_command", required=True
    )
    workloads_commands.add_parser(
        "list", help="print every registered workload key with its summary"
    )

    check_parser = commands.add_parser(
        "check", help="golden-trace fixtures and invariant tooling"
    )
    check_commands = check_parser.add_subparsers(dest="check_command", required=True)
    golden_parser = check_commands.add_parser(
        "golden", help="record or replay the golden-trace fixtures"
    )
    golden_parser.add_argument(
        "action",
        choices=["record", "verify"],
        help="record = overwrite the fixtures from the current code; "
        "verify = replay them and diff field by field",
    )
    golden_parser.add_argument(
        "--fixtures",
        metavar="DIR",
        help="fixture directory (default: tests/golden)",
    )
    return parser


def _run_sweep_command(args: argparse.Namespace) -> int:
    """Handler of the ``sweep`` subcommand."""
    if args.scale:
        os.environ["REPRO_PROFILE"] = args.scale
    # Imported lazily so --scale is respected by the sweep defaults.
    from repro.experiments import sweeps, tables
    from repro.experiments.cache import ResultCache
    from repro.experiments.export import sweep_to_csv
    from repro.experiments.parallel import RunCrashed

    try:
        cache = ResultCache(args.cache) if args.cache else None
    except ValueError as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 2
    sweep_name, title = FIGURES[args.figure]
    sweep = getattr(sweeps, sweep_name)
    failures = []
    execute_kwargs = {}
    if args.trace_out:
        from repro.obs import traced_runner

        if cache is not None:
            print(
                "repro sweep: warning: cached runs are not re-simulated and "
                "leave no trace bundle",
                file=sys.stderr,
            )
        execute_kwargs["runner"] = traced_runner(
            Path(args.trace_out), sample_period=args.sample_period
        )
    try:
        table = sweep(
            progress=lambda line: print(f"  {line}", file=sys.stderr),
            jobs=args.jobs,
            cache=cache,
            timeout=args.timeout,
            attempts=args.attempts,
            salvage=args.salvage,
            failures_out=failures,
            **execute_kwargs,
        )
    except RunCrashed as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        print("repro sweep: rerun with --salvage to keep the partial sweep",
              file=sys.stderr)
        return 1
    for failure in failures:
        print(
            f"repro sweep: warning: {failure.label} quarantined after "
            f"{failure.attempts} attempt(s): {failure.error}",
            file=sys.stderr,
        )
    print(tables.format_sweep_table(table, title))
    if args.profile:
        print(tables.format_profile_report(table))
    if cache is not None:
        print(
            f"cache {cache.directory}: {cache.hits} hits, "
            f"{cache.misses} misses, {cache.stores} stored",
            file=sys.stderr,
        )
    if args.csv:
        sweep_to_csv(table, args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.trace_out:
        from repro.obs import aggregate_sweep

        try:
            print(aggregate_sweep(Path(args.trace_out)))
        except FileNotFoundError:
            print(
                f"repro sweep: warning: no trace bundles under "
                f"{args.trace_out} (all runs cached?)",
                file=sys.stderr,
            )
    return 0


def _run_trace_command(args: argparse.Namespace) -> int:
    """Handler of the ``trace`` subcommand."""
    # Imported lazily: the observability layer is not needed by simulations.
    from repro.obs import summarize_path

    try:
        print(summarize_path(Path(args.path)))
    except FileNotFoundError as error:
        print(f"repro trace: error: {error}", file=sys.stderr)
        return 2
    return 0


def _run_lint_command(args: argparse.Namespace) -> int:
    """Handler of the ``lint`` subcommand."""
    # Imported lazily: the analysis package is not needed by simulations.
    from repro.analysis.runner import (
        DEFAULT_BASELINE,
        render_rule_catalogue,
        run_lint,
    )

    if args.rules:
        print(render_rule_catalogue())
        return 0
    if args.no_baseline:
        baseline: Optional[Path] = None
    elif args.baseline is not None:
        baseline = Path(args.baseline)
    else:
        baseline = DEFAULT_BASELINE
    if (args.update_baseline or args.prune_baseline) and baseline is None:
        print(
            "repro lint: error: --update-baseline/--prune-baseline "
            "conflict with --no-baseline",
            file=sys.stderr,
        )
        return 2
    if args.update_baseline and args.prune_baseline:
        print(
            "repro lint: error: --update-baseline and --prune-baseline "
            "are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    return run_lint(
        [Path(p) for p in args.paths],
        baseline_path=baseline,
        update_baseline=args.update_baseline,
        prune_baseline=args.prune_baseline,
        output_format=args.output_format,
        json_report=Path(args.json_report) if args.json_report else None,
        project=args.project,
        use_cache=not args.no_cache,
    )


def _run_policies_command(args: argparse.Namespace) -> int:
    """Handler of the ``policies`` subcommand."""
    namespaces = (
        [args.namespace] if args.namespace else list(policy_registry.NAMESPACES)
    )
    for namespace in namespaces:
        print(f"{namespace}:")
        for info in policy_registry.entries(namespace):
            print(f"  {info.key:<16} {info.summary}")
            if info.citation:
                print(f"  {'':<16} [{info.citation}]")
    return 0


def _run_workloads_command(args: argparse.Namespace) -> int:
    """Handler of the ``workloads`` subcommand."""
    from repro.workloads import registry as workload_registry

    for info in workload_registry.entries():
        print(f"  {info.key:<18} {info.summary}")
        if info.citation:
            print(f"  {'':<18} [{info.citation}]")
    return 0


def _run_check_command(args: argparse.Namespace) -> int:
    """Handler of the ``check`` subcommand."""
    # Imported lazily: golden pulls in the experiments layer.
    from repro.check import golden

    directory = Path(args.fixtures) if args.fixtures else golden.default_fixtures_dir()
    if args.action == "record":
        paths = golden.record(directory)
        for path in paths:
            print(f"recorded {path}")
        return 0
    try:
        diffs = golden.verify(directory)
    except FileNotFoundError as error:
        print(f"repro check: error: {error}", file=sys.stderr)
        return 2
    failed = False
    for name in sorted(diffs):
        mismatches = diffs[name]
        if mismatches:
            failed = True
            print(f"FAIL {name}: {len(mismatches)} field(s) differ")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"ok   {name}")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        config = _config_from_args(args)
        print(f"Simulating {config.scheme.value} "
              f"with {config.n_clients} clients ...")
        monitor = None
        if args.check:
            from repro.check import InvariantMonitor

            monitor = InvariantMonitor()
        if args.trace_out:
            from repro.obs import (
                Observer,
                export_bundle,
                format_breakdown,
                phase_breakdown,
            )

            observer = Observer(sample_period=args.sample_period)
            results = run_simulation(config, monitor=monitor, observer=observer)
            _print_results(results)
            paths = export_bundle(
                observer, Path(args.trace_out), config=config, results=results
            )
            for kind in sorted(paths):
                print(f"wrote {paths[kind]}", file=sys.stderr)
            print(
                format_breakdown(
                    phase_breakdown(observer.tracer.spans()),
                    title="phase latency",
                )
            )
        else:
            _print_results(run_simulation(config, monitor=monitor))
        if monitor is not None:
            print(monitor.report().summary())
        return 0
    if args.command == "compare":
        config = _config_from_args(args)
        print(f"Comparing LC / CC / GC with {config.n_clients} clients ...")
        for name, results in compare_schemes(config).items():
            print(f"\n--- {name} ---")
            _print_results(results)
        return 0
    if args.command == "figure":
        if args.profile:
            os.environ["REPRO_PROFILE"] = args.profile
        # Imported lazily so --profile is respected by the sweep defaults.
        from repro.experiments import sweeps, tables

        sweep_name, title = FIGURES[args.figure]
        sweep = getattr(sweeps, sweep_name)
        table = sweep(progress=lambda line: print(f"  {line}", file=sys.stderr))
        print(tables.format_sweep_table(table, title))
        return 0
    if args.command == "sweep":
        return _run_sweep_command(args)
    if args.command == "lint":
        return _run_lint_command(args)
    if args.command == "trace":
        return _run_trace_command(args)
    if args.command == "policies":
        return _run_policies_command(args)
    if args.command == "workloads":
        return _run_workloads_command(args)
    if args.command == "check":
        return _run_check_command(args)
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
