"""Metrics in the paper's reporting vocabulary.

The four request outcomes of Section III (local cache hit, global cache
hit, server request, access failure) plus access latency and the power
ledger give every series the evaluation section plots:

* access latency (s),
* server request ratio (%),
* global / local cache hit ratios (%),
* power consumption per global cache hit (µW·s).

Recording begins only after warm-up (``start_recording``); power is taken
as the ledger delta over the recording window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.power import PowerLedger
from repro.sim.profile import RunProfile
from repro.sim.stats import WelfordAccumulator

__all__ = [
    "HEALTH_EVENT_KINDS",
    "Metrics",
    "RequestOutcome",
    "RequestTrace",
    "Results",
    "TracingDisabledError",
]

#: Event kinds of the failure-aware retrieve layer (repro.net.health)
#: countable via :meth:`Metrics.record_health`.  All absent from
#: :attr:`Results.health` when the layer is off, keeping pre-health
#: fixtures comparable.
HEALTH_EVENT_KINDS = (
    "hedge",
    "hedge_win",
    "breaker_trip",
    "breaker_probe",
    "budget_exhausted",
    "fast_failover",
)


class TracingDisabledError(RuntimeError):
    """A per-request trace query was made on an untraced :class:`Metrics`.

    Raised by :meth:`Metrics.latency_percentiles` and
    :meth:`Metrics.client_timeline` when the instance was built with
    ``trace=False``; the message names the query and says how to enable
    tracing.
    """

    def __init__(self, query: str) -> None:
        super().__init__(
            f"{query} needs per-request traces, but this Metrics was built "
            "with trace=False; construct it with Metrics(scheme, trace=True) "
            "or run with SimulationConfig(trace_requests=True)"
        )
        self.query = query


class RequestOutcome(Enum):
    """Section III's four outcomes of a client request."""

    LOCAL_HIT = auto()
    GLOBAL_HIT = auto()
    SERVER = auto()
    FAILURE = auto()


@dataclass(frozen=True)
class RequestTrace:
    """One traced request (recorded when tracing is enabled)."""

    time: float
    client: int
    outcome: RequestOutcome
    latency: float
    from_tcg: bool


@dataclass
class Results:
    """One simulated experiment's summary (one point of a paper figure)."""

    scheme: str
    requests: int
    local_hits: int
    global_hits: int
    global_hits_tcg: int
    server_requests: int
    failures: int
    access_latency: float
    latency_stddev: float
    power_data: float
    power_signature: float
    power_beacon: float
    power_per_gch: float
    validations: int
    validation_refreshes: int
    bypassed_searches: int
    peer_searches: int
    measured_time: float
    sim_time: float
    #: recovery-effort counters (all zero in the fault-free model):
    #: re-floods of unanswered searches, retrieves re-sent to another reply
    #: target, server transactions re-tried after a lost channel message,
    #: and peer searches that fell back to the MSS.
    search_retries: int = 0
    retrieve_retries: int = 0
    uplink_retries: int = 0
    mss_fallbacks: int = 0
    #: failure-aware retrieve counters (hedges, breaker trips, ...), keyed
    #: by :data:`HEALTH_EVENT_KINDS`; empty whenever the health layer is
    #: disabled, and omitted from golden fixtures in that case.
    health: Dict[str, int] = field(default_factory=dict)
    #: per-outcome (count, mean latency) pairs, keyed by outcome name
    latency_by_outcome: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    #: wall-clock / events-processed instrumentation of the run that
    #: produced this result.  Excluded from equality: two runs of the same
    #: configuration are "identical" over the simulated outcome, not timing.
    profile: Optional[RunProfile] = field(default=None, compare=False, repr=False)

    @property
    def lch_ratio(self) -> float:
        """% of requests answered from the local cache."""
        return 100.0 * self.local_hits / self.requests if self.requests else 0.0

    @property
    def gch_ratio(self) -> float:
        """% of requests answered by peers."""
        return 100.0 * self.global_hits / self.requests if self.requests else 0.0

    @property
    def server_request_ratio(self) -> float:
        """% of requests that had to be served by the MSS."""
        return 100.0 * self.server_requests / self.requests if self.requests else 0.0

    @property
    def failure_ratio(self) -> float:
        return 100.0 * self.failures / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme,
            "requests": self.requests,
            "access_latency": self.access_latency,
            "server_request_ratio": self.server_request_ratio,
            "gch_ratio": self.gch_ratio,
            "lch_ratio": self.lch_ratio,
            "power_per_gch": self.power_per_gch,
            "failure_ratio": self.failure_ratio,
        }


class Metrics:
    """Accumulates outcomes; produces :class:`Results`.

    With ``trace=True`` every recorded request is also kept as a
    :class:`RequestTrace`, enabling percentile analysis and per-client
    timelines at the cost of memory proportional to the request count.
    """

    def __init__(self, scheme: str, trace: bool = False):
        self.scheme = scheme
        self.trace = trace
        self.traces: List[RequestTrace] = []
        self.recording = False
        self.requests = 0
        self.outcomes: Dict[RequestOutcome, int] = {o: 0 for o in RequestOutcome}
        self.global_hits_tcg = 0
        self.validations = 0
        self.validation_refreshes = 0
        self.bypassed_searches = 0
        self.peer_searches = 0
        self.retries = {"search": 0, "retrieve": 0, "uplink": 0}
        self.mss_fallbacks = 0
        self.health_events: Dict[str, int] = {}
        self.latency = WelfordAccumulator()
        self.latency_by_outcome: Dict[RequestOutcome, WelfordAccumulator] = {
            o: WelfordAccumulator() for o in RequestOutcome
        }
        self.per_client_requests: Optional[list] = None
        self._record_start_time = 0.0
        self._power_baseline: Dict[str, float] = {}

    def start_recording(
        self, now: float, ledger: PowerLedger, n_clients: int
    ) -> None:
        """End of warm-up: zero every counter and snapshot the ledger."""
        self.recording = True
        self._record_start_time = now
        self._power_baseline = ledger.by_purpose()
        self.per_client_requests = [0] * n_clients

    def record_request(
        self,
        client: int,
        outcome: RequestOutcome,
        latency: float,
        from_tcg: bool = False,
        now: float = math.nan,
    ) -> None:
        if not self.recording:
            return
        self.requests += 1
        self.outcomes[outcome] += 1
        if outcome is RequestOutcome.GLOBAL_HIT and from_tcg:
            self.global_hits_tcg += 1
        if outcome is not RequestOutcome.FAILURE:
            # A failed access never completed: its elapsed time is how long
            # the host tried, not an access latency, so it is kept in the
            # per-outcome breakdown but excluded from the headline mean.
            self.latency.add(latency)
        self.latency_by_outcome[outcome].add(latency)
        if self.per_client_requests is not None:
            self.per_client_requests[client] += 1
        if self.trace:
            self.traces.append(
                RequestTrace(
                    time=now,
                    client=client,
                    outcome=outcome,
                    latency=latency,
                    from_tcg=from_tcg,
                )
            )

    def latency_percentiles(
        self,
        percentiles: Sequence[float] = (50.0, 90.0, 99.0),
        outcome: Optional[RequestOutcome] = None,
    ) -> Dict[float, float]:
        """Latency percentiles from the trace (requires ``trace=True``)."""
        if not self.trace:
            raise TracingDisabledError("latency_percentiles")
        values = [
            t.latency
            for t in self.traces
            if outcome is None or t.outcome is outcome
        ]
        if not values:
            return {p: math.nan for p in percentiles}
        points = np.percentile(values, list(percentiles))
        return dict(zip(percentiles, (float(v) for v in points)))

    def client_timeline(self, client: int) -> List[RequestTrace]:
        """All traced requests of one client, in time order."""
        if not self.trace:
            raise TracingDisabledError("client_timeline")
        return [t for t in self.traces if t.client == client]

    def record_validation(self, refreshed: bool) -> None:
        if not self.recording:
            return
        self.validations += 1
        if refreshed:
            self.validation_refreshes += 1

    def record_search(self, bypassed: bool) -> None:
        if not self.recording:
            return
        if bypassed:
            self.bypassed_searches += 1
        else:
            self.peer_searches += 1

    def record_retry(self, kind: str) -> None:
        """Count one protocol retry (``search`` / ``retrieve`` / ``uplink``)."""
        if kind not in self.retries:
            raise ValueError(f"unknown retry kind {kind!r}")
        if not self.recording:
            return
        self.retries[kind] += 1

    def record_health(self, kind: str) -> None:
        """Count one failure-aware retrieve event (see HEALTH_EVENT_KINDS)."""
        if kind not in HEALTH_EVENT_KINDS:
            raise ValueError(f"unknown health event kind {kind!r}")
        if not self.recording:
            return
        self.health_events[kind] = self.health_events.get(kind, 0) + 1

    def record_fallback(self) -> None:
        """Count one peer search that had to fall back to the MSS."""
        if not self.recording:
            return
        self.mss_fallbacks += 1

    def min_client_requests(self) -> int:
        if not self.per_client_requests:
            return 0
        return min(self.per_client_requests)

    def results(
        self,
        now: float,
        ledger: PowerLedger,
        count_beacon_power: bool = False,
    ) -> Results:
        by_purpose = ledger.by_purpose()
        baseline = self._power_baseline or {key: 0.0 for key in by_purpose}
        power = {key: by_purpose[key] - baseline.get(key, 0.0) for key in by_purpose}
        gch = self.outcomes[RequestOutcome.GLOBAL_HIT]
        counted = power["data"] + power["signature"]
        if count_beacon_power:
            counted += power["beacon"]
        power_per_gch = counted / gch if gch else math.inf
        per_outcome = {
            outcome.name: (acc.count, acc.mean)
            for outcome, acc in self.latency_by_outcome.items()
            if acc.count
        }
        return Results(
            scheme=self.scheme,
            requests=self.requests,
            local_hits=self.outcomes[RequestOutcome.LOCAL_HIT],
            global_hits=gch,
            global_hits_tcg=self.global_hits_tcg,
            server_requests=self.outcomes[RequestOutcome.SERVER],
            failures=self.outcomes[RequestOutcome.FAILURE],
            access_latency=self.latency.mean,
            latency_stddev=self.latency.stddev,
            power_data=power["data"],
            power_signature=power["signature"],
            power_beacon=power["beacon"],
            power_per_gch=power_per_gch,
            validations=self.validations,
            validation_refreshes=self.validation_refreshes,
            bypassed_searches=self.bypassed_searches,
            peer_searches=self.peer_searches,
            measured_time=now - self._record_start_time,
            sim_time=now,
            search_retries=self.retries["search"],
            retrieve_retries=self.retries["retrieve"],
            uplink_retries=self.retries["uplink"],
            mss_fallbacks=self.mss_fallbacks,
            health=dict(self.health_events),
            latency_by_outcome=per_outcome,
        )
