"""COCA protocol helpers (Section III).

The COCA search protocol broadcasts a ``request`` to peers within
``HopDist`` hops and takes the first ``reply`` as the target peer.  If no
reply arrives within the timeout τ the client falls back to the MSS.

τ is adaptive: it starts at the round-trip estimate for a search at the
maximal hop distance scaled by the congestion factor φ,

    τ₀ = HopDist · (|request| + |reply|) / BW_P2P · φ,

and thereafter tracks the observed search round-trips as ``τ = τ̄ + φ'·σ_τ``
with τ̄/σ_τ maintained incrementally (Welford / Knuth TAOCP vol. 2).
"""

from __future__ import annotations

from repro.sim.stats import WelfordAccumulator

__all__ = ["AdaptiveTimeout", "initial_timeout"]


def initial_timeout(
    hop_dist: int,
    request_bytes: int,
    reply_bytes: int,
    bw_p2p_bps: float,
    congestion_phi: float,
) -> float:
    """τ₀ of Section III."""
    if hop_dist < 1:
        raise ValueError("hop_dist must be >= 1")
    if bw_p2p_bps <= 0:
        raise ValueError("bandwidth must be positive")
    round_trip = (request_bytes + reply_bytes) * 8.0 / bw_p2p_bps
    return hop_dist * round_trip * congestion_phi


class AdaptiveTimeout:
    """τ = τ̄ + φ'·σ_τ over observed peer-search round-trips."""

    def __init__(self, initial: float, deviation_phi: float):
        if initial <= 0:
            raise ValueError("initial timeout must be positive")
        if deviation_phi < 0:
            raise ValueError("deviation_phi must be >= 0")
        self.initial = float(initial)
        self.deviation_phi = float(deviation_phi)
        self._samples = WelfordAccumulator()

    def observe(self, round_trip: float) -> None:
        """Record the duration from broadcast to first reply."""
        if round_trip < 0:
            raise ValueError("round trip cannot be negative")
        self._samples.add(round_trip)

    def current(self) -> float:
        """The timeout to use for the next peer search.

        Floored at the initial τ₀: with few samples the deviation term can
        collapse to zero and pin τ below any feasible round trip, after
        which every search times out and no further samples ever arrive —
        a one-sample deadlock the floor removes.  Congestion still adapts
        the timeout upward exactly as in the paper.
        """
        if self._samples.count == 0:
            return self.initial
        adaptive = self._samples.mean + self.deviation_phi * self._samples.stddev
        return max(adaptive, self.initial)

    @property
    def sample_count(self) -> int:
        return self._samples.count
