"""Client-side cache signature state machine (Section IV-D.3..5).

Each GroCoCa client keeps

* a counting Bloom filter over its *own* cache (proactive signature
  regeneration, π_c-bit counters),
* a :class:`~repro.signatures.peer.PeerSignature` counter vector
  aggregating its TCG members' signatures (dynamic π_p),
* its view of the TCG membership, the ``OutstandSigList`` of members that
  have not yet turned in a signature, and the piggyback delta since the
  last broadcast request.

The piggybacked *signature update information* is the insertion/eviction
lists of Section IV-D.4: bit positions whose value flipped since the last
broadcast; a position flipping twice annihilates (we realise this by
diffing the current signature against the last broadcast one).

Network I/O stays in the client; this class only decides *what* must be
sent, which keeps the protocol unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.signatures.bloom import BloomFilter, SignatureScheme
from repro.signatures.counting import CountingBloomFilter
from repro.signatures.peer import PeerSignature
from repro.signatures.vlfl import (
    find_optimal_r,
    should_compress,
    vlfl_decode,
    vlfl_encode,
)

__all__ = ["MembershipActions", "SignatureAgent"]


@dataclass
class MembershipActions:
    """What the client must do after a TCG membership change."""

    request_from: Set[int] = field(default_factory=set)  # unicast SigRequest
    recollect: bool = False  # reset vector + broadcast SigRequest to members


class SignatureAgent:
    """All GroCoCa signature state of one client."""

    def __init__(
        self,
        scheme: SignatureScheme,
        counter_bits: int,
        compression_enabled: bool = True,
        recollect_batch: int = 1,
    ):
        if recollect_batch < 1:
            raise ValueError("recollect_batch must be >= 1")
        self.scheme = scheme
        self.own = CountingBloomFilter(scheme, counter_bits)
        self.peer = PeerSignature(scheme)
        self.members: Set[int] = set()
        self.outstanding: Set[int] = set()  # OutstandSigList
        self.compression_enabled = compression_enabled
        self.recollect_batch = int(recollect_batch)
        self._departures = 0
        self._last_broadcast = np.zeros(scheme.size_bits, dtype=bool)
        self.signatures_sent_compressed = 0
        self.signatures_sent_raw = 0
        self.signature_bytes_sent = 0

    # -- own cache signature ----------------------------------------------------

    def record_insert(self, item: int) -> None:
        self.own.add(item)

    def record_evict(self, item: int, cache_items: Iterable[int]) -> None:
        if not self.own.remove(item):
            self.own.rebuild(cache_items)

    def take_update(self) -> Tuple[List[int], List[int]]:
        """(insertions, evictions) bit positions since the last broadcast.

        Marks the current signature as broadcast.  Positions that flipped
        back annihilate automatically because we diff against the snapshot.
        """
        current = self.own.signature().bits
        insertions = np.nonzero(current & ~self._last_broadcast)[0]
        evictions = np.nonzero(~current & self._last_broadcast)[0]
        self._last_broadcast = current.copy()
        return [int(p) for p in insertions], [int(p) for p in evictions]

    def has_update(self) -> bool:
        return bool(np.any(self.own.signature().bits != self._last_broadcast))

    # -- serving signature requests ------------------------------------------------

    def full_signature_payload(self, cached_items: int) -> Tuple[np.ndarray, int, bool]:
        """(bits, wire size in bytes, compressed?) for a SigReply.

        The compression decision is the local rule of Section IV-D.2 based
        on the cache size ε, σ and k; the payload really is VLFL-encoded
        and decoded end-to-end so the size is genuine.
        """
        signature = self.own.signature()
        raw_bytes = signature.size_bytes
        if self.compression_enabled and should_compress(
            cached_items, self.scheme.size_bits, self.scheme.k
        ):
            run_cap = find_optimal_r(
                cached_items, self.scheme.size_bits, self.scheme.k
            )
            compressed = vlfl_encode(signature.bits, run_cap)
            if compressed.size_bytes < raw_bytes:
                self.signatures_sent_compressed += 1
                self.signature_bytes_sent += compressed.size_bytes
                return vlfl_decode(compressed), compressed.size_bytes, True
        self.signatures_sent_raw += 1
        self.signature_bytes_sent += raw_bytes
        return signature.bits.copy(), raw_bytes, False

    # -- peer vector updates -----------------------------------------------------------

    def merge_member_signature(self, member: int, bits: np.ndarray) -> None:
        """Fold a received SigReply into the peer vector."""
        signature = BloomFilter(self.scheme)
        signature.bits = np.asarray(bits, dtype=bool)
        self.peer.merge_signature(signature)
        self.outstanding.discard(member)

    def apply_peer_update(
        self, insertions: Sequence[int], evictions: Sequence[int]
    ) -> None:
        self.peer.apply_update(insertions, evictions)

    # -- membership handling (Sections IV-D.4/5) -------------------------------------------

    def apply_membership_changes(
        self, added: Set[int], removed: Set[int]
    ) -> MembershipActions:
        """Update the TCG view; say what signature traffic must follow."""
        actions = MembershipActions()
        self.members |= added
        self.members -= removed
        self.outstanding -= removed
        if removed:
            self._departures += len(removed)
            if self._departures >= self.recollect_batch:
                self._departures = 0
                actions.recollect = True
        if actions.recollect:
            # Reset and recollect from every remaining member (broadcast
            # SigRequest with the membership list); newly added members are
            # covered by the same recollection.
            self.peer.reset()
            self.outstanding = set(self.members)
            actions.request_from = set()
        else:
            actions.request_from = set(added)
            self.outstanding |= added
        return actions

    def reconnect_sync(self, authoritative_members: Set[int]) -> MembershipActions:
        """Section IV-D.5: resync after the client itself reconnects."""
        self.members = set(authoritative_members)
        self._departures = 0
        self.peer.reset()
        self.outstanding = set(self.members)
        return MembershipActions(request_from=set(), recollect=bool(self.members))

    def notice_peer_alive(self, peer: int) -> bool:
        """A message from ``peer`` was heard.

        Returns True when the peer is on the OutstandSigList, i.e. a
        SigRequest should be sent to it now.
        """
        return peer in self.outstanding

    # -- filtering (Section IV-D.3) -----------------------------------------------------------

    def likely_cached_by_members(self, item: int) -> bool:
        """search-signature AND peer-signature test."""
        return self.peer.matches_positions(self.scheme.positions(item))
