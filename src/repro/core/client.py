"""The mobile host (MH) process.

One :class:`MobileHost` per client runs the whole client side of the paper:

* the request loop (exponential think time, Zipf accesses) of Section V-B,
* the COCA search protocol of Section III — local cache, bounded-hop
  broadcast search with adaptive timeout, first-reply target selection,
  retrieve, MSS fallback,
* GroCoCa's cache signature scheme (filtering, piggybacked updates,
  SigRequest/SigReply, OutstandSigList) of Section IV-D,
* cooperative cache admission control and replacement of Section IV-E,
* TTL consistency with MSS validation of Section IV-F,
* the disconnection/reconnection cycle of Sections IV-D.5 and V-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cache import CacheEntry, LRUCache
from repro.core.coca import AdaptiveTimeout, initial_timeout
from repro.core.config import SimulationConfig
from repro.core.metrics import Metrics, RequestOutcome
from repro.core.server import MobileSupportStation
from repro.core.signatures_proto import MembershipActions, SignatureAgent
from repro.data.workload import AccessPattern
from repro.net.channel import ServerChannel
from repro.net.health import PeerHealthTracker
from repro.net.message import Message, MessageKind, MessageSizes
from repro.net.ndp import NeighborDiscovery
from repro.net.p2p import P2PNetwork
from repro.policies.factory import build_admission, build_replacement
from repro.sim.kernel import Environment
from repro.workloads.base import HostStream, PatternStream
from repro.signatures.bloom import SignatureScheme

__all__ = ["MobileHost"]

#: Wire bytes per piggybacked signature bit-position entry.
_POSITION_BYTES = 2
#: Upper bound on remembered peer-access history for explicit updates.
_HISTORY_CAP = 200

#: Tracer instant + metrics kind per circuit-breaker transition target.
_BREAKER_NOTES = {
    "open": ("breaker-open", "breaker_trip"),
    "half-open": ("breaker-probe", "breaker_probe"),
    "closed": ("breaker-close", None),
}


@dataclass
class _SearchState:
    """Book-keeping for one in-flight peer search."""

    item: int
    started: float
    reply_event: object
    data_event: object = None
    replies: List[dict] = field(default_factory=list)
    finished: bool = False
    span: int = -1  # the search's tracer span (-1 when untraced)


class MobileHost:
    """One mobile client."""

    def __init__(
        self,
        index: int,
        env: Environment,
        config: SimulationConfig,
        network: P2PNetwork,
        channel: ServerChannel,
        server: MobileSupportStation,
        pattern: "AccessPattern | HostStream",
        metrics: Metrics,
        rng: np.random.Generator,
        sizes: MessageSizes,
        signature_scheme: Optional[SignatureScheme] = None,
        ndp: Optional[NeighborDiscovery] = None,
        monitor=None,
        tracer=None,
        health: Optional[PeerHealthTracker] = None,
        jitter_rng: Optional[np.random.Generator] = None,
        admission_rng: Optional[np.random.Generator] = None,
    ):
        self.index = index
        self.env = env
        self.config = config
        self.network = network
        self.channel = channel
        self.server = server
        if hasattr(pattern, "next_delay"):
            # A bound workload stream (repro.workloads); the wrapped
            # AccessPattern, if any, stays reachable for introspection.
            self.stream: HostStream = pattern
            self.pattern = getattr(pattern, "pattern", None)
        else:
            # A bare legacy AccessPattern (direct construction, older
            # tests): wrap it in the adapter that reproduces the legacy
            # draw pair — think time from this host's rng, item from the
            # pattern's shared rng — exactly.
            self.pattern = pattern
            self.stream = PatternStream(pattern, rng, config.think_time_mean)
        self.metrics = metrics
        self.rng = rng
        self.sizes = sizes
        self.ndp = ndp
        #: Optional invariant oracle (duck-typed; see repro.check.monitor).
        self._monitor = monitor
        #: Optional span tracer (see repro.obs.tracer); every call site is
        #: behind an ``is None`` guard so untraced runs are bit-identical.
        self._tracer = tracer
        #: Optional failure-aware retrieve layer (see repro.net.health);
        #: ``None`` keeps the legacy arrival-order retrieve path, branch
        #: for branch, so health-off runs replay the goldens exactly.
        self.health = health
        #: Optional shared "retry-jitter" stream; ``None`` (retry_jitter=0)
        #: keeps every backoff delay exactly as recorded.
        self._jitter_rng = jitter_rng
        self._req_seq = 0
        self._req_span = -1
        self.cache = LRUCache(config.cache_size)
        self.connected = True
        self.requests_completed = 0
        self.disconnections = 0
        self.crashes = 0
        self.last_server_contact = 0.0
        self.timeout = AdaptiveTimeout(
            initial_timeout(
                config.hop_dist,
                sizes.request,
                sizes.reply,
                config.bw_p2p,
                config.congestion_phi,
            ),
            config.deviation_phi,
        )

        scheme = config.scheme
        if scheme.group_based:
            if signature_scheme is None:
                raise ValueError("GroCoCa requires a signature scheme")
            self.signatures: Optional[SignatureAgent] = SignatureAgent(
                signature_scheme,
                config.counter_bits,
                compression_enabled=config.signature_compression,
                recollect_batch=config.recollect_batch,
            )
        else:
            self.signatures = None
        # Admission and replacement resolve through the policy registry;
        # with no explicit *_policy overrides the factory reproduces the
        # pre-registry wiring (and counters) exactly.
        self.admission = build_admission(config, rng=admission_rng)
        self.replacement = build_replacement(
            config,
            self.cache,
            signature_scheme=signature_scheme,
            peer_signature=(
                self.signatures.peer if self.signatures is not None else None
            ),
        )
        self._observe_requests = self.replacement.observes_requests

        self._search_seq = 0
        self._searches: Dict[Tuple[int, int], _SearchState] = {}
        self._seen_search: Dict[int, int] = {}  # origin -> latest seq seen
        self._peer_history: List[int] = []

        network.register_handler(index, self.on_message)
        env.process(self.run())
        if scheme.group_based and config.explicit_update_period > 0:
            env.process(self._explicit_update_loop())

    # ------------------------------------------------------------------ main loop

    def run(self):
        """Think, access, maybe disconnect — forever."""
        config = self.config
        stream = self.stream
        while True:
            yield self.env.timeout(stream.next_delay(self.env.now))
            item = stream.next_item(self.env.now)
            yield from self.access_item(item)
            self.requests_completed += 1
            if config.p_disc > 0 and self.rng.random() < config.p_disc:
                yield from self._disconnect_cycle()

    def position(self) -> np.ndarray:
        return self.network.field.position_of(self.index, self.env.now)

    # ------------------------------------------------------------------- accessing

    def access_item(self, item: int):
        """Resolve one query: local cache, peers, then the MSS."""
        start = self.env.now
        if self._observe_requests:
            self.replacement.note_request(item)
        tracer = self._tracer
        if tracer is not None:
            self._req_seq += 1
            self._req_span = tracer.begin(
                "request", host=self.index, request=self._req_seq, item=item
            )
        if not self.connected:
            # Crash-stop outage: the request cannot leave the host.
            self._record_failure(start)
            return
        entry = self.cache.get(item)
        if tracer is not None:
            local = tracer.begin(
                "local", host=self.index, parent=self._req_span, item=item
            )
            if entry is None:
                tracer.end(local, status="miss")
            elif entry.is_valid(self.env.now):
                tracer.end(local, status="hit")
            else:
                tracer.end(local, status="expired")
        if entry is not None:
            if entry.is_valid(self.env.now):
                self._note_local_access(item, entry)
                self._record_outcome(RequestOutcome.LOCAL_HIT, start)
                return
            yield from self._validate_with_server(item, entry, start)
            return

        if self.config.scheme.cooperative and self.connected:
            result = yield from self._search_peers(item)
            if result is not None:
                reply, from_tcg, hops = result
                self._admit_from_peer(reply, from_tcg, hops)
                self._remember_peer_access(item)
                self._record_outcome(
                    RequestOutcome.GLOBAL_HIT, start, from_tcg=from_tcg
                )
                return

        if not self.connected:
            # Crashed while searching: the MSS is out of reach too.
            self._record_failure(start)
            return
        yield from self._fetch_from_server(item, start)

    def _record_outcome(
        self, outcome: RequestOutcome, start: float, from_tcg: bool = False
    ) -> None:
        """Count the request's outcome and close its span (when traced).

        The span's ``recorded`` flag snapshots ``metrics.recording`` at
        this exact moment — the same gate ``record_request`` applies — so
        the trace contract can reconcile span counts with the Results
        counters across the warm-up boundary.
        """
        self.metrics.record_request(
            self.index,
            outcome,
            self.env.now - start,
            from_tcg=from_tcg,
            now=self.env.now,
        )
        if self._tracer is not None:
            self._tracer.end(
                self._req_span,
                status=outcome.name.lower(),
                recorded=self.metrics.recording,
                from_tcg=from_tcg,
            )
            self._req_span = -1

    def _record_failure(self, start: float) -> None:
        self._record_outcome(RequestOutcome.FAILURE, start)

    def _note_local_access(self, item: int, entry: CacheEntry) -> None:
        self.cache.touch(item, self.env.now)
        self.replacement.note_access(entry, self.env.now)

    def _remember_peer_access(self, item: int) -> None:
        if self.signatures is None:
            return
        if len(self._peer_history) < _HISTORY_CAP:
            self._peer_history.append(item)

    # --------------------------------------------------------------- peer searching

    def _search_peers(self, item: int):
        """COCA search; returns (reply dict, from_tcg, hops) or None."""
        signatures = self.signatures
        if (
            signatures is not None
            and self.config.signature_filtering
            and not signatures.likely_cached_by_members(item)
        ):
            self.metrics.record_search(bypassed=True)
            if self._tracer is not None:
                self._tracer.instant(
                    "search-bypassed",
                    host=self.index,
                    parent=self._req_span,
                    item=item,
                    recorded=self.metrics.recording,
                )
            return None
        self.metrics.record_search(bypassed=False)

        self._search_seq += 1
        sid = (self.index, self._search_seq)
        update: Optional[Tuple[List[int], List[int]]] = None
        size = self.sizes.request
        if signatures is not None:
            update = signatures.take_update()
            size += (len(update[0]) + len(update[1])) * _POSITION_BYTES
        state = _SearchState(
            item=item, started=self.env.now, reply_event=self.env.event()
        )
        if self._tracer is not None:
            # ``recorded_open`` mirrors record_search's gate; the close-side
            # ``recorded`` flag is snapshotted separately in _finish_search.
            state.span = self._tracer.begin(
                "search",
                host=self.index,
                parent=self._req_span,
                item=item,
                recorded_open=self.metrics.recording,
            )
        self._searches[sid] = state
        if self._monitor is not None:
            self._monitor.on_search_open(self.index, sid, self.env.now)
        message = Message(
            kind=MessageKind.REQUEST,
            src=self.index,
            dst=None,
            size=size,
            payload={"search": sid, "item": item, "origin": self.index, "update": update},
            created_at=self.env.now,
            hops_left=self.config.hop_dist - 1,
            path=[self.index],
        )
        self.env.process(self._broadcast(message, size - self.sizes.request))

        reply = None
        tau = self.timeout.current()
        attempts = 1 + self.config.search_retry_limit
        for attempt in range(attempts):
            fired = yield self.env.any_of([state.reply_event, self.env.timeout(tau)])
            if state.reply_event in fired:
                reply = state.reply_event.value
                break
            if attempt + 1 >= attempts:
                break
            # Re-flood under the same search id: peers that heard the first
            # copy suppress the duplicate via their seen-sequence table, so
            # a retransmission can never double-count a hit; only peers the
            # loss process robbed get a fresh chance to answer.  The
            # piggybacked signature update is not repeated (members that
            # received it already applied it).
            self.metrics.record_retry("search")
            if self._tracer is not None:
                self._tracer.instant(
                    "search-retry",
                    host=self.index,
                    parent=state.span,
                    attempt=attempt + 1,
                    recorded=self.metrics.recording,
                )
            retry = Message(
                kind=MessageKind.REQUEST,
                src=self.index,
                dst=None,
                size=self.sizes.request,
                payload={
                    "search": sid,
                    "item": item,
                    "origin": self.index,
                    "update": None,
                },
                created_at=self.env.now,
                hops_left=self.config.hop_dist - 1,
                path=[self.index],
            )
            self.env.process(self._broadcast(retry))
            tau *= 2.0  # exponential backoff of the listen window
        if reply is None:
            self._finish_search(sid, "timeout")
            self.metrics.record_fallback()
            return None
        self.timeout.observe(self.env.now - state.started)
        outcome = yield from self._retrieve_with_fallback(sid, state, reply)
        self._finish_search(sid, "reply" if outcome is not None else "fallback")
        if outcome is None:
            self.metrics.record_fallback()
            return None
        data, serving_peer = outcome
        from_tcg = signatures is not None and serving_peer in signatures.members
        hops = 1
        for r in state.replies:
            if r["peer"] == serving_peer:
                hops = len(r["path"]) - 1
                break
        return data, from_tcg, hops

    def _select_replier(self, state: _SearchState, tried: set) -> Optional[dict]:
        """The next retrieve target among the untried repliers.

        Without the health layer this is the legacy arrival-order pick;
        with it, candidates are ranked by the configured scoring policy
        after circuit-broken peers are filtered out (``None`` when every
        untried replier is broken — the caller falls back to the MSS
        instead of timing out against a known-dead peer).
        """
        candidates = [r for r in state.replies if r["peer"] not in tried]
        if not candidates:
            return None
        if self.health is None:
            return candidates[0]
        return self.health.select(candidates, self.env.now)

    def _retrieve_with_fallback(self, sid, state: _SearchState, reply: dict):
        """Retrieve from the chosen peer, falling over to other repliers.

        Bounded by ``retrieve_retry_limit``: a failed retrieve (lost
        message, peer moved away or crashed) backs off exponentially and
        targets the next untried reply — arrival order, or the scoring
        policy's pick when the health layer is active.  With a
        ``retrieve_deadline`` the per-query budget is checked before every
        retry so a string of slow failures cannot stall the request loop.
        When no untried target is left the caller falls back to the MSS.
        Returns ``(data payload, serving peer)`` or ``None``.
        """
        attempts = 1 + self.config.retrieve_retry_limit
        backoff = self.config.retry_backoff_base
        deadline = self.config.retrieve_deadline
        health = self.health
        tried = set()
        if health is not None:
            chosen = self._select_replier(state, tried)
            if chosen is None:
                return None  # every replier circuit-broken: straight to MSS
            reply = chosen
        span = -1
        if self._tracer is not None:
            span = self._tracer.begin(
                "retrieve", host=self.index, parent=state.span, peer=reply["peer"]
            )
        for attempt in range(attempts):
            tried.add(reply["peer"])
            data = yield from self._retrieve(sid, state, reply, tried, span)
            if data is not None:
                serving = (
                    data.get("peer", reply["peer"])
                    if health is not None
                    else reply["peer"]
                )
                if span >= 0:
                    self._tracer.end(
                        span, status="ok", peer=serving, attempts=attempt + 1
                    )
                return data, serving
            if attempt + 1 >= attempts:
                break
            if (
                health is not None
                and deadline > 0.0
                and self.env.now - state.started >= deadline
            ):
                health.note("budget_exhausted")
                self.metrics.record_health("budget_exhausted")
                if span >= 0:
                    self._tracer.instant(
                        "budget-exhausted",
                        host=self.index,
                        parent=span,
                        recorded=self.metrics.recording,
                    )
                break
            fallback = self._select_replier(state, tried)
            if fallback is None:
                break
            self.metrics.record_retry("retrieve")
            if span >= 0:
                self._tracer.instant(
                    "retrieve-retry",
                    host=self.index,
                    parent=span,
                    peer=fallback["peer"],
                    recorded=self.metrics.recording,
                )
            yield self.env.timeout(self._backoff_delay(backoff))
            backoff *= 2.0
            reply = fallback
        if span >= 0:
            self._tracer.end(span, status="failed", attempts=attempt + 1)
        return None

    def _retrieve(self, sid, state: _SearchState, reply: dict, tried: set, span: int = -1):
        """Send retrieve to the target peer and await the data item."""
        state.data_event = self.env.event()
        path = reply["path"]  # origin ... peer
        message = Message(
            kind=MessageKind.RETRIEVE,
            src=self.index,
            dst=reply["peer"],
            size=self.sizes.retrieve,
            payload={"search": sid, "item": state.item, "path": list(path)},
            created_at=self.env.now,
        )
        if len(path) < 2:
            return None
        health = self.health
        if health is not None:
            self._note_attempt(reply["peer"], span)
        sent = yield from self.network.unicast_route(list(path), message)
        if not sent:
            if health is not None:
                self._note_retrieve_failure(reply["peer"], span)
            return None
        hops = len(path) - 1
        guard = 4.0 * hops * self.network.tx_time(self.sizes.data_message())
        guard += self.timeout.current()
        if health is None:
            fired = yield self.env.any_of(
                [state.data_event, self.env.timeout(guard)]
            )
            if state.data_event not in fired:
                return None
            return state.data_event.value
        payload = yield from self._guarded_wait(sid, state, reply, tried, span, guard)
        return payload

    # ------------------------------------------------- failure-aware retrieve

    def _guarded_wait(
        self,
        sid,
        state: _SearchState,
        reply: dict,
        tried: set,
        span: int,
        guard: float,
    ):
        """Health-layer DATA wait: crash watch plus an optional hedge.

        Replaces the plain ``any_of([data, timeout])`` wait when the
        health layer is active.  With ``crash_failover`` the wait also
        races the serving peer's down-transition, failing over the moment
        the crash daemon (or a graceful disconnect) takes it off the air
        instead of burning the full data guard.  With ``hedge_quantile``
        a second retrieve goes to the next-best healthy replier once the
        first exceeds that quantile of its EWMA latency; the first DATA
        back wins and the loser is released without a failure penalty.
        """
        env = self.env
        health = self.health
        config = self.config
        peer = reply["peer"]
        sent_times = {peer: env.now}
        hops = {peer: len(reply["path"]) - 1}
        deadline_t = env.now + guard
        watch = None
        if config.crash_failover:
            watch = env.event()
            self.network.watch_down(peer, watch)
        hedge_at = None
        if config.hedge_quantile > 0.0:
            delay = health.hedge_delay(peer, config.hedge_quantile)
            if delay is not None:
                hedge_at = env.now + delay
        hedged = False
        hedge_peer: Optional[int] = None
        try:
            while True:
                if state.data_event.triggered:
                    payload = state.data_event.value
                    serving = payload.get("peer", peer)
                    latency = env.now - sent_times.get(serving, sent_times[peer])
                    self._note_retrieve_success(
                        sid,
                        serving,
                        latency,
                        hops.get(serving, hops[peer]),
                        hedge_peer,
                        span,
                    )
                    for other in sent_times:
                        if other != serving:
                            health.note_abandoned(other)
                    return payload
                if watch is not None and watch.triggered and not hedged:
                    # The serving peer dropped off the air between replying
                    # and serving: fail over right now instead of waiting
                    # out the guard (with a hedge in flight the race keeps
                    # running — the hedge peer can still serve).
                    health.note("fast_failovers")
                    self.metrics.record_health("fast_failover")
                    if span >= 0:
                        self._tracer.instant(
                            "fast-failover",
                            host=self.index,
                            parent=span,
                            peer=peer,
                            recorded=self.metrics.recording,
                        )
                    self._note_retrieve_failure(peer, span)
                    return None
                now = env.now
                remaining = deadline_t - now
                if remaining <= 1e-12:
                    break
                target = deadline_t
                if hedge_at is not None and not hedged:
                    target = min(target, hedge_at)
                waits = [state.data_event, env.timeout(max(0.0, target - now))]
                if watch is not None and not watch.triggered:
                    waits.append(watch)
                yield env.any_of(waits)
                if (
                    hedge_at is not None
                    and not hedged
                    and env.now >= hedge_at - 1e-12
                    and not state.data_event.triggered
                ):
                    hedged = True  # one hedge opportunity per retrieve
                    hedge = self._select_replier(state, tried)
                    if hedge is not None:
                        sent = yield from self._send_hedge(
                            sid, state, hedge, tried, span
                        )
                        if sent:
                            hedge_peer = hedge["peer"]
                            sent_times[hedge_peer] = env.now
                            hops[hedge_peer] = len(hedge["path"]) - 1
            # Guard exhausted with no DATA: every outstanding target failed.
            for target_peer in sent_times:
                self._note_retrieve_failure(target_peer, span)
            return None
        finally:
            if watch is not None:
                self.network.unwatch_down(peer, watch)

    def _send_hedge(
        self, sid, state: _SearchState, reply: dict, tried: set, span: int
    ):
        """Send the hedged second retrieve to the next-best replier."""
        peer = reply["peer"]
        path = reply["path"]
        if len(path) < 2:
            return False
        tried.add(peer)
        self._note_attempt(peer, span)
        if self._monitor is not None:
            self._monitor.on_hedge(self.index, sid, self.env.now)
        self.health.note("hedges")
        self.metrics.record_health("hedge")
        if span >= 0:
            self._tracer.instant(
                "retrieve-hedge",
                host=self.index,
                parent=span,
                peer=peer,
                recorded=self.metrics.recording,
            )
        message = Message(
            kind=MessageKind.RETRIEVE,
            src=self.index,
            dst=peer,
            size=self.sizes.retrieve,
            payload={"search": sid, "item": state.item, "path": list(path)},
            created_at=self.env.now,
        )
        sent = yield from self.network.unicast_route(list(path), message)
        if not sent:
            self._note_retrieve_failure(peer, span)
            return False
        return True

    def _note_attempt(self, peer: int, span: int) -> None:
        """Health bookkeeping for one retrieve send (breaker + monitor)."""
        breaker_state, transitions = self.health.begin_attempt(peer, self.env.now)
        self._note_breaker(peer, transitions, span)
        if self._monitor is not None:
            self._monitor.on_retrieve_attempt(
                self.index, peer, breaker_state, self.env.now
            )

    def _note_retrieve_success(
        self,
        sid,
        serving: int,
        latency: float,
        hops: int,
        hedge_peer: Optional[int],
        span: int,
    ) -> None:
        transitions = self.health.record_success(
            serving, self.env.now, latency, hops
        )
        self._note_breaker(serving, transitions, span)
        if hedge_peer is not None and serving == hedge_peer:
            self.health.note("hedge_wins")
            self.metrics.record_health("hedge_win")
            if self._monitor is not None:
                self._monitor.on_hedge_win(self.index, sid, self.env.now)
            if span >= 0:
                self._tracer.instant(
                    "hedge-win",
                    host=self.index,
                    parent=span,
                    peer=serving,
                    recorded=self.metrics.recording,
                )

    def _note_retrieve_failure(self, peer: int, span: int) -> None:
        transitions = self.health.record_failure(peer, self.env.now)
        self._note_breaker(peer, transitions, span)

    def _note_breaker(self, peer: int, transitions, span: int) -> None:
        """Mirror breaker transitions into monitor, metrics and tracer."""
        for old, new in transitions:
            if self._monitor is not None:
                self._monitor.on_breaker_transition(
                    self.index, peer, old, new, self.env.now
                )
            instant, kind = _BREAKER_NOTES[new]
            if kind is not None:
                self.metrics.record_health(kind)
            if span >= 0:
                self._tracer.instant(
                    instant,
                    host=self.index,
                    parent=span,
                    peer=peer,
                    recorded=self.metrics.recording,
                )

    def _backoff_delay(self, backoff: float) -> float:
        """The next retry delay, jittered when ``retry_jitter`` is set.

        The draw comes from the dedicated ``retry-jitter`` stream, so
        enabling jitter shifts no other component's sequence — and with
        jitter off the stream is never created and the delay is exactly
        the unjittered backoff.
        """
        rng = self._jitter_rng
        if rng is None:
            return backoff
        spread = self.config.retry_jitter
        return backoff * (1.0 + spread * (2.0 * rng.random() - 1.0))

    def _finish_search(self, sid, outcome: str) -> None:
        state = self._searches.pop(sid, None)
        if state is not None:
            state.finished = True
        if self._monitor is not None:
            self._monitor.on_search_close(self.index, sid, outcome, self.env.now)
        if self._tracer is not None and state is not None and state.span >= 0:
            self._tracer.end(
                state.span,
                status=outcome,
                replies=len(state.replies),
                recorded=self.metrics.recording,
            )

    def _broadcast(self, message: Message, signature_bytes: int = 0):
        yield from self.network.broadcast(
            self.index, message, signature_bytes=signature_bytes
        )

    # ------------------------------------------------------------ message handling

    def on_message(self, message: Message) -> None:
        """Receive callback; cheap state updates, network work is spawned."""
        kind = message.kind
        if kind is MessageKind.REQUEST:
            self._on_request(message)
        elif kind is MessageKind.REPLY:
            self._on_reply(message)
        elif kind is MessageKind.RETRIEVE:
            self._on_retrieve(message)
        elif kind is MessageKind.DATA:
            self._on_data(message)
        elif kind is MessageKind.SIG_REQUEST:
            self._on_sig_request(message)
        elif kind is MessageKind.SIG_REPLY:
            self._on_sig_reply(message)

    def _on_request(self, message: Message) -> None:
        payload = message.payload
        origin, seq = payload["search"]
        if origin == self.index:
            return
        signatures = self.signatures
        if signatures is not None:
            if payload["update"] is not None and origin in signatures.members:
                signatures.apply_peer_update(*payload["update"])
            if signatures.notice_peer_alive(origin):
                self.env.process(self._send_sig_request(origin))
        if self._seen_search.get(origin, -1) >= seq:
            return
        self._seen_search[origin] = seq
        item = payload["item"]
        if self._observe_requests:
            self.replacement.note_remote_request(item)
        entry = self.cache.get(item)
        if entry is not None and entry.is_valid(self.env.now):
            self.env.process(self._send_reply(message, entry))
        elif message.hops_left > 0:
            forward = Message(
                kind=MessageKind.REQUEST,
                src=self.index,
                dst=None,
                size=message.size,
                payload=payload,
                created_at=message.created_at,
                hops_left=message.hops_left - 1,
                path=message.path + [self.index],
            )
            self.env.process(
                self._broadcast(forward, message.size - self.sizes.request)
            )

    def _send_reply(self, request: Message, entry: CacheEntry):
        """Turn in a REPLY along the reverse of the request's path."""
        route = list(reversed(request.path + [self.index]))
        message = Message(
            kind=MessageKind.REPLY,
            src=self.index,
            dst=route[-1],
            size=self.sizes.reply,
            payload={
                "search": request.payload["search"],
                "peer": self.index,
                "path": request.path + [self.index],
                "expiry": entry.expiry,
                "retrieve_time": entry.retrieve_time,
                "version": entry.version,
            },
            created_at=self.env.now,
        )
        yield from self.network.unicast_route(route, message)

    def _on_reply(self, message: Message) -> None:
        sid = message.payload["search"]
        state = self._searches.get(sid)
        if state is None or state.finished:
            return
        state.replies.append(message.payload)
        if self._tracer is not None and state.span >= 0:
            self._tracer.instant(
                "search-reply",
                host=self.index,
                parent=state.span,
                peer=message.payload["peer"],
            )
        if not state.reply_event.triggered:
            state.reply_event.succeed(message.payload)

    def _on_retrieve(self, message: Message) -> None:
        self.env.process(self._serve_retrieve(message))

    def _serve_retrieve(self, message: Message):
        payload = message.payload
        item = payload["item"]
        entry = self.cache.get(item)
        if entry is None or not entry.is_valid(self.env.now):
            return  # evicted/expired since the reply; requester times out
        path = payload["path"]  # origin ... me
        data = Message(
            kind=MessageKind.DATA,
            src=self.index,
            dst=path[0],
            size=self.sizes.data_message(),
            payload={
                "search": payload["search"],
                "item": item,
                "expiry": entry.expiry,
                "retrieve_time": entry.retrieve_time,
                "version": entry.version,
                # Serving peer, so a hedged requester can attribute the
                # DATA that won the race (payload-only; size is modelled
                # by ``sizes.data_message()`` and unaffected).
                "peer": self.index,
            },
            created_at=self.env.now,
        )
        requester = path[0]
        delivered = yield from self.network.unicast_route(
            list(reversed(path)), data
        )
        if delivered and self.signatures is not None:
            if requester in self.signatures.members and item in self.cache:
                # Section IV-E: serving a TCG member refreshes the copy.
                self.cache.touch(item, self.env.now)
                self.replacement.note_access(self.cache.get(item), self.env.now)

    def _on_data(self, message: Message) -> None:
        sid = message.payload["search"]
        state = self._searches.get(sid)
        if state is None or state.finished or state.data_event is None:
            return
        if not state.data_event.triggered:
            state.data_event.succeed(message.payload)

    # ----------------------------------------------------------- signature traffic

    def _send_sig_request(self, peer: int, members: Optional[Set[int]] = None):
        """Direct (unicast) or membership-scoped broadcast SigRequest."""
        if members is None:
            message = Message(
                kind=MessageKind.SIG_REQUEST,
                src=self.index,
                dst=peer,
                size=self.sizes.sig_request,
                payload={"from": self.index, "members": None},
                created_at=self.env.now,
            )
            yield from self.network.unicast(
                self.index, peer, message, purpose="signature"
            )
        else:
            message = Message(
                kind=MessageKind.SIG_REQUEST,
                src=self.index,
                dst=None,
                size=self.sizes.sig_request
                + len(members) * self.sizes.membership_entry,
                payload={"from": self.index, "members": set(members)},
                created_at=self.env.now,
            )
            yield from self.network.broadcast(
                self.index, message, purpose="signature"
            )

    def _on_sig_request(self, message: Message) -> None:
        if self.signatures is None:
            return
        payload = message.payload
        members = payload["members"]
        if members is not None and self.index not in members:
            return  # broadcast recollection for somebody else's TCG
        self.env.process(self._send_sig_reply(payload["from"]))

    def _send_sig_reply(self, requester: int):
        bits, wire_bytes, _compressed = self.signatures.full_signature_payload(
            len(self.cache)
        )
        message = Message(
            kind=MessageKind.SIG_REPLY,
            src=self.index,
            dst=requester,
            size=self.sizes.sig_reply(wire_bytes),
            payload={"from": self.index, "bits": bits},
            created_at=self.env.now,
        )
        yield from self.network.unicast(
            self.index, requester, message, purpose="signature"
        )

    def _on_sig_reply(self, message: Message) -> None:
        if self.signatures is None:
            return
        payload = message.payload
        if payload["from"] not in self.signatures.members:
            return  # departed while the reply was in flight
        self.signatures.merge_member_signature(payload["from"], payload["bits"])

    def _apply_membership_changes(self, added: Set[int], removed: Set[int]) -> None:
        if self.signatures is None or (not added and not removed):
            return
        actions = self.signatures.apply_membership_changes(added, removed)
        self._execute_membership_actions(actions)

    def _execute_membership_actions(self, actions: MembershipActions) -> None:
        if actions.recollect and self.signatures.members:
            self.env.process(
                self._send_sig_request(-1, members=set(self.signatures.members))
            )
        for peer in actions.request_from:
            self.env.process(self._send_sig_request(peer))

    # -------------------------------------------------------------- MSS interaction

    def _fetch_from_server(self, item: int, start: float):
        """Cache-miss fallback: pull the item over the shared channels.

        A lost uplink request or downlink reply (fault injection only) is
        retried with exponential backoff up to ``uplink_retry_limit`` times;
        the access fails outright when every attempt is lost.
        """
        backoff = self.config.retry_backoff_base
        span = -1
        if self._tracer is not None:
            span = self._tracer.begin(
                "mss", host=self.index, parent=self._req_span, item=item
            )
        for attempt in range(1 + self.config.uplink_retry_limit):
            if attempt:
                self.metrics.record_retry("uplink")
                if span >= 0:
                    self._tracer.instant(
                        "uplink-retry",
                        host=self.index,
                        parent=span,
                        attempt=attempt,
                        recorded=self.metrics.recording,
                    )
                yield self.env.timeout(self._backoff_delay(backoff))
                backoff *= 2.0
            sent = yield from self.channel.send_uplink(self.sizes.server_request)
            if not sent:
                continue
            reply = self.server.handle_data_request(
                self.index, item, self.position()
            )
            self.last_server_contact = self.env.now
            received = yield from self.channel.send_downlink(
                self.sizes.server_reply(reply.membership_changes)
            )
            if not received:
                continue
            entry = CacheEntry(
                item=item,
                expiry=reply.expiry,
                retrieve_time=reply.retrieve_time,
                version=reply.version,
                singlet_ttl=self.replacement.new_entry_ttl(),
            )
            if span >= 0:
                self._tracer.end(span, status="ok", attempts=attempt + 1)
            self._admit(entry)
            self._apply_membership_changes(reply.added, reply.removed)
            self._record_outcome(RequestOutcome.SERVER, start)
            return
        if span >= 0:
            self._tracer.end(span, status="failed")
        self._record_failure(start)

    def _validate_with_server(self, item: int, entry: CacheEntry, start: float):
        """Section IV-F: consult the MSS about an expired copy."""
        backoff = self.config.retry_backoff_base
        span = -1
        if self._tracer is not None:
            span = self._tracer.begin(
                "validate", host=self.index, parent=self._req_span, item=item
            )
        for attempt in range(1 + self.config.uplink_retry_limit):
            if attempt:
                self.metrics.record_retry("uplink")
                if span >= 0:
                    self._tracer.instant(
                        "uplink-retry",
                        host=self.index,
                        parent=span,
                        attempt=attempt,
                        recorded=self.metrics.recording,
                    )
                yield self.env.timeout(self._backoff_delay(backoff))
                backoff *= 2.0
            sent = yield from self.channel.send_uplink(self.sizes.validate)
            if not sent:
                continue
            reply = self.server.handle_validation(
                self.index, item, entry.retrieve_time, self.position()
            )
            self.last_server_contact = self.env.now
            if reply.refreshed:
                received = yield from self.channel.send_downlink(
                    self.sizes.server_reply(reply.membership_changes)
                )
            else:
                received = yield from self.channel.send_downlink(
                    self.sizes.validate_ok
                    + reply.membership_changes * self.sizes.membership_entry
                )
            if not received:
                continue
            entry.expiry = reply.expiry
            entry.retrieve_time = reply.retrieve_time
            entry.version = reply.version
            self._note_local_access(item, entry)
            self._apply_membership_changes(reply.added, reply.removed)
            self.metrics.record_validation(refreshed=reply.refreshed)
            if span >= 0:
                self._tracer.end(
                    span,
                    status="refreshed" if reply.refreshed else "valid",
                    attempts=attempt + 1,
                    recorded=self.metrics.recording,
                )
            outcome = (
                RequestOutcome.SERVER
                if reply.refreshed
                else RequestOutcome.LOCAL_HIT
            )
            self._record_outcome(outcome, start)
            return
        if span >= 0:
            self._tracer.end(span, status="failed")
        self._record_failure(start)

    def _explicit_update_loop(self):
        """Section IV-B: report location and peer-access history when idle."""
        period = self.config.explicit_update_period
        while True:
            yield self.env.timeout(period)
            if not self.connected:
                continue
            if self.env.now - self.last_server_contact < period:
                continue
            history = self._take_history_portion()
            sent = yield from self.channel.send_uplink(
                self.sizes.explicit_update_base + len(history) * 4
            )
            if not sent:
                continue  # lost update; the next period reports fresh history
            added, removed = self.server.handle_explicit_update(
                self.index, self.position(), history
            )
            self.last_server_contact = self.env.now
            received = yield from self.channel.send_downlink(
                self.sizes.validate_ok
                + (len(added) + len(removed)) * self.sizes.membership_entry
            )
            if not received:
                continue  # membership delta lost; resynced on next contact
            self._apply_membership_changes(added, removed)

    def _take_history_portion(self) -> List[int]:
        portion = self.config.explicit_update_portion
        history = self._peer_history
        if not history or portion <= 0:
            self._peer_history = []
            return []
        count = max(1, int(round(len(history) * portion)))
        chosen = list(
            self.rng.choice(len(history), size=min(count, len(history)), replace=False)
        )
        report = [history[i] for i in chosen]
        self._peer_history = []
        return report

    # ------------------------------------------------------------------- admission

    def _admit(self, entry: CacheEntry) -> None:
        """Cache a server-supplied (or refreshed) copy."""
        if entry.item in self.cache or not self.cache.is_full:
            self._insert(entry)
            return
        self._insert_with_replacement(entry)

    def _admit_from_peer(self, reply: dict, from_tcg: bool, hops: int = 1) -> None:
        """Section IV-E admission control for peer-supplied items."""
        entry = CacheEntry(
            item=reply["item"],
            expiry=reply["expiry"],
            retrieve_time=reply["retrieve_time"],
            version=reply["version"],
            singlet_ttl=self.replacement.new_entry_ttl(),
        )
        if entry.item in self.cache:
            self._insert(entry)
            return
        cache_full = self.cache.is_full
        if not self.admission.should_cache(
            cache_full=cache_full, from_tcg_member=from_tcg, hops=hops
        ):
            return
        if cache_full:
            self._insert_with_replacement(entry)
        else:
            self._insert(entry)

    def _insert(self, entry: CacheEntry) -> None:
        new_item = entry.item not in self.cache
        evicted = self.cache.insert(entry, self.env.now)
        self.replacement.note_insert(entry, self.env.now)
        if self.signatures is not None:
            if evicted is not None:
                self.signatures.record_evict(evicted.item, self.cache.items())
            if new_item:
                self.signatures.record_insert(entry.item)
        if self._tracer is not None:
            if evicted is not None:
                self._tracer.instant(
                    "cache-evict", host=self.index, item=evicted.item
                )
            if new_item:
                self._tracer.instant(
                    "cache-admit", host=self.index, item=entry.item
                )
        if self._monitor is not None:
            self._monitor.check_client_cache(self.index, self.cache, self.env.now)

    def _insert_with_replacement(self, entry: CacheEntry) -> None:
        """Full cache: evict the policy's chosen victim, then insert.

        For the LC/CC baseline the explicit evict-then-insert is
        equivalent to letting ``cache.insert`` evict internally: the
        victim is the same LRU entry, both paths bump the same cache
        eviction counter, and the tracer still sees evict before admit.
        """
        victim = self.replacement.select_victim(self.env.now)
        if victim is not None:
            self.cache.evict(victim.item)
            if self.signatures is not None:
                self.signatures.record_evict(victim.item, self.cache.items())
            if self._tracer is not None:
                self._tracer.instant(
                    "cache-evict", host=self.index, item=victim.item
                )
        self._insert(entry)

    # ---------------------------------------------------------------- disconnection

    def _disconnect_cycle(self):
        """Go offline for DiscTime, then run the reconnection protocol."""
        self.disconnections += 1
        self.connected = False
        self.network.set_connected(self.index, False)
        if self.ndp is not None:
            self.ndp.forget(self.index)
        duration = self.rng.uniform(self.config.disc_min, self.config.disc_max)
        if self._tracer is not None:
            # Emitted after the RNG draw so traced runs stay bit-identical.
            self._tracer.instant(
                "disconnect", host=self.index, duration=duration
            )
        yield self.env.timeout(duration)
        self.connected = True
        self.network.set_connected(self.index, True)
        if self._tracer is not None:
            self._tracer.instant("reconnect", host=self.index)
        if self.signatures is not None:
            yield from self._reconnect_protocol()

    def _reconnect_protocol(self):
        """Section IV-D.5: membership sync + signature recollection."""
        backoff = self.config.retry_backoff_base
        for attempt in range(1 + self.config.uplink_retry_limit):
            if attempt:
                self.metrics.record_retry("uplink")
                if self._tracer is not None:
                    self._tracer.instant(
                        "uplink-retry",
                        host=self.index,
                        attempt=attempt,
                        recorded=self.metrics.recording,
                    )
                yield self.env.timeout(self._backoff_delay(backoff))
                backoff *= 2.0
            sent = yield from self.channel.send_uplink(self.sizes.membership_sync)
            if not sent:
                continue
            members = self.server.handle_membership_sync(self.index)
            self.last_server_contact = self.env.now
            received = yield from self.channel.send_downlink(
                self.sizes.membership_sync
                + len(members) * self.sizes.membership_entry
            )
            if not received:
                continue
            actions = self.signatures.reconnect_sync(members)
            self._execute_membership_actions(actions)
            return
        # Sync lost on every attempt: run with possibly stale membership
        # until the next successful server contact corrects it.

    # ------------------------------------------------------------------- crashes

    def crash(self) -> None:
        """Crash-stop outage: drop off the air with no goodbye protocol.

        Unlike :meth:`_disconnect_cycle` the NDP is *not* told — neighbours
        keep believing the link is up until they miss enough beacons, and
        GroCoCa members keep counting us until the MSS notices.
        """
        self.crashes += 1
        self.connected = False
        self.network.set_connected(self.index, False)
        if self._tracer is not None:
            self._tracer.instant("fault-crash", host=self.index)

    def recover(self):
        """Process helper: come back up after a crash outage.

        The rebooted host has no neighbour table (``forget`` wipes its NDP
        row) and, under GroCoCa, resyncs membership and recollects member
        signatures exactly as after a graceful disconnection.
        """
        self.connected = True
        self.network.set_connected(self.index, True)
        if self._tracer is not None:
            self._tracer.instant("fault-recover", host=self.index)
        if self.ndp is not None:
            self.ndp.forget(self.index)
        if self.signatures is not None:
            yield from self._reconnect_protocol()
