"""Simulation parameters (the paper's Table II) and scheme selection.

Default values follow Table II where the OCR of the source text is legible
and the reconstruction table in DESIGN.md otherwise.  Everything is a plain
dataclass field so experiments override parameters with
``dataclasses.replace``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum

from typing import Dict

from repro.net.faults import CrashFaults, FaultPlan, LinkFaults
from repro.net.health import SCORING_POLICIES
from repro.policies import registry as policy_registry
from repro.workloads import registry as workload_registry

__all__ = ["CachingScheme", "SimulationConfig"]


class CachingScheme(Enum):
    """The three schemes compared in Section VI."""

    LC = "LC"  # conventional caching: no peer cooperation
    CC = "CC"  # standard COCA
    GC = "GC"  # GroCoCa

    @property
    def cooperative(self) -> bool:
        return self is not CachingScheme.LC

    @property
    def group_based(self) -> bool:
        return self is CachingScheme.GC


@dataclass
class SimulationConfig:
    """Everything needed to reproduce one simulated experiment."""

    # -- scheme under test -------------------------------------------------------
    scheme: CachingScheme = CachingScheme.GC

    # -- population and data (Table II) ------------------------------------------
    n_clients: int = 100
    n_data: int = 10_000
    data_size: int = 3072  # bytes (DataSize = 3 KB)
    cache_size: int = 100  # items
    access_range: int = 1000  # items per motion group
    theta: float = 0.5  # Zipf skewness
    data_update_rate: float = 0.0  # items / second across the database

    # -- geometry and mobility ----------------------------------------------------
    area_width: float = 1000.0  # metres
    area_height: float = 1000.0
    tran_range: float = 100.0  # P2P transmission range (TranRange)
    group_size: int = 5  # MHs per motion group (GroupSize)
    group_span: float = 50.0  # RPGM offset radius
    v_min: float = 1.0  # m/s
    v_max: float = 5.0
    pause_time: float = 1.0  # seconds
    position_resolution: float = 0.1  # snapshot quantum (s); 0 = exact

    # -- channels -------------------------------------------------------------------
    bw_downlink: float = 2_500_000.0  # bits/s (BW_server downlink)
    bw_uplink: float = 200_000.0  # bits/s (BW_server uplink)
    bw_p2p: float = 2_000_000.0  # bits/s (BW_P2P)
    hop_dist: int = 2  # HopDist: P2P search depth

    # -- workload -----------------------------------------------------------------------
    think_time_mean: float = 1.0  # exp interarrival between accesses

    # -- workload registry (repro.workloads) ----------------------------------------------
    # Empty string = the legacy stationary group-Zipf process (resolved to
    # the registered "stationary-zipf" engine, bit-identically), which
    # keeps every config recorded before these fields existed replaying
    # unchanged.  A non-empty value must name a registered workload key;
    # workload_params carries that workload's knobs (validated against its
    # declared schema when the engine is built).
    workload: str = ""
    workload_params: Dict[str, object] = field(default_factory=dict)

    # -- disconnection --------------------------------------------------------------------
    # DiscTime is drawn per disconnection; with ~1 request/second a client
    # disconnects every 1/p_disc requests, so these 1-5 s bounds (Table II)
    # yield offline fractions of ~10-45% across the Fig. 8 sweep.
    p_disc: float = 0.0
    disc_min: float = 1.0  # seconds (DiscTime lower bound)
    disc_max: float = 5.0

    # -- COCA protocol ---------------------------------------------------------------------
    congestion_phi: float = 2.0  # φ: initial timeout scale-up
    deviation_phi: float = 3.0  # φ': stddev multiplier for adaptive timeout

    # -- fault injection and recovery --------------------------------------------------------
    # The all-zero default plan is a strict no-op (no RNG stream advanced);
    # see repro.net.faults.  The retry limits bound the protocol's recovery
    # effort: 0 search/retrieve retries reproduces the paper's one-shot
    # protocol exactly, while the uplink retry only ever engages when a
    # fault plan actually loses server-channel messages.
    faults: FaultPlan = field(default_factory=FaultPlan)
    search_retry_limit: int = 0  # re-floods of an unanswered search
    retrieve_retry_limit: int = 0  # extra retrieves over other reply targets
    uplink_retry_limit: int = 2  # server-transaction retries on message loss
    retry_backoff_base: float = 0.05  # s; doubles on every retry
    # ±fraction of each backoff delay, drawn from the dedicated
    # "retry-jitter" stream; 0 keeps retries unjittered (and bit-identical
    # to configs recorded before the field existed).
    retry_jitter: float = 0.0

    # -- failure-aware retrieve (repro.net.health) --------------------------------------------
    # The defaults reproduce today's retrieve path exactly: first-reply
    # arrival order, no breakers, no hedging, no deadline budget, crash
    # failover off.  Any non-default value flips ``health_enabled`` and
    # builds a PeerHealthTracker per host.
    peer_policy: str = "arrival"  # key into net.health.SCORING_POLICIES
    policy_epsilon: float = 0.1  # ε for the epsilon-greedy policy
    health_alpha: float = 0.3  # EWMA weight of the health estimators
    breaker_threshold: int = 0  # consecutive failures to trip; 0 = off
    breaker_cooldown: float = 2.0  # s from trip to the half-open probe
    hedge_quantile: float = 0.0  # EWMA-latency quantile to hedge at; 0 = off
    retrieve_deadline: float = 0.0  # per-query retrieve budget (s); 0 = off
    crash_failover: bool = False  # fail over on a replier's down-transition

    # -- GroCoCa: TCG discovery -----------------------------------------------------------
    distance_threshold: float = 100.0  # Δ
    # δ: Section IV-B advises low thresholds because the MSS only samples
    # the access pattern; sampled cosines converge as T·Σp² / (1 + T·Σp²)
    # with T observed accesses, so 0.1 lets TCGs form for every Fig. 4
    # access range within the run lengths used here.
    similarity_threshold: float = 0.1
    omega: float = 0.5  # ω: EWMA weight for weighted average distance
    alpha: float = 0.5  # α: EWMA weight for data update intervals
    explicit_update_period: float = 30.0  # τ_P
    explicit_update_portion: float = 0.25  # ρ_P

    # -- GroCoCa: signatures ------------------------------------------------------------------
    signature_bits: int = 10_000  # σ
    signature_hashes: int = 2  # k
    counter_bits: int = 4  # π_c (own-cache counting bloom filter)
    recollect_batch: int = 1  # departures tolerated before recollection

    # -- GroCoCa: cooperative cache management ----------------------------------------------------
    replace_candidate: int = 10  # ReplaceCandidate
    replace_delay: int = 2  # ReplaceDelay (SingletTTL initial value)
    admission_control: bool = True  # ablation A1
    cooperative_replacement: bool = True  # ablation A2
    signature_filtering: bool = True  # ablation A4
    signature_compression: bool = True  # ablation A3

    # -- policy registry overrides (repro.policies) -----------------------------------------------
    # Empty string = resolve through the legacy mapping (scheme + ablation
    # flags), which keeps every config recorded before these fields existed
    # bit-identical.  A non-empty value must name a registered key and
    # overrides that axis for every host.
    admission_policy: str = ""  # key into the "admission" namespace
    replacement_policy: str = ""  # key into the "replacement" namespace
    discovery_policy: str = ""  # key into the "discovery" namespace

    # -- NDP ---------------------------------------------------------------------------------------
    ndp_enabled: bool = True
    beacon_interval: float = 1.0
    beacon_miss_limit: int = 3

    # -- consistency ----------------------------------------------------------------------------------
    examine_interval: float = 30.0  # idle-item EWMA examination period

    # -- run control -------------------------------------------------------------------------------------
    seed: int = 1
    warmup_min_time: float = 300.0  # extra settling time (TCG formation)
    warmup_max_time: float = 600.0  # give up waiting for full caches here
    measure_requests: int = 200  # per-client requests beyond warmup
    max_sim_time: float = 20_000.0  # hard stop (simulated seconds)
    count_beacon_power: bool = False  # include NDP beacons in power/GCH
    trace_requests: bool = False  # keep per-request traces (percentiles)

    def __post_init__(self):
        if not isinstance(self.scheme, CachingScheme):
            raise ValueError("scheme must be a CachingScheme")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.n_data < 1:
            raise ValueError("n_data must be >= 1")
        if self.data_size < 1:
            raise ValueError("data_size must be >= 1 byte")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if not 1 <= self.access_range <= self.n_data:
            raise ValueError("access_range must be in [1, n_data]")
        if self.theta < 0:
            raise ValueError("theta must be >= 0")
        if self.data_update_rate < 0:
            raise ValueError("data_update_rate must be >= 0")
        if self.area_width <= 0 or self.area_height <= 0:
            raise ValueError("area dimensions must be positive")
        if not 0 < self.v_min <= self.v_max:
            raise ValueError("speeds must satisfy 0 < v_min <= v_max")
        if self.group_span < 0:
            raise ValueError("group_span must be >= 0")
        if self.pause_time < 0:
            raise ValueError("pause_time must be >= 0")
        if self.position_resolution < 0:
            raise ValueError("position_resolution must be >= 0")
        if self.distance_threshold <= 0:
            raise ValueError("distance_threshold must be positive")
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if self.explicit_update_period <= 0:
            raise ValueError("explicit_update_period must be positive")
        if self.signature_bits < 1:
            raise ValueError("signature_bits must be >= 1")
        if self.signature_hashes < 1:
            raise ValueError("signature_hashes must be >= 1")
        if self.counter_bits < 1:
            raise ValueError("counter_bits must be >= 1")
        if self.recollect_batch < 1:
            raise ValueError("recollect_batch must be >= 1")
        if self.beacon_miss_limit < 1:
            raise ValueError("beacon_miss_limit must be >= 1")
        if self.examine_interval <= 0:
            raise ValueError("examine_interval must be positive")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        # warmup_max_time caps the wait-for-full-caches phase; warmup_min_time
        # is an independent floor on total warm-up and may legally exceed it
        # (Fig. 4/7 sweeps stretch the settling window past the cache cap).
        if self.warmup_min_time < 0 or self.warmup_max_time < 0:
            raise ValueError("warmup times must be >= 0")
        if self.max_sim_time <= max(self.warmup_min_time, self.warmup_max_time):
            raise ValueError("max_sim_time must exceed the warm-up window")
        if self.hop_dist < 1:
            raise ValueError("hop_dist must be >= 1")
        if not 0.0 <= self.p_disc <= 1.0:
            raise ValueError("p_disc must be a probability")
        if self.disc_min > self.disc_max:
            raise ValueError("disc_min must be <= disc_max")
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError("omega must be in [0, 1]")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= self.explicit_update_portion <= 1.0:
            raise ValueError("explicit_update_portion must be in [0, 1]")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.replace_candidate < 1:
            raise ValueError("replace_candidate must be >= 1")
        if self.replace_delay < 1:
            raise ValueError("replace_delay must be >= 1")
        if self.measure_requests < 1:
            raise ValueError("measure_requests must be >= 1")
        if self.think_time_mean <= 0:
            raise ValueError("think_time_mean must be positive")
        if self.beacon_interval <= 0:
            raise ValueError("beacon_interval must be positive")
        if self.congestion_phi <= 0:
            raise ValueError("congestion_phi must be positive")
        if self.deviation_phi < 0:
            raise ValueError("deviation_phi must be >= 0")
        if self.tran_range <= 0:
            raise ValueError("tran_range must be positive")
        if self.bw_downlink <= 0 or self.bw_uplink <= 0 or self.bw_p2p <= 0:
            raise ValueError("bandwidths must be positive")
        if not isinstance(self.faults, FaultPlan):
            raise ValueError("faults must be a FaultPlan")
        if self.search_retry_limit < 0:
            raise ValueError("search_retry_limit must be >= 0")
        if self.retrieve_retry_limit < 0:
            raise ValueError("retrieve_retry_limit must be >= 0")
        if self.uplink_retry_limit < 0:
            raise ValueError("uplink_retry_limit must be >= 0")
        if self.retry_backoff_base <= 0:
            raise ValueError("retry_backoff_base must be positive")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        for namespace, value in (
            ("admission", self.admission_policy),
            ("replacement", self.replacement_policy),
            ("discovery", self.discovery_policy),
        ):
            if value and value not in policy_registry.available(namespace):
                raise ValueError(
                    f"unknown {namespace} policy {value!r}; available: "
                    f"{', '.join(policy_registry.available(namespace))}"
                )
        if self.replacement_policy == "grococa" and not self.scheme.group_based:
            raise ValueError(
                "replacement policy 'grococa' needs the GroCoCa signature "
                "scheme (scheme GC)"
            )
        if self.discovery_policy == "tcg" and not self.scheme.group_based:
            raise ValueError("discovery policy 'tcg' requires scheme GC")
        if self.discovery_policy == "none" and self.scheme.group_based:
            raise ValueError(
                "scheme GC requires TCG discovery; discovery policy 'none' "
                "is only valid for LC/CC"
            )
        if not isinstance(self.workload_params, dict) or any(
            not isinstance(name, str) for name in self.workload_params
        ):
            raise ValueError("workload_params must be a dict with string keys")
        if self.workload and self.workload not in workload_registry.available():
            raise ValueError(
                f"unknown workload {self.workload!r}; available: "
                f"{', '.join(workload_registry.available())}"
            )
        if self.peer_policy not in SCORING_POLICIES:
            raise ValueError(
                f"unknown peer_policy {self.peer_policy!r}; "
                f"known: {sorted(SCORING_POLICIES)}"
            )
        if not 0.0 <= self.policy_epsilon <= 1.0:
            raise ValueError("policy_epsilon must be in [0, 1]")
        if not 0.0 < self.health_alpha <= 1.0:
            raise ValueError("health_alpha must be in (0, 1]")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if not 0.0 <= self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in [0, 1)")
        if self.retrieve_deadline < 0:
            raise ValueError("retrieve_deadline must be >= 0")

    @property
    def health_enabled(self) -> bool:
        """Whether the failure-aware retrieve layer is active.

        True when any knob departs from today's behaviour; the default
        config keeps this False so no :class:`~repro.net.health.\
PeerHealthTracker` is built and runs stay bit-identical to the goldens.
        """
        return (
            self.peer_policy != "arrival"
            or self.breaker_threshold > 0
            or self.hedge_quantile > 0.0
            or self.retrieve_deadline > 0.0
            or self.crash_failover
        )

    def with_scheme(self, scheme: CachingScheme) -> "SimulationConfig":
        """A copy of this config running a different scheme."""
        return dataclasses.replace(self, scheme=scheme)

    def replace(self, **overrides) -> "SimulationConfig":
        """A copy with the given fields overridden."""
        return dataclasses.replace(self, **overrides)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict: enums become values, the fault plan nests.

        The exact inverse of :meth:`from_dict`; the result-cache keys and
        golden-trace fixtures both serialise configs through this form.
        """
        payload = dataclasses.asdict(self)
        payload["scheme"] = self.scheme.value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationConfig":
        """Rebuild a config from :meth:`as_dict` output (e.g. JSON)."""
        data = dict(payload)
        data["scheme"] = CachingScheme(data["scheme"])
        faults = data.get("faults")
        if isinstance(faults, dict):
            data["faults"] = FaultPlan(
                p2p=LinkFaults(**faults["p2p"]),
                uplink=LinkFaults(**faults["uplink"]),
                downlink=LinkFaults(**faults["downlink"]),
                crash=CrashFaults(**faults["crash"]),
            )
        return cls(**data)
