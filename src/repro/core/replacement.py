"""GroCoCa cooperative cache replacement (Section IV-E).

The protocol satisfies the paper's three desirable properties:

1. the most valuable items stay in the local cache — only the
   ``ReplaceCandidate`` least-recently-used entries are eviction candidates;
2. an item unaccessed for a long time is eventually replaced — the
   ``SingletTTL`` counter drops a replica-less item after ``ReplaceDelay``
   spared replacements;
3. replicated items go first — a candidate whose data signature is covered
   by the peer signature is likely duplicated in the TCG and is evicted in
   preference, enlarging the aggregate cache.

The victim search walks candidates from least valuable upward, evicting the
first likely-replica.  When the least valuable entry is spared this way its
SingletTTL is decremented; at zero the entry is simply dropped.  A TCG (or
local) access resets the counter to ``ReplaceDelay``.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.lru import CacheEntry, LRUCache
from repro.signatures.bloom import SignatureScheme
from repro.signatures.peer import PeerSignature

__all__ = ["CooperativeReplacement"]


class CooperativeReplacement:
    """Victim selection against the TCG peer signature."""

    def __init__(
        self,
        scheme: SignatureScheme,
        cache: LRUCache,
        peer_signature: PeerSignature,
        replace_candidate: int,
        replace_delay: int,
        enabled: bool = True,
    ):
        if replace_candidate < 1:
            raise ValueError("replace_candidate must be >= 1")
        if replace_delay < 1:
            raise ValueError("replace_delay must be >= 1")
        self.scheme = scheme
        self.cache = cache
        self.peer_signature = peer_signature
        self.replace_candidate = int(replace_candidate)
        self.replace_delay = int(replace_delay)
        self.enabled = enabled
        self.replica_evictions = 0
        self.lru_evictions = 0
        self.singlet_drops = 0

    def new_entry_ttl(self) -> int:
        """Initial SingletTTL for a freshly inserted entry."""
        return self.replace_delay

    def note_access(self, entry: CacheEntry) -> None:
        """A local or TCG access resets the entry's SingletTTL."""
        entry.singlet_ttl = self.replace_delay

    def select_victim(self) -> Optional[CacheEntry]:
        """Choose the entry to evict to make room for one insertion.

        Returns None only when the cache is empty.
        """
        if not len(self.cache):
            return None
        if not self.enabled:
            self.lru_evictions += 1
            return self.cache.lru_entries(1)[0]
        candidates = self.cache.lru_entries(self.replace_candidate)
        least = candidates[0]
        for entry in candidates:
            positions = self.scheme.positions(entry.item)
            if self.peer_signature.matches_positions(positions):
                if entry is least:
                    self.replica_evictions += 1
                    return least
                # The least valuable item is spared because it has no
                # replica: age it, and drop it outright once stale.
                least.singlet_ttl -= 1
                if least.singlet_ttl <= 0:
                    self.singlet_drops += 1
                    return least
                self.replica_evictions += 1
                return entry
        self.lru_evictions += 1
        return least
