"""The paper's contribution: COCA and GroCoCa.

* :mod:`repro.core.config` — Table II parameters and feature flags.
* :mod:`repro.core.metrics` — the paper's reporting vocabulary (access
  latency, server request ratio, LCH/GCH ratios, power per GCH).
* :mod:`repro.core.coca` — the COCA communication protocol helpers
  (adaptive timeout, request bookkeeping).
* :mod:`repro.core.tcg` — tightly-coupled group discovery at the MSS
  (Algorithms 1–3).
* :mod:`repro.core.admission` / :mod:`repro.core.replacement` — GroCoCa's
  cooperative cache management protocols.
* :mod:`repro.core.signatures_proto` — client-side cache signature state
  machine (Section IV-D.3–5).
* :mod:`repro.core.client` / :mod:`repro.core.server` — the mobile host and
  MSS processes.
* :mod:`repro.core.simulation` — wiring and the experiment entry point.
"""

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Metrics, RequestOutcome, Results
from repro.core.simulation import Simulation, run_simulation

__all__ = [
    "CachingScheme",
    "Metrics",
    "RequestOutcome",
    "Results",
    "Simulation",
    "SimulationConfig",
    "run_simulation",
]
