"""The mobile support station (MSS).

The MSS serves data requests over the shared downlink, validates cached
copies (Section IV-F), learns client locations and access patterns from the
piggybacked information on every contact (Section IV-B), runs TCG discovery
for GroCoCa, and piggybacks pending TCG membership changes on its replies
(asynchronous group view change).

The MSS itself computes instantaneously; all latency comes from the
uplink/downlink channels, whose FCFS resources are held by the *client*
processes (this serialises requests exactly like the paper's infinite
server queue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Set, Tuple

from repro.core.config import SimulationConfig
from repro.core.tcg import TCGManager
from repro.data.server_db import ServerDatabase
from repro.sim.kernel import Environment

__all__ = ["MobileSupportStation", "ServerReply", "ValidationReply"]


@dataclass
class ServerReply:
    """What the MSS returns for a data request."""

    item: int
    version: int
    expiry: float
    retrieve_time: float
    added: Set[int] = field(default_factory=set)
    removed: Set[int] = field(default_factory=set)

    @property
    def membership_changes(self) -> int:
        return len(self.added) + len(self.removed)


@dataclass
class ValidationReply:
    """What the MSS returns for a validation request."""

    refreshed: bool  # True: a fresh copy ships; False: copy approved
    version: int
    expiry: float
    retrieve_time: float
    added: Set[int] = field(default_factory=set)
    removed: Set[int] = field(default_factory=set)

    @property
    def membership_changes(self) -> int:
        return len(self.added) + len(self.removed)


class MobileSupportStation:
    """Request handling + passive pattern collection + TCG discovery."""

    def __init__(
        self,
        env: Environment,
        config: SimulationConfig,
        database: ServerDatabase,
        tcg: Optional[TCGManager] = None,
        monitor=None,
        tracer=None,
    ):
        self.env = env
        self.config = config
        self.database = database
        self.tcg = tcg  # None for LC/CC
        #: Optional invariant oracle (duck-typed; see repro.check.monitor).
        self._monitor = monitor
        #: Optional span tracer (see repro.obs.tracer).
        self._tracer = tracer
        self.data_requests = 0
        self.validations = 0
        self.explicit_updates = 0
        self.membership_syncs = 0

    # -- passive collection ------------------------------------------------------

    def _learn(
        self,
        client: int,
        location: Optional[Sequence[float]],
        items: Sequence[int] = (),
    ) -> None:
        if self.tcg is None:
            return
        if location is not None:
            self.tcg.record_location(client, location)
        for item in items:
            self.tcg.record_access(client, item)

    def _drain_changes(self, client: int) -> Tuple[Set[int], Set[int]]:
        if self.tcg is None:
            return set(), set()
        return self.tcg.drain_changes(client)

    # -- request handlers ---------------------------------------------------------

    def handle_data_request(
        self, client: int, item: int, location: Sequence[float]
    ) -> ServerReply:
        """A cache-miss pull of ``item``; returns the copy and its TTL."""
        self.data_requests += 1
        if self._tracer is not None:
            self._tracer.instant("mss-serve", host=client, kind="data", item=item)
        self._learn(client, location, [item])
        added, removed = self._drain_changes(client)
        now = self.env.now
        reply = ServerReply(
            item=item,
            version=int(self.database.version[item]),
            expiry=now + self.database.assign_ttl(item, now),
            retrieve_time=now,
            added=added,
            removed=removed,
        )
        if self._monitor is not None:
            self._monitor.check_server_reply(
                client, reply.expiry, reply.retrieve_time, added, removed, now
            )
        return reply

    def handle_validation(
        self,
        client: int,
        item: int,
        retrieve_time: float,
        location: Sequence[float],
    ) -> ValidationReply:
        """Section IV-F: refresh a stale copy or approve its validity."""
        self.validations += 1
        if self._tracer is not None:
            self._tracer.instant(
                "mss-serve", host=client, kind="validate", item=item
            )
        self._learn(client, location, [item])
        added, removed = self._drain_changes(client)
        now = self.env.now
        refreshed = self.database.updated_since(item, retrieve_time)
        reply = ValidationReply(
            refreshed=refreshed,
            version=int(self.database.version[item]),
            expiry=now + self.database.assign_ttl(item, now),
            retrieve_time=now if refreshed else retrieve_time,
            added=added,
            removed=removed,
        )
        if self._monitor is not None:
            self._monitor.check_server_reply(
                client, reply.expiry, reply.retrieve_time, added, removed, now
            )
        return reply

    def handle_explicit_update(
        self,
        client: int,
        location: Sequence[float],
        peer_accessed_items: Sequence[int],
    ) -> Tuple[Set[int], Set[int]]:
        """Idle-period report: location + a portion of peer-access history."""
        self.explicit_updates += 1
        self._learn(client, location, peer_accessed_items)
        return self._drain_changes(client)

    def handle_membership_sync(self, client: int) -> Set[int]:
        """Authoritative TCG view for a reconnecting client."""
        self.membership_syncs += 1
        if self.tcg is None:
            return set()
        return self.tcg.full_view(client)
