"""GroCoCa cooperative cache admission control (Section IV-E).

The admission rule controls replicas inside a TCG:

* a global cache hit supplied while the local cache still has room is
  always cached;
* with a *full* cache, an item supplied by a TCG member is **not** cached —
  it stays readily available at that member;
* with a full cache, an item supplied by a non-member is cached (the
  supplier may move away), displacing the victim chosen by the cooperative
  replacement protocol.

On the supplier side, serving a TCG member counts as an access: the
supplier refreshes the item's recency so shared items survive longer in the
group's aggregate cache.
"""

from __future__ import annotations

__all__ = ["AdmissionControl"]


class AdmissionControl:
    """The local admission decision for items obtained from peers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.rejected = 0
        self.admitted = 0

    def should_cache(self, cache_full: bool, from_tcg_member: bool) -> bool:
        """Whether a peer-supplied item should be inserted locally."""
        if not self.enabled:
            decision = True
        elif not cache_full:
            decision = True
        else:
            decision = not from_tcg_member
        if decision:
            self.admitted += 1
        else:
            self.rejected += 1
        return decision
