"""Tightly-coupled group discovery at the MSS (Section IV-A..C).

The MSS passively learns two things from every client contact:

* the client's location, piggybacked on requests, feeding the *weighted
  average distance matrix* (WADM) via an EWMA with weight ω (Algorithm 1);
* the client's data access counts, feeding the *access similarity matrix*
  (ASM) of cosine similarities (Algorithm 2).

Two clients are TCG members iff their weighted average distance is at most
Δ *and* their access similarity is at least δ (Algorithm 3); the relation
is symmetric by construction.  Membership changes are announced
asynchronously: they are queued per client and drained the next time that
client contacts the MSS.

The ASM is maintained incrementally: per-pair dot products and per-client
squared norms make one access an O(N) update instead of an O(N · NData)
recomputation.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set, Tuple

import numpy as np

__all__ = ["TCGManager"]


class TCGManager:
    """WADM + ASM bookkeeping and TCG membership (Algorithms 1-3)."""

    def __init__(
        self,
        n_clients: int,
        n_data: int,
        distance_threshold: float,
        similarity_threshold: float,
        omega: float,
        monitor=None,
        tracer=None,
    ):
        if n_clients < 1 or n_data < 1:
            raise ValueError("need clients and data items")
        if distance_threshold < 0:
            raise ValueError("distance threshold must be >= 0")
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity threshold must be in [0, 1]")
        if not 0.0 <= omega <= 1.0:
            raise ValueError("omega must be in [0, 1]")
        self.n_clients = n_clients
        self.n_data = n_data
        self.distance_threshold = float(distance_threshold)
        self.similarity_threshold = float(similarity_threshold)
        self.omega = float(omega)
        #: Optional invariant oracle (duck-typed; see repro.check.monitor).
        self._monitor = monitor
        #: Optional span tracer (see repro.obs.tracer); the TCG manager has
        #: no env reference — the bound tracer supplies the sim time.
        self._tracer = tracer

        self.access_counts = np.zeros((n_clients, n_data), dtype=np.int64)
        self._dot = np.zeros((n_clients, n_clients))
        self._sq_norms = np.zeros(n_clients)
        self.wadm = np.full((n_clients, n_clients), math.inf)
        self._has_location = np.zeros(n_clients, dtype=bool)
        self._last_position = np.zeros((n_clients, 2))
        self.member = np.zeros((n_clients, n_clients), dtype=bool)
        # What each client was last told its TCG is (for async announcements).
        self._announced: List[Set[int]] = [set() for _ in range(n_clients)]
        self.membership_changes = 0

    # -- Algorithm 1: location update ----------------------------------------------

    def record_location(self, client: int, position: Sequence[float]) -> None:
        """Fold a piggybacked location into the WADM and recheck row."""
        position = np.asarray(position, dtype=float)
        others = self._has_location.copy()
        others[client] = False
        if others.any():
            deltas = self._last_position[others] - position
            distances = np.hypot(deltas[:, 0], deltas[:, 1])
            old = self.wadm[client, others]
            first_time = np.isinf(old)
            with np.errstate(invalid="ignore"):
                blended = self.omega * distances + (1.0 - self.omega) * old
            new = np.where(first_time, distances, blended)
            self.wadm[client, others] = new
            self.wadm[others, client] = new
        self._last_position[client] = position
        self._has_location[client] = True
        self._recheck_row(client)

    # -- Algorithm 2: access pattern update ----------------------------------------

    def record_access(self, client: int, item: int, count: int = 1) -> None:
        """Fold accesses into the ASM (incremental cosine) and recheck row."""
        if count < 1:
            raise ValueError("count must be >= 1")
        column = self.access_counts[:, item]
        self._dot[client, :] += count * column
        self._dot[:, client] += count * column
        self._sq_norms[client] += (
            2.0 * count * self.access_counts[client, item] + count * count
        )
        self.access_counts[client, item] += count
        self._recheck_row(client)

    # -- similarity / distance queries ----------------------------------------------

    def similarity(self, i: int, j: int) -> float:
        """Cosine similarity of two clients' access vectors (Equation 2)."""
        if i == j:
            return 1.0
        denominator = self._sq_norms[i] * self._sq_norms[j]
        if denominator <= 0.0:
            return 0.0
        return float(self._dot[i, j] / math.sqrt(denominator))

    def similarity_row(self, client: int) -> np.ndarray:
        denominator = self._sq_norms[client] * self._sq_norms
        with np.errstate(divide="ignore", invalid="ignore"):
            row = np.where(
                denominator > 0.0,
                self._dot[client] / np.sqrt(denominator),
                0.0,
            )
        row[client] = 1.0
        return row

    def weighted_distance(self, i: int, j: int) -> float:
        return float(self.wadm[i, j])

    # -- Algorithm 3: membership checking ---------------------------------------------

    def _recheck_row(self, client: int) -> None:
        eligible = (
            (self.wadm[client] <= self.distance_threshold)
            & (self.similarity_row(client) >= self.similarity_threshold)
            & self._has_location
        )
        eligible[client] = False
        if not self._has_location[client]:
            eligible[:] = False
        changed = eligible != self.member[client]
        if changed.any():
            self.member[client] = eligible
            self.member[:, client] = eligible
            self.membership_changes += int(changed.sum())
            if self._tracer is not None:
                self._tracer.instant(
                    "tcg-change",
                    host=client,
                    changed=int(changed.sum()),
                    size=int(eligible.sum()),
                )
        if self._monitor is not None:
            self._monitor.check_tcg_row(self, client)

    # -- client-facing views --------------------------------------------------------------

    def tcg_of(self, client: int) -> Set[int]:
        """The current TCG of a client (live MSS view)."""
        return set(int(j) for j in np.nonzero(self.member[client])[0])

    def drain_changes(self, client: int) -> Tuple[Set[int], Set[int]]:
        """Membership delta since this client was last told (async view change).

        Returns (added, removed) and marks the current view as announced.
        """
        current = self.tcg_of(client)
        previous = self._announced[client]
        added = current - previous
        removed = previous - current
        self._announced[client] = current
        return added, removed

    def announced_view(self, client: int) -> Set[int]:
        """What the client currently believes its TCG is."""
        return set(self._announced[client])

    def full_view(self, client: int) -> Set[int]:
        """Authoritative membership for a reconnection sync (marks announced)."""
        current = self.tcg_of(client)
        self._announced[client] = set(current)
        return current
