"""Experiment wiring: build a configured system and run it to completion.

The run protocol follows Section VI: simulate until the system is in a
stable state (every client cache is full, capped by ``warmup_max_time``),
then start recording and keep going until every client has completed at
least ``measure_requests`` further requests (capped by ``max_sim_time``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.client import MobileHost
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Metrics, Results
from repro.core.server import MobileSupportStation
from repro.core.tcg import TCGManager
from repro.data.server_db import ServerDatabase
from repro.workloads.factory import build_workload
from repro.mobility.field import build_group_mobility
from repro.mobility.geometry import Rectangle
from repro.net.channel import ServerChannel
from repro.net.faults import FaultInjector
from repro.net.message import MessageSizes
from repro.net.health import COUNTER_NAMES, PeerHealthTracker
from repro.net.ndp import NeighborDiscovery
from repro.net.p2p import P2PNetwork
from repro.net.power import PowerLedger
from repro.policies import factory as policy_factory
from repro.sim.kernel import Environment
from repro.sim.profile import RunProfile
from repro.sim.random import RandomStreams
from repro.signatures.bloom import SignatureScheme

__all__ = ["Simulation", "run_simulation", "simulations_run"]

#: Simulations completed by *this process* (workers count their own runs).
#: The cache tests assert a cached sweep leaves this untouched.
_SIMULATIONS_RUN = 0


def simulations_run() -> int:
    """How many simulations this process has executed to completion."""
    return _SIMULATIONS_RUN

#: Simulated seconds between termination-condition checks.
_CHUNK = 10.0


class Simulation:
    """One fully wired simulated mobile environment.

    ``monitor`` optionally attaches a
    :class:`~repro.check.monitor.InvariantMonitor`: its hook points are
    threaded through the kernel, the clients, the MSS, the NDP and the
    TCG manager, and a periodic audit process sweeps the global
    invariants.  Without a monitor every hook collapses to a dormant
    ``is None`` branch and the simulated outcome is bit-identical.

    ``observer`` optionally attaches a :class:`~repro.obs.session.Observer`
    the same way: its tracer is threaded through the clients, the MSS,
    the NDP and the TCG manager, and its sampler runs as a periodic
    audit-style kernel process.  Observation is read-only — an observed
    run produces identical :class:`Results` fields.
    """

    def __init__(self, config: SimulationConfig, monitor=None, observer=None):
        self.config = config
        self.monitor = monitor
        self.observer = observer
        tracer = observer.tracer if observer is not None else None
        if monitor is not None:
            monitor.bind(config)
        self.env = Environment(monitor=monitor)
        self.streams = RandomStreams(config.seed)
        self.metrics = Metrics(config.scheme.value, trace=config.trace_requests)

        area = Rectangle(config.area_width, config.area_height)
        self.field, self.group_of = build_group_mobility(
            self.streams.stream("mobility"),
            config.n_clients,
            config.group_size,
            area,
            config.v_min,
            config.v_max,
            pause_time=config.pause_time,
            group_span=config.group_span,
            resolution=config.position_resolution,
        )
        self.ledger = PowerLedger(config.n_clients)
        # The injector is only built when the plan can actually do anything,
        # so an all-zero plan leaves the hot paths on their faults-is-None
        # short-circuits and advances no RNG stream (bit-identical runs).
        self.faults: Optional[FaultInjector] = None
        if config.faults.enabled:
            self.faults = FaultInjector(
                config.faults, self.streams, config.n_clients
            )
        self.network = P2PNetwork(
            self.env,
            self.field,
            config.bw_p2p,
            config.tran_range,
            self.ledger,
            faults=self.faults,
        )
        self.channel = ServerChannel(
            self.env, config.bw_downlink, config.bw_uplink, faults=self.faults
        )
        self.database = ServerDatabase(
            self.env,
            self.streams.stream("updates"),
            config.n_data,
            update_rate=config.data_update_rate,
            alpha=config.alpha,
            examine_interval=config.examine_interval,
        )
        # Discovery resolves through the policy registry; the legacy
        # mapping gives GC its TCGManager and LC/CC None, exactly as the
        # scheme check used to.
        self._policy_keys = policy_factory.resolved_policy_keys(config)
        self._custom_policies = policy_factory.custom_policies(config)
        self.tcg: Optional[TCGManager] = policy_factory.build_discovery(
            config, monitor=monitor, tracer=tracer
        )
        self.signature_scheme: Optional[SignatureScheme] = None
        if config.scheme is CachingScheme.GC:
            self.signature_scheme = SignatureScheme(
                self.streams.stream("hash"),
                config.signature_bits,
                config.signature_hashes,
            )
        self.server = MobileSupportStation(
            self.env, config, self.database, tcg=self.tcg, monitor=monitor,
            tracer=tracer,
        )
        self.ndp: Optional[NeighborDiscovery] = None
        if config.ndp_enabled:
            self.ndp = NeighborDiscovery(
                self.env,
                self.network,
                beacon_interval=config.beacon_interval,
                miss_limit=config.beacon_miss_limit,
                monitor=monitor,
                tracer=tracer,
            )
        sizes = MessageSizes(data=config.data_size)
        # The demand process resolves through the workload registry;
        # workload="" builds the stationary-zipf engine, which replays
        # the legacy build_access_patterns path bit-identically (same
        # "workload" stream, same draw order).
        self.workload = build_workload(config, self.streams, self.group_of)
        # Failure-aware retrieve layer (repro.net.health): trackers exist
        # only when some knob moved off its golden default, so a legacy
        # configuration constructs nothing, draws from no new stream, and
        # stays bit-identical.  Only cooperative schemes retrieve from
        # peers, so LC never gets a tracker.
        self._trackers: List[Optional[PeerHealthTracker]] = [None] * config.n_clients
        if config.health_enabled and config.scheme.cooperative:
            policy_rng = (
                self.streams.stream("peer-policy")
                if config.peer_policy == "epsilon-greedy"
                else None
            )
            self._trackers = [
                PeerHealthTracker(
                    alpha=config.health_alpha,
                    breaker_threshold=config.breaker_threshold,
                    breaker_cooldown=config.breaker_cooldown,
                    policy=config.peer_policy,
                    epsilon=config.policy_epsilon,
                    rng=policy_rng,
                )
                for _ in range(config.n_clients)
            ]
        jitter_rng = (
            self.streams.stream("retry-jitter") if config.retry_jitter > 0 else None
        )
        # Shared stream for stochastic admission policies; deterministic
        # policies (every legacy mapping) create no stream at all.
        admission_rng = (
            self.streams.stream("admission-policy")
            if policy_factory.admission_needs_rng(config)
            else None
        )
        self.clients: List[MobileHost] = [
            MobileHost(
                index,
                self.env,
                config,
                self.network,
                self.channel,
                self.server,
                self.workload.bind(index, self.streams.stream(f"client-{index}")),
                self.metrics,
                self.streams.stream(f"client-{index}"),
                sizes,
                signature_scheme=self.signature_scheme,
                ndp=self.ndp,
                monitor=monitor,
                tracer=tracer,
                health=self._trackers[index],
                jitter_rng=jitter_rng,
                admission_rng=admission_rng,
            )
            for index in range(config.n_clients)
        ]
        if self.faults is not None and config.faults.crash.enabled:
            self.env.process(self._crash_daemon())
        if monitor is not None:
            self.env.process(self._audit_loop())
        if observer is not None:
            observer.attach(self)

    def _audit_loop(self):
        """Periodic global invariant sweep (monitored runs only)."""
        while True:
            yield self.env.timeout(self.monitor.audit_interval)
            self.monitor.audit(self)

    # -- fault processes ----------------------------------------------------------

    def _crash_daemon(self):
        """Crash-stop outages: pick victims from a Poisson process.

        A victim that is already offline (disconnected or still down from a
        previous crash) is skipped — the exponential clock keeps ticking so
        the aggregate crash rate is independent of how many hosts are up.
        """
        faults = self.faults
        while True:
            yield self.env.timeout(faults.next_crash_delay())
            victim = self.clients[faults.crash_victim()]
            if not victim.connected:
                continue
            faults.crashes += 1
            self.env.process(self._host_outage(victim))

    def _host_outage(self, victim: MobileHost):
        """One crash-stop outage of one host, then recovery."""
        victim.crash()
        yield self.env.timeout(self.faults.outage_duration())
        yield from victim.recover()

    # -- run protocol -------------------------------------------------------------

    def caches_full(self) -> bool:
        return all(len(client.cache) >= self.config.cache_size for client in self.clients)

    def warm_up(self) -> float:
        """Run to a stable state: caches full (or the warm-up cap) and at
        least ``warmup_min_time`` elapsed (TCG discovery and signature
        collection settle during this window); returns now."""
        while (
            not self.caches_full() and self.env.now < self.config.warmup_max_time
        ):
            self.env.run(until=self.env.now + _CHUNK)
        if self.env.now < self.config.warmup_min_time:
            self.env.run(until=self.config.warmup_min_time)
        return self.env.now

    def measure(self) -> Results:
        """Record until every client completed ``measure_requests`` requests."""
        config = self.config
        self.metrics.start_recording(self.env.now, self.ledger, config.n_clients)
        while (
            self.metrics.min_client_requests() < config.measure_requests
            and self.env.now < config.max_sim_time
        ):
            self.env.run(until=self.env.now + _CHUNK)
        return self.metrics.results(
            self.env.now, self.ledger, count_beacon_power=config.count_beacon_power
        )

    def run(self) -> Results:
        self.warm_up()
        return self.measure()

    def profile(self, wall_time: float) -> RunProfile:
        """Snapshot the run's timing and per-subsystem work counters."""
        counters = {
            "p2p_broadcasts": self.network.broadcasts,
            "p2p_unicasts": self.network.unicasts,
            "p2p_failed_unicasts": self.network.failed_unicasts,
            "server_uplink_requests": self.channel.uplink_requests,
            "server_downlink_requests": self.channel.downlink_requests,
            "server_uplink_wait": self.channel.uplink_wait,
            "server_downlink_wait": self.channel.downlink_wait,
            "snapshot_rebuilds": self.field.snapshot_rebuilds,
            "snapshot_refreshes": self.field.snapshot_refreshes,
            "snapshot_reuses": self.field.snapshot_reuses,
            "ndp_rounds": self.ndp.rounds if self.ndp is not None else 0,
            "beacons_sent": self.ndp.beacons_sent if self.ndp is not None else 0,
        }
        for name, value in self.env.queue_stats().items():
            counters[f"kernel_{name}"] = value
        if self.faults is not None:
            counters.update(self.faults.counters())
        if any(tracker is not None for tracker in self._trackers):
            # Health counters appear only when the layer is on, so golden
            # profiles keep their exact pre-health counter set.
            for name in COUNTER_NAMES:
                counters[f"health_{name}"] = sum(
                    tracker.counts[name]
                    for tracker in self._trackers
                    if tracker is not None
                )
        if self._custom_policies:
            # Policy engagement counters appear only when some resolved
            # key departs from the legacy mapping, so golden profiles (and
            # the differential replay) keep their exact counter set.
            counters["policy_admitted"] = sum(
                client.admission.admitted for client in self.clients
            )
            counters["policy_rejected"] = sum(
                client.admission.rejected for client in self.clients
            )
            counters["policy_evictions"] = sum(
                client.replacement.eviction_count() for client in self.clients
            )
        return RunProfile(
            wall_time=wall_time,
            events=self.env.events_processed,
            counters=counters,
        )


def run_simulation(config: SimulationConfig, monitor=None, observer=None) -> Results:
    """Build and run one experiment; the main public entry point.

    The returned :class:`Results` carries a :class:`RunProfile` (wall-clock,
    events processed, per-subsystem counters) in its ``profile`` field.
    ``monitor`` optionally attaches an
    :class:`~repro.check.monitor.InvariantMonitor`; its final audit runs
    after the measurement window completes.  ``observer`` optionally
    attaches a :class:`~repro.obs.session.Observer` (span tracer +
    time-series sampler); it is finalized — open spans swept, the closing
    sample taken — before this function returns.
    """
    global _SIMULATIONS_RUN
    start = time.perf_counter()  # simlint: allow[no-wall-clock] reason=profiling only; never feeds simulated time
    simulation = Simulation(config, monitor=monitor, observer=observer)
    results = simulation.run()
    if monitor is not None:
        monitor.finalize(simulation)
    if observer is not None:
        observer.finalize(simulation)
    _SIMULATIONS_RUN += 1
    elapsed = time.perf_counter() - start  # simlint: allow[no-wall-clock] reason=profiling only; never feeds simulated time
    results.profile = simulation.profile(elapsed)
    return results


def compare_schemes(
    config: SimulationConfig,
    schemes: Optional[List[CachingScheme]] = None,
) -> Dict[str, Results]:
    """Run the same configuration under several schemes (same seed)."""
    if schemes is None:
        schemes = [CachingScheme.LC, CachingScheme.CC, CachingScheme.GC]
    return {
        scheme.value: run_simulation(config.with_scheme(scheme))
        for scheme in schemes
    }
