"""LRU cache with TTL-carrying entries.

All three schemes in the paper (conventional, COCA, GroCoCa) use
least-recently-used replacement as the base value ordering; GroCoCa's
cooperative replacement protocol additionally inspects the ``ReplaceCandidate``
least-valuable entries and their ``SingletTTL`` counters, which live here as
per-entry metadata.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

__all__ = ["CacheEntry", "LRUCache"]


@dataclass
class CacheEntry:
    """One cached data item.

    ``expiry`` is the *absolute* simulation time at which the copy's TTL
    runs out (``inf`` for items that are never updated).  ``retrieve_time``
    is when the copy was fetched from the MSS (``t_r``), used for
    validation.  ``version`` tracks the data version for correctness checks.
    ``singlet_ttl`` is GroCoCa's drop counter for replica-less candidates.
    """

    item: int
    expiry: float = math.inf
    retrieve_time: float = 0.0
    version: int = 0
    last_access: float = 0.0
    singlet_ttl: int = field(default=0)

    def is_valid(self, now: float) -> bool:
        """Whether the copy's TTL has not yet expired."""
        return now <= self.expiry

    def remaining_ttl(self, now: float) -> float:
        return max(self.expiry - now, 0.0)


class LRUCache:
    """A fixed-capacity LRU cache of :class:`CacheEntry` objects."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: int) -> bool:
        return item in self._entries

    def __iter__(self) -> Iterator[int]:
        """Items from least to most recently used."""
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, item: int) -> Optional[CacheEntry]:
        """Look up without touching recency."""
        return self._entries.get(item)

    def touch(self, item: int, now: float) -> None:
        """Mark ``item`` most recently used at time ``now``."""
        entry = self._entries.get(item)
        if entry is None:
            raise KeyError(item)
        entry.last_access = now
        self._entries.move_to_end(item)

    def insert(self, entry: CacheEntry, now: float) -> Optional[CacheEntry]:
        """Insert (or refresh) an entry as MRU; evict LRU when over capacity.

        Returns the evicted entry, if any.  This is the plain LRU admission
        used by the conventional and COCA schemes; GroCoCa picks its own
        victim first and then calls :meth:`evict` / :meth:`insert`.
        """
        entry.last_access = now
        evicted = None
        if entry.item not in self._entries and self.is_full:
            evicted = self.evict_lru()
        self._entries[entry.item] = entry
        self._entries.move_to_end(entry.item)
        self.insertions += 1
        return evicted

    def evict(self, item: int) -> CacheEntry:
        """Remove a specific item."""
        entry = self._entries.pop(item, None)
        if entry is None:
            raise KeyError(item)
        self.evictions += 1
        return entry

    def evict_lru(self) -> CacheEntry:
        """Remove the least recently used entry."""
        if not self._entries:
            raise KeyError("evict_lru on empty cache")
        _item, entry = self._entries.popitem(last=False)
        self.evictions += 1
        return entry

    def lru_entries(self, count: int) -> List[CacheEntry]:
        """The ``count`` least valuable entries, least-valuable first."""
        result = []
        for item in self._entries:
            if len(result) >= count:
                break
            result.append(self._entries[item])
        return result

    def items(self) -> List[int]:
        """All cached item ids (LRU -> MRU order)."""
        return list(self._entries)
