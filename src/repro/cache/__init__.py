"""Client cache substrate: an LRU cache with per-entry TTL metadata."""

from repro.cache.lru import CacheEntry, LRUCache

__all__ = ["CacheEntry", "LRUCache"]
