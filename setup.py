"""Legacy shim so `pip install -e .` works without the `wheel` package
(this environment is offline and cannot fetch PEP 517 build requirements).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
