#!/usr/bin/env python3
"""Tuning the cache signature scheme (Section IV-D) offline.

Before deploying GroCoCa one must pick the Bloom filter size σ, the number
of hash functions k, and decide when VLFL compression pays off.  This
script explores that design space with the library's signature API:

* false-positive probability — analytic vs measured,
* the optimal number of hashes for a given σ/ε,
* Algorithm 4's optimal run cap R and the realised compression ratio,
* the compress-or-not decision boundary.

Run:
    python examples/signature_tuning.py
"""

import numpy as np

from repro.signatures import (
    SignatureScheme,
    find_optimal_r,
    should_compress,
    vlfl_encode,
)
from repro.signatures.vlfl import expected_compressed_bits, zero_probability

CACHE_ITEMS = 100  # ε: a full cache of Table II's default size


def false_positive_table() -> None:
    print("False-positive probability for a full cache (eps = 100 items)\n")
    print(f"{'sigma':>8} {'k':>3} {'analytic':>10} {'measured':>10} {'k_opt':>6}")
    rng = np.random.default_rng(0)
    for size_bits in (2000, 5000, 10_000, 20_000):
        for k in (1, 2, 4):
            scheme = SignatureScheme(rng, size_bits, k)
            bloom = scheme.make_filter()
            bloom.add_all(range(CACHE_ITEMS))
            probes = range(10_000, 14_000)
            measured = sum(bloom.might_contain(i) for i in probes) / 4000
            print(
                f"{size_bits:>8} {k:>3}"
                f" {scheme.false_positive_probability(CACHE_ITEMS):>10.4f}"
                f" {measured:>10.4f}"
                f" {SignatureScheme.optimal_k(size_bits, CACHE_ITEMS):>6}"
            )
    print()


def compression_table() -> None:
    print("VLFL compression at sigma = 10,000, k = 2 (Algorithm 4)\n")
    print(
        f"{'cached':>8} {'phi':>8} {'R*':>6} {'predicted':>10}"
        f" {'actual':>8} {'ratio':>7} {'compress?':>10}"
    )
    rng = np.random.default_rng(1)
    size_bits, k = 10_000, 2
    scheme = SignatureScheme(rng, size_bits, k)
    for cached in (10, 50, 100, 500, 1000, 3000):
        bloom = scheme.make_filter()
        bloom.add_all(range(cached))
        run_cap = find_optimal_r(cached, size_bits, k)
        phi = zero_probability(cached, size_bits, k)
        predicted = expected_compressed_bits(size_bits, phi, run_cap) / 8
        actual = vlfl_encode(bloom.bits, run_cap).size_bytes
        decision = "yes" if should_compress(cached, size_bits, k) else "no"
        print(
            f"{cached:>8} {phi:>8.4f} {run_cap:>6} {predicted:>10.0f}"
            f" {actual:>8} {actual / (size_bits / 8):>7.3f} {decision:>10}"
        )
    print()
    print(
        "The decision boundary: a client compresses only while the expected"
        "\ncompressed size beats the raw sigma/8 bytes - densely filled"
        "\nsignatures (large caches) go out raw."
    )


def main() -> None:
    false_positive_table()
    compression_table()


if __name__ == "__main__":
    main()
