#!/usr/bin/env python3
"""Scenario: field survey teams with flaky connectivity.

Survey teams roam a site; handhelds power-save aggressively, so clients
drop off the network after finishing work with some probability (the
paper's Section VI-F setting).  This script sweeps the disconnection
probability for GroCoCa and shows the trade the paper reports: the
downlink decongests (latency falls for everyone), but the cooperative
cache loses reach and the reconnection protocol (membership sync +
signature recollection) costs extra power.

Run:
    python examples/field_team_disconnections.py
"""

from repro import CachingScheme, SimulationConfig


def main() -> None:
    base = SimulationConfig(
        scheme=CachingScheme.GC,
        n_clients=20,
        group_size=5,
        n_data=2000,
        access_range=200,
        cache_size=30,
        bw_downlink=500_000.0,
        measure_requests=40,
        warmup_min_time=200.0,
        warmup_max_time=300.0,
        ndp_enabled=False,
        seed=5,
    )

    print("GroCoCa under increasing disconnection probability\n")
    print(
        f"{'P_disc':>8} {'latency(ms)':>12} {'GCH(%)':>8} {'server(%)':>10}"
        f" {'sig power(uW.s)':>16} {'syncs':>7}"
    )
    for p_disc in (0.0, 0.1, 0.2, 0.3):
        from repro.core.simulation import Simulation

        sim = Simulation(base.replace(p_disc=p_disc))
        results = sim.run()
        print(
            f"{p_disc:>8.2f} {results.access_latency * 1000:>12.1f}"
            f" {results.gch_ratio:>8.1f} {results.server_request_ratio:>10.1f}"
            f" {results.power_signature:>16,.0f}"
            f" {sim.server.membership_syncs:>7}"
        )

    print(
        "\nAs P_disc grows, peers vanish mid-tour: the global cache hit"
        "\nratio erodes while signature power climbs - every reconnection"
        "\ntriggers a membership sync and a full signature recollection."
    )


if __name__ == "__main__":
    main()
