#!/usr/bin/env python3
"""Why COCA pulls: push vs hybrid vs pull data delivery (Section I).

The paper motivates its pull + P2P design against the push-based and
hybrid dissemination models: broadcast channels scale to any audience, but
a client must wait for the air index and then for its item's slot — paying
cycle-bound latency and doze energy.  This script reproduces the argument
and then shows the flip side: sweeping the population, the pull downlink
saturates while the push latency stays constant.

Run:
    python examples/delivery_models.py
"""

from repro.delivery import compare_delivery_models


def print_table(title, outcomes):
    print(title)
    print(f"{'model':>8} {'latency(s)':>12} {'power/req(uW.s)':>17}"
          f" {'from air':>9} {'server reqs':>12}")
    for name in ("pull", "hybrid", "push"):
        r = outcomes[name]
        print(
            f"{name:>8} {r.access_latency:>12.3f} {r.power_per_request:>17,.0f}"
            f" {r.pushed_fraction:>8.0%} {r.server_requests:>12}"
        )
    print()


def main() -> None:
    print("=== One shared 2.5 Mb/s channel, 2,000-item database ===\n")
    outcomes = compare_delivery_models(
        n_clients=20, n_data=2000, access_range=200, hot_items=200,
        requests_per_client=15, seed=7,
    )
    print_table("20 clients (pull unsaturated):", outcomes)

    print("=== Scaling the audience: pull saturates, push does not ===\n")
    print(f"{'clients':>8} {'pull latency(s)':>16} {'push latency(s)':>16}")
    for n_clients in (10, 40, 160):
        sweep = compare_delivery_models(
            n_clients=n_clients, n_data=2000, access_range=200,
            hot_items=200, requests_per_client=10, seed=7,
        )
        print(
            f"{n_clients:>8} {sweep['pull'].access_latency:>16.3f}"
            f" {sweep['push'].access_latency:>16.3f}"
        )
    print(
        "\nPush latency is pinned to the broadcast cycle regardless of the"
        "\naudience; pull is far faster until the downlink saturates. COCA"
        "\nkeeps the pull model and fights the saturation with the peers'"
        "\ncaches instead."
    )


if __name__ == "__main__":
    main()
