#!/usr/bin/env python3
"""Scenario: guided tour groups in a museum hall.

The paper's motivating workload: visitors move in tour groups (reference
point group mobility), and members of a group ask for the same exhibit
information (a shared Zipf access range).  This script compares the three
schemes — conventional caching (LC), COCA (CC) and GroCoCa (GC) — on this
scenario and shows why group-aware cooperation wins: the tour group *is*
the tightly-coupled group, so cache signatures and cooperative cache
management concentrate exactly where the sharing happens.

Run:
    python examples/museum_tour_groups.py
"""

from repro import SimulationConfig, compare_schemes


def main() -> None:
    # A 400 m x 400 m hall, 24 visitors in 4 tour groups of 6, strolling at
    # 0.5-1.5 m/s.  Each group follows its own path through ~150 exhibits
    # of a 3,000-item catalogue; the popular exhibits dominate (theta=0.8).
    config = SimulationConfig(
        n_clients=24,
        group_size=6,
        area_width=400.0,
        area_height=400.0,
        v_min=0.5,
        v_max=1.5,
        n_data=3000,
        access_range=150,
        theta=0.8,
        cache_size=25,
        bw_downlink=400_000.0,  # one congested access point for the hall
        measure_requests=40,
        warmup_min_time=200.0,
        warmup_max_time=300.0,
        ndp_enabled=False,
        seed=11,
    )

    print("Simulating 4 tour groups x 6 visitors under LC / CC / GC ...\n")
    outcomes = compare_schemes(config)

    header = f"{'':>22}" + "".join(f"{name:>12}" for name in outcomes)
    print(header)
    rows = [
        ("access latency (ms)", lambda r: f"{r.access_latency * 1000:.1f}"),
        ("server requests (%)", lambda r: f"{r.server_request_ratio:.1f}"),
        ("local hits (%)", lambda r: f"{r.lch_ratio:.1f}"),
        ("global hits (%)", lambda r: f"{r.gch_ratio:.1f}"),
        ("hits from own group", lambda r: str(r.global_hits_tcg)),
        ("power/GCH (uW.s)", lambda r: (
            "-" if r.global_hits == 0 else f"{r.power_per_gch:,.0f}"
        )),
    ]
    for label, render in rows:
        cells = "".join(f"{render(r):>12}" for r in outcomes.values())
        print(f"{label:>22}{cells}")

    gc = outcomes["GC"]
    if gc.global_hits:
        share = 100.0 * gc.global_hits_tcg / gc.global_hits
        print(
            f"\nGroCoCa sourced {share:.0f}% of its global hits from the"
            " visitor's own tour group - the TCG discovery found the tour"
            " groups from mobility and access similarity alone."
        )


if __name__ == "__main__":
    main()
