#!/usr/bin/env python3
"""Scoring TCG discovery against the ground truth.

A real MSS never knows the true motion groups; the simulator does.  This
script runs GroCoCa, then uses :mod:`repro.analysis` to score what the
MSS discovered from piggybacked locations and sampled access patterns:

* precision / recall of the discovered TCG pairs vs the true groups,
* how the cooperative cache management reshapes cache contents — plain
  COCA members duplicate their shared hot set, GroCoCa suppresses the
  duplication and enlarges the group's aggregate cache.

Run:
    python examples/tcg_discovery_quality.py
"""

import numpy as np

from repro import CachingScheme, SimulationConfig
from repro.analysis import (
    cache_duplication,
    cache_overlap_matrix,
    group_distinct_items,
    jain_fairness,
    tcg_discovery_quality,
)
from repro.core.simulation import Simulation


def build(scheme):
    sim = Simulation(
        SimulationConfig(
            scheme=scheme,
            n_clients=20,
            n_data=2000,
            access_range=200,
            cache_size=30,
            group_size=5,
            bw_downlink=500_000.0,
            measure_requests=40,
            warmup_min_time=200.0,
            warmup_max_time=300.0,
            ndp_enabled=False,
            seed=17,
        )
    )
    sim.run()
    return sim


def mean_same_group_overlap(sim):
    matrix = cache_overlap_matrix(sim)
    groups = np.asarray(sim.group_of)
    same = groups[:, None] == groups[None, :]
    np.fill_diagonal(same, False)
    upper = np.triu(np.ones_like(same, dtype=bool), k=1)
    return matrix[same & upper].mean()


def main() -> None:
    print("Running GroCoCa (20 clients, 4 motion groups of 5) ...")
    gc = build(CachingScheme.GC)
    quality = tcg_discovery_quality(gc)
    print("\nTCG discovery vs ground-truth motion groups")
    print(f"  true same-group pairs   : {quality.true_pairs}")
    print(f"  discovered TCG pairs    : {quality.discovered_pairs}")
    print(f"  correct                 : {quality.correct_pairs}")
    print(f"  precision / recall / F1 : {quality.precision:.2f} /"
          f" {quality.recall:.2f} / {quality.f1:.2f}")

    print("\nRunning plain COCA on the same world for contrast ...")
    cc = build(CachingScheme.CC)
    print("\nCache content shape (per motion group)")
    print(f"  {'':>28} {'COCA':>8} {'GroCoCa':>9}")
    print(f"  {'distinct items cached':>28}"
          f" {np.mean(list(group_distinct_items(cc).values())):>8.0f}"
          f" {np.mean(list(group_distinct_items(gc).values())):>9.0f}")
    print(f"  {'duplication (copies/distinct)':>28}"
          f" {cache_duplication(cc):>8.2f} {cache_duplication(gc):>9.2f}")
    print(f"  {'same-group cache overlap':>28}"
          f" {mean_same_group_overlap(cc):>8.3f}"
          f" {mean_same_group_overlap(gc):>9.3f}")

    per_client = gc.metrics.per_client_requests
    print(f"\nRequest fairness across clients (Jain): "
          f"{jain_fairness(per_client):.3f}")
    print(
        "\nGroCoCa discovered the tour groups from sampled data alone and"
        "\nconverted them into a bigger aggregate cache: fewer duplicate"
        "\ncopies, more distinct items per group."
    )


if __name__ == "__main__":
    main()
