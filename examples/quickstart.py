#!/usr/bin/env python3
"""Quickstart: run one GroCoCa experiment and read the headline metrics.

A small mobile environment — 20 clients in motion groups of 5, a 2,000-item
database, 30-item caches — is simulated under the GroCoCa scheme and the
paper's reporting vocabulary is printed: access latency, server request
ratio, local/global cache hit ratios and power per global cache hit.

Run:
    python examples/quickstart.py
"""

from repro import CachingScheme, SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        scheme=CachingScheme.GC,
        n_clients=20,
        n_data=2000,
        access_range=200,
        cache_size=30,
        group_size=5,
        bw_downlink=500_000.0,  # keep the shared downlink busy
        measure_requests=40,
        warmup_min_time=200.0,
        warmup_max_time=300.0,
        ndp_enabled=False,  # oracle neighbourhood: faster, same protocol
        seed=42,
    )
    print("Running GroCoCa with 20 mobile hosts ...")
    results = run_simulation(config)

    print(f"\n  requests completed      : {results.requests}")
    print(f"  access latency          : {results.access_latency * 1000:.1f} ms")
    print(f"  local cache hit ratio   : {results.lch_ratio:.1f} %")
    print(f"  global cache hit ratio  : {results.gch_ratio:.1f} %")
    print(f"    ... from TCG members  : {results.global_hits_tcg}")
    print(f"  server request ratio    : {results.server_request_ratio:.1f} %")
    print(f"  power per GCH           : {results.power_per_gch:,.0f} uW.s")
    print(f"  searches bypassed       : {results.bypassed_searches}"
          f" (saved by cache signatures)")


if __name__ == "__main__":
    main()
