"""The workload registry: keys, params, config flow, sweep and CLI surface."""

import pytest

from repro.cli import main
from repro.core.config import SimulationConfig
from repro.core.simulation import run_simulation
from repro.experiments import sweeps
from repro.obs import SAMPLE_COLUMNS, Observer
from repro.workloads import (
    DEFAULT_WORKLOAD,
    REQUIRED,
    PatternStream,
    WorkloadEngine,
    available,
    describe,
    registry,
    resolve,
    resolve_params,
    resolved_workload_key,
    temporary_workload,
)

BUILTINS = {
    "diurnal",
    "flash-crowd",
    "popularity-drift",
    "stationary-zipf",
    "trace-replay",
    "ycsb",
}


# -- registry API ----------------------------------------------------------------


def test_builtin_workloads_are_registered():
    assert BUILTINS <= set(available())
    assert available() == sorted(available())


def test_describe_carries_summary_and_citation():
    info = describe("stationary-zipf")
    assert info.key == "stationary-zipf"
    assert "legacy" in info.summary
    assert "ICDCS" in info.citation


def test_resolve_returns_an_engine_class():
    engine = resolve("stationary-zipf")
    assert issubclass(engine, WorkloadEngine)


def test_unknown_key_lists_every_valid_key():
    with pytest.raises(KeyError) as excinfo:
        describe("nope")
    message = str(excinfo.value)
    assert "unknown workload 'nope'" in message
    for key in BUILTINS:
        assert key in message


def test_duplicate_and_empty_keys_are_rejected():
    with pytest.raises(ValueError, match="duplicate workload 'ycsb'"):
        registry.register_value("ycsb", object())
    with pytest.raises(ValueError, match="non-empty string"):
        registry.register_value("", object())


def test_temporary_workload_is_removed_on_exit():
    marker = object()
    with temporary_workload("tmp-workload", marker):
        assert resolve("tmp-workload") is marker
    assert "tmp-workload" not in available()


# -- parameter resolution --------------------------------------------------------


def test_resolve_params_merges_over_defaults():
    params = resolve_params("k", {"a": 2}, {"a": 1, "b": 3})
    assert params == {"a": 2, "b": 3}


def test_resolve_params_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown workload param 'typo' for 'k'"):
        resolve_params("k", {"typo": 1}, {"a": 1})


def test_resolve_params_requires_required_entries():
    with pytest.raises(ValueError, match="workload 'k' requires param 'path'"):
        resolve_params("k", {}, {"path": REQUIRED})


def test_trace_replay_requires_a_path():
    config = SimulationConfig(workload="trace-replay")
    # The engine is built (and fails fast) before any event runs.
    with pytest.raises(ValueError, match="workload 'trace-replay' requires param 'path'"):
        run_simulation(config)


# -- config flow -----------------------------------------------------------------


def test_config_default_resolves_to_stationary_zipf():
    config = SimulationConfig()
    assert config.workload == ""
    assert resolved_workload_key(config) == DEFAULT_WORKLOAD == "stationary-zipf"


def test_config_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown workload 'nope'"):
        SimulationConfig(workload="nope")


def test_config_rejects_non_dict_workload_params():
    with pytest.raises(ValueError, match="workload_params must be a dict"):
        SimulationConfig(workload_params=[1, 2])
    with pytest.raises(ValueError, match="workload_params must be a dict"):
        SimulationConfig(workload_params={1: "x"})


def test_config_round_trips_workload_fields():
    config = SimulationConfig(
        workload="ycsb", workload_params={"mix": "d", "theta": 0.7}
    )
    rebuilt = SimulationConfig.from_dict(config.as_dict())
    assert rebuilt == config
    assert rebuilt.workload_params == {"mix": "d", "theta": 0.7}


def test_unknown_param_for_engine_is_pinned():
    config = SimulationConfig(
        workload="diurnal",
        workload_params={"amplituude": 0.3},
    )
    with pytest.raises(
        ValueError, match="unknown workload param 'amplituude' for 'diurnal'"
    ):
        run_simulation(config)


# -- sweep surface ---------------------------------------------------------------


@pytest.fixture()
def recorded(monkeypatch):
    calls = []

    def fake_run_sweep(figure, parameter, values, config_for, **kwargs):
        calls.append(
            {
                "figure": figure,
                "parameter": parameter,
                "values": list(values),
                "configs": [config_for(v) for v in values],
            }
        )
        return calls[-1]

    monkeypatch.setattr(sweeps, "run_sweep", fake_run_sweep)
    return calls


def test_sweep_workload_covers_every_generative_engine(recorded, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "bench")
    sweeps.sweep_workload()
    call = recorded[-1]
    assert call["figure"] == "FigWorkload"
    assert call["parameter"] == "workload"
    assert call["values"] == list(sweeps.GENERATIVE_WORKLOADS)
    assert "trace-replay" not in call["values"]  # needs an input file
    assert [c.workload for c in call["configs"]] == call["values"]


def test_sweep_workload_rejects_unknown_keys(recorded):
    with pytest.raises(ValueError, match="unknown workloads \\['nope'\\]"):
        sweeps.sweep_workload(values=["nope"])


# -- CLI surface -----------------------------------------------------------------


def test_cli_workloads_list(capsys):
    assert main(["workloads", "list"]) == 0
    out = capsys.readouterr().out
    for key in BUILTINS:
        assert key in out


def test_cli_run_accepts_workload_flags(capsys):
    code = main(
        [
            "run",
            "--clients", "6", "--data", "120", "--access-range", "30",
            "--cache-size", "6", "--group-size", "3", "--requests", "2",
            "--seed", "3", "--no-ndp",
            "--workload", "ycsb", "--workload-param", "mix=c",
        ]
    )
    assert code == 0
    assert "scheme" in capsys.readouterr().out


# -- sampler columns -------------------------------------------------------------


def test_sampler_reports_workload_window_columns():
    assert SAMPLE_COLUMNS[-2:] == ("win_request_rate", "win_hot_entropy")
    config = SimulationConfig(
        n_clients=6,
        n_data=120,
        access_range=30,
        cache_size=6,
        group_size=3,
        measure_requests=5,
        warmup_min_time=20.0,
        warmup_max_time=40.0,
        max_sim_time=400.0,
        ndp_enabled=False,
        seed=7,
    )
    observer = Observer(sample_period=10.0)
    run_simulation(config, observer=observer)
    rates = observer.sampler.series("win_request_rate")
    entropies = observer.sampler.series("win_hot_entropy")
    assert len(rates) == len(entropies) > 0
    # ~6 clients at 1 req/s: busy windows sit near 6 req/s and draw a
    # spread of items, so entropy is clearly positive there.
    assert max(rates) > 1.0
    assert max(entropies) > 1.0
    assert all(rate >= 0.0 for rate in rates)
    assert all(entropy >= 0.0 for entropy in entropies)


def test_pattern_stream_adapter_draws_legacy_pair():
    import numpy as np

    from repro.data.workload import AccessPattern

    rng_items = np.random.default_rng(1)
    rng_delays = np.random.default_rng(2)
    pattern = AccessPattern(rng_items, 100, 20, 0.8, start=5)
    stream = PatternStream(pattern, rng_delays, 2.0)
    delay = stream.next_delay(0.0)
    item = stream.next_item(0.0)
    assert delay > 0.0
    assert pattern.covers(item)
