"""Tests for adaptive timeout, admission control, cooperative replacement
and the signature agent."""

import numpy as np
import pytest

from repro.cache import CacheEntry, LRUCache
from repro.core.admission import AdmissionControl
from repro.core.coca import AdaptiveTimeout, initial_timeout
from repro.core.replacement import CooperativeReplacement
from repro.core.signatures_proto import SignatureAgent
from repro.signatures import PeerSignature, SignatureScheme


def scheme(size=2048, k=2, seed=0):
    return SignatureScheme(np.random.default_rng(seed), size, k)


# -- adaptive timeout --------------------------------------------------------------


def test_initial_timeout_formula():
    # HopDist * (|req| + |rep|) * 8 / BW * phi
    value = initial_timeout(2, 64, 48, 2_000_000.0, 2.0)
    assert value == pytest.approx(2 * (64 + 48) * 8 / 2_000_000.0 * 2.0)


def test_initial_timeout_validation():
    with pytest.raises(ValueError):
        initial_timeout(0, 64, 48, 1000.0, 2.0)
    with pytest.raises(ValueError):
        initial_timeout(1, 64, 48, 0.0, 2.0)


def test_adaptive_timeout_before_samples_uses_initial():
    timeout = AdaptiveTimeout(0.5, deviation_phi=3.0)
    assert timeout.current() == 0.5


def test_adaptive_timeout_tracks_mean_plus_phi_stddev():
    timeout = AdaptiveTimeout(0.01, deviation_phi=3.0)
    for sample in (0.1, 0.2, 0.3):
        timeout.observe(sample)
    expected = 0.2 + 3.0 * np.std([0.1, 0.2, 0.3])
    assert timeout.current() == pytest.approx(expected)
    assert timeout.sample_count == 3


def test_adaptive_timeout_floored_at_initial():
    """One deterministic sample must not pin τ below a feasible round trip
    (the one-sample deadlock: σ = 0 -> τ = RTT₁ -> every slower reply
    times out -> no further samples ever)."""
    timeout = AdaptiveTimeout(0.5, deviation_phi=3.0)
    timeout.observe(0.1)
    assert timeout.current() == 0.5  # floor wins over 0.1 + 3·0


def test_adaptive_timeout_validation():
    with pytest.raises(ValueError):
        AdaptiveTimeout(0.0, 3.0)
    with pytest.raises(ValueError):
        AdaptiveTimeout(1.0, -1.0)
    timeout = AdaptiveTimeout(1.0, 3.0)
    with pytest.raises(ValueError):
        timeout.observe(-0.1)


# -- admission control ---------------------------------------------------------------


def test_admission_cache_not_full_always_caches():
    control = AdmissionControl()
    assert control.should_cache(cache_full=False, from_tcg_member=True)
    assert control.should_cache(cache_full=False, from_tcg_member=False)


def test_admission_full_cache_rejects_tcg_supply():
    control = AdmissionControl()
    assert not control.should_cache(cache_full=True, from_tcg_member=True)
    assert control.should_cache(cache_full=True, from_tcg_member=False)
    assert control.rejected == 1
    assert control.admitted == 1


def test_admission_disabled_always_caches():
    control = AdmissionControl(enabled=False)
    assert control.should_cache(cache_full=True, from_tcg_member=True)


# -- cooperative replacement ------------------------------------------------------------


def build_replacement(capacity=5, candidates=3, delay=2, enabled=True, seed=0):
    s = scheme(seed=seed)
    cache = LRUCache(capacity)
    peer = PeerSignature(s)
    policy = CooperativeReplacement(s, cache, peer, candidates, delay, enabled)
    return s, cache, peer, policy


def fill(cache, items, policy):
    for now, item in enumerate(items):
        cache.insert(
            CacheEntry(item=item, singlet_ttl=policy.new_entry_ttl()), now=float(now)
        )


def test_empty_cache_has_no_victim():
    _, _, _, policy = build_replacement()
    assert policy.select_victim() is None


def test_replicated_candidate_evicted_first():
    s, cache, peer, policy = build_replacement()
    fill(cache, [1, 2, 3, 4, 5], policy)
    member = s.make_filter()
    member.add(2)  # item 2 is replicated in the TCG
    peer.merge_signature(member)
    victim = policy.select_victim()
    assert victim.item == 2
    assert policy.replica_evictions == 1


def test_plain_lru_when_nothing_replicated():
    _, cache, _, policy = build_replacement()
    fill(cache, [1, 2, 3, 4, 5], policy)
    victim = policy.select_victim()
    assert victim.item == 1
    assert policy.lru_evictions == 1


def test_replica_search_limited_to_candidate_window():
    s, cache, peer, policy = build_replacement(capacity=5, candidates=2)
    fill(cache, [1, 2, 3, 4, 5], policy)
    member = s.make_filter()
    member.add(4)  # replicated, but outside the 2-entry candidate window
    peer.merge_signature(member)
    victim = policy.select_victim()
    assert victim.item == 1  # falls back to LRU


def test_singlet_ttl_drops_spared_least_valuable():
    s, cache, peer, policy = build_replacement(delay=2)
    fill(cache, [1, 2, 3, 4, 5], policy)
    member = s.make_filter()
    member.add(2)
    peer.merge_signature(member)
    # First selection: 2 is evicted, 1 (singlet) is spared, its TTL 2 -> 1.
    assert policy.select_victim().item == 2
    assert cache.get(1).singlet_ttl == 1
    # Second selection: 2 is still "cached" in our test cache; evict it for
    # real to let 3 be the replicated candidate.
    cache.evict(2)
    member2 = s.make_filter()
    member2.add(3)
    peer.merge_signature(member2)
    # 1 spared again -> TTL 0 -> dropped instead.
    victim = policy.select_victim()
    assert victim.item == 1
    assert policy.singlet_drops == 1


def test_note_access_resets_singlet_ttl():
    _, cache, _, policy = build_replacement(delay=3)
    fill(cache, [1, 2], policy)
    entry = cache.get(1)
    entry.singlet_ttl = 1
    policy.note_access(entry)
    assert entry.singlet_ttl == 3


def test_least_valuable_replica_is_evicted_without_penalty():
    s, cache, peer, policy = build_replacement()
    fill(cache, [1, 2, 3], policy)
    member = s.make_filter()
    member.add(1)
    peer.merge_signature(member)
    assert policy.select_victim().item == 1
    assert cache.get(2).singlet_ttl == policy.new_entry_ttl()  # untouched


def test_disabled_policy_is_plain_lru():
    s, cache, peer, policy = build_replacement(enabled=False)
    fill(cache, [1, 2, 3], policy)
    member = s.make_filter()
    member.add(2)
    peer.merge_signature(member)
    assert policy.select_victim().item == 1


def test_replacement_validation():
    s = scheme()
    cache = LRUCache(2)
    peer = PeerSignature(s)
    with pytest.raises(ValueError):
        CooperativeReplacement(s, cache, peer, 0, 2)
    with pytest.raises(ValueError):
        CooperativeReplacement(s, cache, peer, 2, 0)


# -- signature agent -----------------------------------------------------------------------


def test_take_update_reports_bit_flips_once():
    agent = SignatureAgent(scheme(), counter_bits=4)
    agent.record_insert(1)
    insertions, evictions = agent.take_update()
    assert set(insertions) == set(agent.scheme.positions(1))
    assert evictions == []
    assert agent.take_update() == ([], [])  # nothing new


def test_take_update_annihilates_insert_then_evict():
    agent = SignatureAgent(scheme(), counter_bits=4)
    agent.record_insert(1)
    agent.record_evict(1, cache_items=[])
    assert agent.take_update() == ([], [])


def test_take_update_eviction_positions():
    agent = SignatureAgent(scheme(), counter_bits=4)
    agent.record_insert(1)
    agent.take_update()
    agent.record_evict(1, cache_items=[])
    insertions, evictions = agent.take_update()
    assert insertions == []
    assert set(evictions) == set(agent.scheme.positions(1))


def test_shared_bit_not_reported_on_partial_evict():
    s = scheme()
    agent = SignatureAgent(s, counter_bits=4)
    agent.record_insert(1)
    agent.record_insert(2)
    agent.take_update()
    agent.record_evict(1, cache_items=[2])
    _, evictions = agent.take_update()
    shared = set(s.positions(1)) & set(s.positions(2))
    assert not shared & set(evictions)  # bits still held by item 2 stay set


def test_has_update():
    agent = SignatureAgent(scheme(), counter_bits=4)
    assert not agent.has_update()
    agent.record_insert(5)
    assert agent.has_update()
    agent.take_update()
    assert not agent.has_update()


def test_full_signature_payload_compresses_sparse_cache():
    agent = SignatureAgent(scheme(size=10_000, seed=3), counter_bits=4)
    for item in range(50):
        agent.record_insert(item)
    bits, size_bytes, compressed = agent.full_signature_payload(cached_items=50)
    assert compressed
    assert size_bytes < 10_000 // 8
    assert np.array_equal(bits, agent.own.signature().bits)  # lossless


def test_full_signature_payload_raw_when_compression_disabled():
    agent = SignatureAgent(
        scheme(size=10_000, seed=3), counter_bits=4, compression_enabled=False
    )
    agent.record_insert(1)
    _, size_bytes, compressed = agent.full_signature_payload(cached_items=1)
    assert not compressed
    assert size_bytes == 1250


def test_membership_add_requests_signature():
    agent = SignatureAgent(scheme(), counter_bits=4)
    actions = agent.apply_membership_changes({3, 4}, set())
    assert actions.request_from == {3, 4}
    assert not actions.recollect
    assert agent.members == {3, 4}
    assert agent.outstanding == {3, 4}


def test_membership_departure_triggers_recollection():
    agent = SignatureAgent(scheme(), counter_bits=4)
    agent.apply_membership_changes({3, 4, 5}, set())
    agent.outstanding.clear()  # pretend signatures were collected
    agent.peer.apply_update(list(agent.scheme.positions(9)), [])
    actions = agent.apply_membership_changes(set(), {5})
    assert actions.recollect
    assert agent.peer.counter_bits == 0  # vector was reset
    assert agent.outstanding == {3, 4}


def test_membership_recollect_batch_defers_reset():
    agent = SignatureAgent(scheme(), counter_bits=4, recollect_batch=2)
    agent.apply_membership_changes({1, 2, 3}, set())
    first = agent.apply_membership_changes(set(), {1})
    assert not first.recollect  # only one departure so far
    second = agent.apply_membership_changes(set(), {2})
    assert second.recollect


def test_reconnect_sync_resets_and_recollects():
    agent = SignatureAgent(scheme(), counter_bits=4)
    agent.apply_membership_changes({1, 2}, set())
    actions = agent.reconnect_sync({2, 7})
    assert agent.members == {2, 7}
    assert agent.outstanding == {2, 7}
    assert actions.recollect


def test_reconnect_sync_empty_membership_no_recollect():
    agent = SignatureAgent(scheme(), counter_bits=4)
    actions = agent.reconnect_sync(set())
    assert not actions.recollect


def test_notice_peer_alive_only_for_outstanding():
    agent = SignatureAgent(scheme(), counter_bits=4)
    agent.apply_membership_changes({1}, set())
    assert agent.notice_peer_alive(1)
    agent.merge_member_signature(1, np.zeros(agent.scheme.size_bits, dtype=bool))
    assert not agent.notice_peer_alive(1)


def test_likely_cached_by_members_filter():
    s = scheme()
    agent = SignatureAgent(s, counter_bits=4)
    member_signature = s.make_filter()
    member_signature.add(42)
    agent.merge_member_signature(1, member_signature.bits)
    assert agent.likely_cached_by_members(42)
    misses = sum(not agent.likely_cached_by_members(i) for i in range(500, 600))
    assert misses >= 95


def test_agent_validation():
    with pytest.raises(ValueError):
        SignatureAgent(scheme(), counter_bits=4, recollect_batch=0)
