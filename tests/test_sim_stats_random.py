"""Unit + property tests for statistics accumulators and random streams."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RandomStreams, TimeWeightedAverage, WelfordAccumulator

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def test_welford_empty():
    acc = WelfordAccumulator()
    assert acc.count == 0
    assert acc.mean == 0.0
    assert acc.variance == 0.0
    assert acc.stddev == 0.0


def test_welford_single_value():
    acc = WelfordAccumulator()
    acc.add(5.0)
    assert acc.mean == 5.0
    assert acc.variance == 0.0
    assert acc.min == acc.max == 5.0


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_welford_matches_numpy(values):
    acc = WelfordAccumulator()
    for value in values:
        acc.add(value)
    assert acc.count == len(values)
    assert acc.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
    if len(values) >= 2:
        scale = max(1.0, float(np.max(np.abs(values))) ** 2)
        assert acc.variance == pytest.approx(
            np.var(values), rel=1e-6, abs=1e-6 * scale
        )
    assert acc.min == min(values)
    assert acc.max == max(values)


@given(
    st.lists(finite_floats, min_size=0, max_size=50),
    st.lists(finite_floats, min_size=0, max_size=50),
)
def test_welford_merge_equals_sequential(left, right):
    merged = WelfordAccumulator()
    for value in left:
        merged.add(value)
    other = WelfordAccumulator()
    for value in right:
        other.add(value)
    merged.merge(other)

    expected = WelfordAccumulator()
    for value in left + right:
        expected.add(value)

    assert merged.count == expected.count
    if expected.count:
        scale = max(1.0, abs(expected.mean))
        assert merged.mean == pytest.approx(expected.mean, rel=1e-9, abs=1e-9 * scale)
        assert merged.variance == pytest.approx(
            expected.variance, rel=1e-6, abs=1e-6 * max(1.0, expected.variance)
        )


def test_welford_total():
    acc = WelfordAccumulator()
    for value in (1, 2, 3):
        acc.add(value)
    assert acc.total == pytest.approx(6.0)


def test_time_weighted_average_constant_signal():
    twa = TimeWeightedAverage(start_time=0.0, initial_value=3.0)
    assert twa.average(10.0) == pytest.approx(3.0)


def test_time_weighted_average_step_signal():
    twa = TimeWeightedAverage()
    twa.update(2.0, 10.0)  # 0 over [0,2], 10 from t=2
    assert twa.average(4.0) == pytest.approx((0 * 2 + 10 * 2) / 4)


def test_time_weighted_average_rejects_time_reversal():
    twa = TimeWeightedAverage()
    twa.update(5.0, 1.0)
    with pytest.raises(ValueError):
        twa.update(4.0, 2.0)


def test_time_weighted_average_zero_span():
    twa = TimeWeightedAverage(start_time=1.0, initial_value=7.0)
    assert twa.average(1.0) == 7.0


def test_random_streams_reproducible_across_instances():
    a = RandomStreams(42).stream("mobility").random(8)
    b = RandomStreams(42).stream("mobility").random(8)
    assert np.array_equal(a, b)


def test_random_streams_independent_of_creation_order():
    streams_1 = RandomStreams(7)
    streams_1.stream("x")
    first = streams_1.stream("y").random(4)

    streams_2 = RandomStreams(7)
    second = streams_2.stream("y").random(4)  # "y" created first this time
    assert np.array_equal(first, second)


def test_random_streams_distinct_names_differ():
    streams = RandomStreams(3)
    a = streams.stream("alpha").random(16)
    b = streams.stream("beta").random(16)
    assert not np.array_equal(a, b)


def test_random_streams_distinct_seeds_differ():
    a = RandomStreams(1).stream("s").random(16)
    b = RandomStreams(2).stream("s").random(16)
    assert not np.array_equal(a, b)


def test_random_streams_same_object_returned():
    streams = RandomStreams(5)
    assert streams.stream("s") is streams.stream("s")
    assert "s" in streams
    assert "t" not in streams


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_time_weighted_average_bounded_by_signal_range(values):
    twa = TimeWeightedAverage(initial_value=values[0])
    now = 0.0
    for i, value in enumerate(values[1:], start=1):
        now = float(i)
        twa.update(now, value)
    average = twa.average(now + 1.0)
    assert min(values) - 1e-9 <= average <= max(values) + 1e-9
    assert not math.isnan(average)
