"""Differential registry test: legacy mapping vs explicit policy keys.

For every golden case the empty ``*_policy`` config fields resolve
through :func:`legacy_policy_keys`.  Spelling those same keys out
explicitly must route every decision through the registry builders and
still replay bit-identically — proving the registry indirection adds no
behavioural surface.  A deliberately different key must diverge, so the
comparison is known to have teeth.
"""

import pytest

from repro.check.golden import GOLDEN_CASES, results_to_dict
from repro.core.config import CachingScheme
from repro.core.simulation import run_simulation
from repro.policies.factory import (
    custom_policies,
    legacy_policy_keys,
    resolved_policy_keys,
)

CASES = sorted(GOLDEN_CASES)


def explicit_config(config):
    """The same config with its legacy policy mapping spelled out."""
    keys = legacy_policy_keys(config)
    return config.replace(
        admission_policy=keys["admission"],
        replacement_policy=keys["replacement"],
        discovery_policy=keys["discovery"],
    )


@pytest.mark.parametrize("name", CASES)
def test_explicit_keys_replay_legacy_run_bit_identically(name):
    legacy = GOLDEN_CASES[name]
    explicit = explicit_config(legacy)
    # the rewrite really changed the config and really pinned the keys
    assert explicit != legacy
    assert explicit.admission_policy != ""
    assert resolved_policy_keys(explicit) == legacy_policy_keys(legacy)
    # explicit-but-equal keys still count as the legacy wiring
    assert not custom_policies(explicit)

    baseline = results_to_dict(run_simulation(legacy))
    registry_run = results_to_dict(run_simulation(explicit))
    drift = {
        field: (baseline[field], registry_run.get(field))
        for field in baseline
        if baseline[field] != registry_run.get(field)
    }
    assert not drift, f"{name}: explicit keys diverged on {drift}"


def test_differential_harness_detects_a_real_policy_change():
    """A genuinely different replacement key must not replay the golden."""
    legacy = GOLDEN_CASES["gc-small"]
    swapped = legacy.replace(replacement_policy="lru-min")
    assert custom_policies(swapped)
    baseline = results_to_dict(run_simulation(legacy))
    changed = results_to_dict(run_simulation(swapped))
    assert baseline != changed


@pytest.mark.parametrize("name", CASES)
def test_legacy_mapping_matches_scheme_semantics(name):
    config = GOLDEN_CASES[name]
    keys = legacy_policy_keys(config)
    assert keys["scheme"] == config.scheme.value.lower()
    if config.scheme is CachingScheme.GC:
        assert keys["admission"] == "grococa"
        assert keys["replacement"] == "grococa"
        assert keys["discovery"] == "tcg"
    else:
        assert keys["admission"] == "always"
        assert keys["replacement"] == "lru"
        assert keys["discovery"] == "none"
    assert keys["peer-scoring"] == config.peer_policy
