"""Error-path contracts: tracing-disabled metrics and SweepTable lookups.

These messages are user-facing API (docs and notebooks point at them), so
they are asserted verbatim.
"""

import pytest

from repro.core.metrics import Metrics, Results, TracingDisabledError
from repro.experiments.runner import SweepTable


def _expected_message(query):
    return (
        f"{query} needs per-request traces, but this Metrics was built "
        "with trace=False; construct it with Metrics(scheme, trace=True) "
        "or run with SimulationConfig(trace_requests=True)"
    )


def test_latency_percentiles_requires_tracing():
    metrics = Metrics("GC", trace=False)
    with pytest.raises(TracingDisabledError) as excinfo:
        metrics.latency_percentiles()
    assert str(excinfo.value) == _expected_message("latency_percentiles")
    assert excinfo.value.query == "latency_percentiles"


def test_client_timeline_requires_tracing():
    metrics = Metrics("GC", trace=False)
    with pytest.raises(TracingDisabledError) as excinfo:
        metrics.client_timeline(0)
    assert str(excinfo.value) == _expected_message("client_timeline")
    assert excinfo.value.query == "client_timeline"


def test_tracing_disabled_error_is_a_runtime_error():
    # Callers that caught the old RuntimeError contract keep working.
    assert issubclass(TracingDisabledError, RuntimeError)


def _table():
    results = Results(
        scheme="GC",
        requests=10,
        local_hits=5,
        global_hits=3,
        global_hits_tcg=1,
        server_requests=2,
        failures=0,
        access_latency=0.01,
        latency_stddev=0.0,
        power_data=1.0,
        power_signature=0.0,
        power_beacon=0.0,
        power_per_gch=1.0,
        validations=0,
        validation_refreshes=0,
        bypassed_searches=0,
        peer_searches=0,
        measured_time=10.0,
        sim_time=100.0,
    )
    return SweepTable(
        figure="fig2",
        parameter="cache_size",
        values=[100, 200],
        rows={"GC": [results, results]},
    )


def test_sweep_table_unknown_scheme_message():
    with pytest.raises(KeyError) as excinfo:
        _table().series("CC", "gch_ratio")
    assert excinfo.value.args[0] == (
        "scheme 'CC' was not swept in fig2; available schemes: ['GC']"
    )


def test_sweep_table_unknown_scheme_in_result_lookup():
    with pytest.raises(KeyError) as excinfo:
        _table().result("LC", 100)
    assert excinfo.value.args[0] == (
        "scheme 'LC' was not swept in fig2; available schemes: ['GC']"
    )


def test_sweep_table_unswept_value_message():
    with pytest.raises(ValueError) as excinfo:
        _table().result("GC", 150)
    assert str(excinfo.value) == (
        "cache_size=150 was not swept in fig2; swept values: [100, 200]"
    )
