"""The signature-piggyback power split on broadcast transmissions."""

import pytest

from repro.mobility import MobilityField, StationaryTrajectory
from repro.net import Message, MessageKind, P2PNetwork, PowerLedger, PowerModel
from repro.sim import Environment


def make_net(points, tran_range=50.0):
    env = Environment()
    field = MobilityField([StationaryTrajectory(p) for p in points])
    ledger = PowerLedger(len(points))
    net = P2PNetwork(env, field, 2_000_000.0, tran_range, ledger, PowerModel())
    return env, net, ledger


def run_broadcast(net, env, size, signature_bytes):
    message = Message(MessageKind.REQUEST, 0, None, size)

    def proc():
        yield from net.broadcast(0, message, signature_bytes=signature_bytes)

    env.process(proc())
    env.run()


def test_split_conserves_total_power():
    points = [(0.0, 0.0), (30.0, 0.0), (40.0, 0.0)]
    size, sig_bytes = 100, 36
    env, net, ledger = make_net(points)
    run_broadcast(net, env, size, sig_bytes)

    env2, net2, ledger2 = make_net(points)
    run_broadcast(net2, env2, size, 0)

    # Attribution moves between purposes but the total must be identical.
    assert ledger.total() == pytest.approx(ledger2.total())
    assert ledger2.total("signature") == 0.0
    assert ledger.total("signature") > 0.0


def test_split_matches_variable_coefficients():
    points = [(0.0, 0.0), (30.0, 0.0)]
    size, sig_bytes = 100, 20
    env, net, ledger = make_net(points)
    run_broadcast(net, env, size, sig_bytes)
    params = net.model.parameters
    # Sender pays v_bsend per piggybacked byte; the one receiver v_brecv.
    expected = params.bc_send_v * sig_bytes + params.bc_recv_v * sig_bytes
    assert ledger.total("signature") == pytest.approx(expected)


def test_zero_signature_bytes_charges_data_only():
    points = [(0.0, 0.0), (30.0, 0.0)]
    env, net, ledger = make_net(points)
    run_broadcast(net, env, 64, 0)
    assert ledger.total("signature") == 0.0
    assert ledger.total("data") > 0.0


def test_split_per_receiver_scales_with_audience():
    # Three receivers each pay the recv share of the piggyback.
    points = [(0.0, 0.0), (30.0, 0.0), (0.0, 30.0), (-30.0, 0.0)]
    size, sig_bytes = 80, 10
    env, net, ledger = make_net(points)
    run_broadcast(net, env, size, sig_bytes)
    params = net.model.parameters
    expected = params.bc_send_v * sig_bytes + 3 * params.bc_recv_v * sig_bytes
    assert ledger.total("signature") == pytest.approx(expected)
