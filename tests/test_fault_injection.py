"""Integration tests: fault injection through the full simulation stack.

The contract under test:

* the all-zero plan is a strict no-op — results are *equal* to a run with
  no plan at all (same kernel schedule, same RNG draws);
* injected loss degrades the cooperative schemes smoothly: global hits
  shrink, the MSS fallback keeps requests completing, retries are counted;
* total loss fails requests instead of stranding the run;
* crash-stop outages and recoveries flow through NDP and GroCoCa's
  membership machinery without wedging anything;
* identical seeds with identical fault plans stay bit-identical under
  serial and parallel sweep execution.
"""

import math

import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import Simulation, run_simulation
from repro.experiments.cache import config_key
from repro.experiments.parallel import RunSpec, execute_runs
from repro.net.faults import CrashFaults, FaultPlan, LinkFaults
from tests.test_experiments_parallel import assert_results_identical

LOSSY = FaultPlan(
    p2p=LinkFaults(loss=0.3, burst_loss=0.5, burst_on=0.05),
    uplink=LinkFaults(loss=0.1),
    downlink=LinkFaults(loss=0.1),
)


def tiny_config(**overrides) -> SimulationConfig:
    settings = dict(
        scheme=CachingScheme.CC,
        n_clients=6,
        n_data=150,
        access_range=30,
        cache_size=6,
        measure_requests=5,
        warmup_min_time=0.0,
        warmup_max_time=40.0,
        max_sim_time=2000.0,
        ndp_enabled=False,
        seed=17,
    )
    settings.update(overrides)
    return SimulationConfig(**settings)


# -- the no-op guarantee ------------------------------------------------------


@pytest.mark.parametrize("scheme", [CachingScheme.CC, CachingScheme.GC])
def test_all_zero_plan_is_bit_identical(scheme):
    plain = run_simulation(tiny_config(scheme=scheme))
    planned = run_simulation(tiny_config(scheme=scheme, faults=FaultPlan()))
    assert plain == planned
    assert_results_identical(plain, planned)
    # No injector was built, so no fault counters surface.
    assert "fault_p2p_drops" not in planned.profile.counters


def test_uplink_retry_budget_alone_is_bit_identical():
    # The MSS channels never lose a message without a fault plan, so the
    # uplink retry budget changes nothing on its own.  (Search/retrieve
    # budgets are different: re-floods also answer *natural* timeouts.)
    plain = run_simulation(tiny_config())
    budgeted = run_simulation(tiny_config(uplink_retry_limit=5))
    assert plain == budgeted
    assert budgeted.uplink_retries == 0


# -- graceful degradation -----------------------------------------------------


def test_p2p_loss_degrades_global_hits_not_completion():
    clean = run_simulation(tiny_config())
    lossy = run_simulation(
        tiny_config(
            faults=FaultPlan(p2p=LinkFaults(loss=0.6)),
            search_retry_limit=1,
            retrieve_retry_limit=1,
        )
    )
    assert lossy.requests > 0 and clean.requests > 0
    assert lossy.gch_ratio < clean.gch_ratio
    assert lossy.profile.counters["fault_p2p_drops"] > 0
    # Lost searches were retried, and exhausted ones fell back to the MSS.
    assert lossy.search_retries > 0
    assert lossy.mss_fallbacks > 0
    assert math.isfinite(lossy.access_latency)


def test_uplink_loss_is_absorbed_by_retries():
    result = run_simulation(
        tiny_config(
            scheme=CachingScheme.LC,
            faults=FaultPlan(
                uplink=LinkFaults(loss=0.3), downlink=LinkFaults(loss=0.1)
            ),
            uplink_retry_limit=4,
        )
    )
    assert result.requests > 0
    assert result.server_requests > 0
    assert result.uplink_retries > 0
    assert result.profile.counters["fault_uplink_drops"] > 0


def test_total_p2p_loss_serves_everything_from_the_mss():
    result = run_simulation(
        tiny_config(
            faults=FaultPlan(p2p=LinkFaults(loss=1.0)),
            search_retry_limit=1,
        )
    )
    assert result.requests > 0
    assert result.global_hits == 0
    assert result.server_requests > 0
    assert result.mss_fallbacks > 0
    assert math.isfinite(result.access_latency)


def test_total_uplink_loss_fails_requests_without_stranding():
    result = run_simulation(
        tiny_config(
            scheme=CachingScheme.LC,
            faults=FaultPlan(uplink=LinkFaults(loss=1.0)),
            uplink_retry_limit=1,
            warmup_max_time=10.0,
            measure_requests=3,
            max_sim_time=500.0,
        )
    )
    # Every access exhausts its retries and fails — but the request loop
    # keeps turning and the run terminates on its own.
    assert result.requests > 0
    assert result.failures == result.requests
    assert result.uplink_retries > 0
    assert result.sim_time < 500.0


# -- crash-stop outages -------------------------------------------------------


def test_crash_outages_and_recovery():
    simulation = Simulation(
        tiny_config(
            scheme=CachingScheme.GC,
            ndp_enabled=True,
            faults=FaultPlan(
                crash=CrashFaults(rate=0.01, down_min=2.0, down_max=5.0)
            ),
            measure_requests=4,
        )
    )
    results = simulation.run()
    crashes = sum(client.crashes for client in simulation.clients)
    assert crashes > 0
    assert simulation.faults.crashes == crashes
    assert results.requests > 0
    # Crashed hosts never ran the graceful disconnection protocol.
    assert all(client.disconnections == 0 for client in simulation.clients)


def test_crash_daemon_skips_already_offline_victims():
    simulation = Simulation(
        tiny_config(
            faults=FaultPlan(
                crash=CrashFaults(rate=0.5, down_min=50.0, down_max=60.0)
            ),
            warmup_max_time=5.0,
            max_sim_time=30.0,
        )
    )
    simulation.run()
    # With ~3 crashes/s and minute-long outages, every host is down long
    # before the run ends; the daemon must keep skipping without wedging.
    started = simulation.faults.crashes
    assert 0 < started <= simulation.config.n_clients


# -- reproducibility ----------------------------------------------------------


def test_faulty_runs_identical_serial_and_parallel():
    specs = [
        RunSpec(config=tiny_config(faults=LOSSY, search_retry_limit=1), label="cc"),
        RunSpec(
            config=tiny_config(
                scheme=CachingScheme.GC,
                faults=FaultPlan(
                    p2p=LinkFaults(loss=0.2),
                    crash=CrashFaults(rate=0.005),
                ),
                ndp_enabled=True,
            ),
            label="gc-crash",
        ),
    ]
    serial = execute_runs(specs, jobs=1)
    parallel = execute_runs(specs, jobs=2)
    for a, b in zip(serial, parallel):
        assert_results_identical(a, b)


def test_fault_run_is_repeatable_in_process():
    config = tiny_config(faults=LOSSY, search_retry_limit=1)
    assert run_simulation(config) == run_simulation(config)


def test_fault_plan_is_part_of_the_cache_key():
    base = tiny_config()
    assert config_key(base) == config_key(tiny_config())
    assert config_key(base) != config_key(tiny_config(faults=LOSSY))
    assert config_key(tiny_config(faults=LOSSY)) == config_key(
        tiny_config(faults=LOSSY)
    )
