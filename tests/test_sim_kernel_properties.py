"""Property-based tests of the DES kernel's scheduling invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, Resource, Store


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=40))
@settings(max_examples=60)
def test_clock_monotone_and_events_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append((env.now, delay))

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert [t for t, _ in fired] == [d for _, d in fired]
    assert env.now == (max(delays) if delays else 0.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),  # arrival
            st.floats(min_value=0.01, max_value=5.0),  # hold time
        ),
        min_size=1,
        max_size=15,
    ),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40)
def test_resource_never_exceeds_capacity_and_serves_everyone(jobs, capacity):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]
    served = []

    def job(tag, arrival, hold):
        yield env.timeout(arrival)
        grant = resource.request()
        yield grant
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield env.timeout(hold)
        active[0] -= 1
        resource.release(grant)
        served.append(tag)

    for tag, (arrival, hold) in enumerate(jobs):
        env.process(job(tag, arrival, hold))
    env.run()
    assert peak[0] <= capacity
    assert sorted(served) == list(range(len(jobs)))
    assert resource.count == 0
    assert resource.queue_length == 0


@given(
    st.lists(st.integers(min_value=0, max_value=99), max_size=30),
    st.integers(min_value=0, max_value=30),
)
@settings(max_examples=60)
def test_store_is_fifo_under_any_interleaving(items, getter_count):
    env = Environment()
    store = Store(env)
    received = []

    def getter():
        value = yield store.get()
        received.append(value)

    def putter():
        for index, item in enumerate(items):
            yield env.timeout(index % 3)
            store.put(item)

    for _ in range(getter_count):
        env.process(getter())
    env.process(putter())
    env.run(until=1000.0)
    delivered = min(len(items), getter_count)
    assert received == list(items[:delivered])


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0),
        min_size=1,
        max_size=10,
        unique=True,
    )
)
@settings(max_examples=60)
def test_any_of_fires_at_the_earliest_timeout_with_the_right_winner(delays):
    """The COCA reply-or-timeout race: AnyOf resolves at min(delays)."""
    env = Environment()
    outcome = {}

    def racer():
        timeouts = [env.timeout(delay, value=delay) for delay in delays]
        fired = yield AnyOf(env, timeouts)
        outcome["at"] = env.now
        outcome["values"] = sorted(fired.values())

    env.process(racer())
    env.run()
    assert outcome["at"] == min(delays)
    assert outcome["values"] == [min(delays)]


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0),
        min_size=1,
        max_size=10,
        unique=True,
    )
)
@settings(max_examples=60)
def test_all_of_fires_at_the_latest_timeout_with_every_value(delays):
    env = Environment()
    outcome = {}

    def gatherer():
        timeouts = [env.timeout(delay, value=delay) for delay in delays]
        fired = yield AllOf(env, timeouts)
        outcome["at"] = env.now
        outcome["values"] = sorted(fired.values())

    env.process(gatherer())
    env.run()
    assert outcome["at"] == max(delays)
    assert outcome["values"] == sorted(delays)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=20.0),  # AnyOf arm A
            st.floats(min_value=0.0, max_value=20.0),  # AnyOf arm B
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60)
def test_interleaved_any_of_races_each_resolve_at_their_own_minimum(pairs):
    """Many concurrent two-way races never cross-wake each other."""
    env = Environment()
    resolved = {}

    def racer(tag, a, b):
        yield AnyOf(env, [env.timeout(a), env.timeout(b)])
        resolved[tag] = env.now

    for tag, (a, b) in enumerate(pairs):
        env.process(racer(tag, a, b))
    env.run()
    assert resolved == {tag: min(a, b) for tag, (a, b) in enumerate(pairs)}


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=30.0),
        min_size=2,
        max_size=12,
        unique=True,
    ),
    st.integers(min_value=1, max_value=3),
    st.floats(min_value=0.5, max_value=5.0),
)
@settings(max_examples=60)
def test_resource_grants_are_fcfs_with_no_starvation(arrivals, capacity, hold):
    """Grant order equals request order; every job is eventually served."""
    env = Environment()
    resource = Resource(env, capacity=capacity)
    granted = []

    def job(tag, arrival):
        yield env.timeout(arrival)
        grant = resource.request()
        yield grant
        granted.append(tag)
        yield env.timeout(hold)
        resource.release(grant)

    for tag, arrival in enumerate(arrivals):
        env.process(job(tag, arrival))
    env.run()
    # Unique arrivals fix the request order; FCFS must preserve it.
    expected = [tag for tag, _ in sorted(enumerate(arrivals), key=lambda x: x[1])]
    assert granted == expected


@given(st.integers(min_value=2, max_value=20), st.integers(min_value=1, max_value=3))
@settings(max_examples=30)
def test_resource_queue_drains_in_fifo_order_under_contention(jobs, capacity):
    """Simultaneous arrivals queue and are granted in submission order."""
    env = Environment()
    resource = Resource(env, capacity=capacity)
    granted = []

    def job(tag):
        grant = resource.request()
        yield grant
        granted.append(tag)
        yield env.timeout(1.0)
        resource.release(grant)

    def spawner():
        # Issue every request at the same instant, in tag order.
        for tag in range(jobs):
            env.process(job(tag))
        yield env.timeout(0.0)

    env.process(spawner())
    env.run()
    assert granted == list(range(jobs))
    assert resource.count == 0
    assert resource.queue_length == 0


@given(st.integers(min_value=1, max_value=50))
@settings(max_examples=20)
def test_process_chain_depth(depth):
    """Deeply nested process waits resolve in order without blowing up."""
    env = Environment()

    def level(n):
        if n == 0:
            yield env.timeout(1.0)
            return 0
        value = yield env.process(level(n - 1))
        return value + 1

    root = env.process(level(depth))
    env.run()
    assert root.value == depth
    assert env.now == 1.0
