"""Unit tests for the new registered policy classes (PR 8).

Tests construct policies directly — the sanctioned exception to the
``policy-direct-instantiation`` simlint rule, which only lints
``src/repro``.  Each test pins the decision rule itself (probability
law, hop gate, expiry ranking, GreedyDual inflation, popularity counts)
rather than end-to-end effects, which the conformance battery and
dominance tables cover.
"""

import math

import numpy as np
import pytest

from repro.cache.lru import CacheEntry, LRUCache
from repro.policies.admission import (
    AlwaysAdmit,
    GroCoCaAdmission,
    LeaveCopyDownAdmission,
    ProbCacheAdmission,
)
from repro.policies.replacement import (
    GreedyDualReplacement,
    LRUMinReplacement,
    LRUReplacement,
    PopularityRankReplacement,
)


def filled_cache(entries):
    """An LRUCache holding ``entries`` in insertion (LRU) order."""
    cache = LRUCache(len(entries))
    for position, entry in enumerate(entries):
        cache.insert(entry, now=float(position))
    return cache


# --------------------------------------------------------------------- #
# admission


def test_always_admit_never_rejects_and_counts_full_cache_decisions():
    policy = AlwaysAdmit()
    assert not policy.enabled
    assert policy.should_cache(cache_full=False, from_tcg_member=False, hops=3)
    assert policy.should_cache(cache_full=True, from_tcg_member=True, hops=1)
    # legacy call pattern: the not-full short circuit is never counted
    assert policy.admitted == 1
    assert policy.rejected == 0


def test_grococa_admission_rejects_tcg_member_copies_when_full():
    policy = GroCoCaAdmission()
    assert policy.enabled
    assert not policy.should_cache(
        cache_full=True, from_tcg_member=True, hops=1
    )
    assert policy.should_cache(cache_full=True, from_tcg_member=False, hops=1)
    assert policy.should_cache(cache_full=False, from_tcg_member=True, hops=1)
    assert policy.admitted == 1
    assert policy.rejected == 1


def test_probcache_admission_probability_scales_with_hops():
    rng = np.random.default_rng(7)
    policy = ProbCacheAdmission(hop_limit=5, rng=rng)
    trials = 2000
    near = sum(
        policy.should_cache(cache_full=True, from_tcg_member=False, hops=1)
        for _ in range(trials)
    )
    far = sum(
        policy.should_cache(cache_full=True, from_tcg_member=False, hops=4)
        for _ in range(trials)
    )
    # law of large numbers around p=0.2 and p=0.8
    assert abs(near / trials - 0.2) < 0.05
    assert abs(far / trials - 0.8) < 0.05
    # at or beyond the hop limit the probability saturates at 1
    assert all(
        policy.should_cache(cache_full=True, from_tcg_member=False, hops=hops)
        for hops in (5, 9)
        for _ in range(50)
    )
    assert policy.admitted + policy.rejected == 2 * trials + 2 * 50


def test_probcache_is_deterministic_under_a_seeded_stream():
    decisions = []
    for _ in range(2):
        policy = ProbCacheAdmission(hop_limit=4, rng=np.random.default_rng(3))
        decisions.append(
            [
                policy.should_cache(
                    cache_full=True, from_tcg_member=False, hops=2
                )
                for _ in range(64)
            ]
        )
    assert decisions[0] == decisions[1]


def test_lcd_admission_gates_on_single_hop():
    policy = LeaveCopyDownAdmission()
    assert policy.should_cache(cache_full=True, from_tcg_member=False, hops=1)
    assert not policy.should_cache(
        cache_full=True, from_tcg_member=False, hops=2
    )
    assert policy.admitted == 1
    assert policy.rejected == 1


# --------------------------------------------------------------------- #
# replacement


def test_lru_replacement_picks_least_recently_used():
    cache = filled_cache([CacheEntry(item=i) for i in range(3)])
    cache.touch(0, now=10.0)  # item 0 becomes most recent; LRU is item 1
    policy = LRUReplacement(cache)
    assert not policy.enabled
    assert policy.select_victim(now=11.0).item == 1
    assert policy.eviction_count() == 1


def test_lru_min_prefers_the_entry_closest_to_expiry():
    entries = [
        CacheEntry(item=0, expiry=50.0),
        CacheEntry(item=1, expiry=20.0),
        CacheEntry(item=2, expiry=80.0),
        CacheEntry(item=3, expiry=5.0),  # soonest, but outside the window
    ]
    cache = filled_cache(entries)
    cache.touch(3, now=10.0)  # push item 3 to the MRU end
    policy = LRUMinReplacement(cache, candidates=3)
    # window = 3 LRU entries {0, 1, 2}; item 1 expires soonest
    assert policy.select_victim(now=11.0).item == 1


def test_lru_min_breaks_expiry_ties_toward_lru_order():
    entries = [CacheEntry(item=i, expiry=math.inf) for i in range(4)]
    cache = filled_cache(entries)
    policy = LRUMinReplacement(cache, candidates=4)
    # all-immortal caches degenerate to plain LRU (strict < keeps entry 0)
    assert policy.select_victim(now=1.0).item == 0
    with pytest.raises(ValueError):
        LRUMinReplacement(cache, candidates=0)


def test_greedy_dual_evicts_minimum_h_and_inflates():
    cache = filled_cache(
        [
            CacheEntry(item=0, expiry=100.0),
            CacheEntry(item=1, expiry=12.0),
            CacheEntry(item=2, expiry=40.0),
        ]
    )
    policy = GreedyDualReplacement(cache)
    now = 10.0
    for item in (0, 1, 2):
        policy.note_insert(cache.get(item), now)
    # H values at now=10: item0=90, item1=2, item2=30
    victim = policy.select_victim(now)
    assert victim.item == 1
    assert policy._inflation == pytest.approx(2.0)
    cache.evict(victim.item)
    # a fresh insert is seeded above the inflation floor
    fresh = CacheEntry(item=5, expiry=13.0)
    cache.insert(fresh, now)
    policy.note_insert(fresh, now)
    assert policy._h[5] == pytest.approx(2.0 + 3.0)
    # the old long-TTL entries keep their pre-inflation H, so the
    # just-inserted short-TTL item is evicted next: aging in action
    assert policy.select_victim(now).item == 5


def test_greedy_dual_caps_immortal_entries():
    cache = filled_cache([CacheEntry(item=0, expiry=math.inf)])
    policy = GreedyDualReplacement(cache)
    policy.note_insert(cache.get(0), now=0.0)
    assert policy._h[0] == pytest.approx(1e18)
    assert policy.select_victim(now=0.0).item == 0


def test_popularity_rank_evicts_least_demanded_item():
    cache = filled_cache([CacheEntry(item=i) for i in range(3)])
    policy = PopularityRankReplacement(cache)
    assert policy.observes_requests
    for _ in range(3):
        policy.note_request(0)
    policy.note_remote_request(1)
    policy.note_remote_request(1)
    # item 2 was never requested → least popular
    assert policy.select_victim(now=1.0).item == 2
    assert policy.popularity(0) == 3
    assert policy.popularity(2) == 0


def test_popularity_rank_ties_break_toward_lru_and_counts_persist():
    cache = filled_cache([CacheEntry(item=i) for i in range(3)])
    policy = PopularityRankReplacement(cache)
    for item in range(3):
        policy.note_request(item)
    # all counts equal → strict < keeps the first (LRU) entry
    victim = policy.select_victim(now=1.0)
    assert victim.item == 0
    cache.evict(victim.item)
    # reputation survives eviction: the table is keyed by item, not slot
    assert policy.popularity(0) == 1


def test_empty_cache_yields_no_victim():
    cache = LRUCache(2)
    for policy in (
        LRUReplacement(cache),
        LRUMinReplacement(cache, candidates=2),
        GreedyDualReplacement(cache),
        PopularityRankReplacement(cache),
    ):
        assert policy.select_victim(now=0.0) is None
