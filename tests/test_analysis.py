"""Tests for the post-run analysis module."""

import numpy as np
import pytest

from repro import CachingScheme, SimulationConfig
from repro.analysis import (
    DiscoveryQuality,
    cache_duplication,
    cache_overlap_matrix,
    group_distinct_items,
    jain_fairness,
    tcg_discovery_quality,
)
from repro.core.simulation import Simulation


def run_small(scheme=CachingScheme.GC, seed=31):
    sim = Simulation(
        SimulationConfig(
            scheme=scheme,
            n_clients=12,
            n_data=400,
            access_range=80,
            cache_size=20,
            group_size=4,
            measure_requests=25,
            warmup_min_time=120.0,
            warmup_max_time=180.0,
            ndp_enabled=False,
            seed=seed,
        )
    )
    sim.run()
    return sim


# -- discovery quality dataclass ----------------------------------------------


def test_discovery_quality_math():
    quality = DiscoveryQuality(true_pairs=10, discovered_pairs=8, correct_pairs=6)
    assert quality.precision == pytest.approx(0.75)
    assert quality.recall == pytest.approx(0.6)
    assert quality.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)


def test_discovery_quality_degenerate():
    empty = DiscoveryQuality(0, 0, 0)
    assert empty.precision == 0.0
    assert empty.recall == 0.0
    assert empty.f1 == 0.0


# -- jain fairness --------------------------------------------------------------


def test_jain_fairness_bounds():
    assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)
    assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_fairness([0, 0]) == 1.0  # all-zero convention
    with pytest.raises(ValueError):
        jain_fairness([])


def test_jain_fairness_intermediate():
    value = jain_fairness([1, 2, 3])
    assert 1 / 3 < value < 1.0


# -- end-to-end over a run ----------------------------------------------------------


def test_tcg_discovery_recovers_motion_groups():
    sim = run_small()
    quality = tcg_discovery_quality(sim)
    assert quality.true_pairs == 3 * (4 * 3 // 2)  # 3 groups of 4
    # TCG discovery should find mostly-correct pairs at this scale.
    assert quality.precision > 0.7
    assert quality.recall > 0.5
    assert 0.0 < quality.f1 <= 1.0


def test_tcg_discovery_requires_gc():
    sim = run_small(scheme=CachingScheme.CC)
    with pytest.raises(ValueError):
        tcg_discovery_quality(sim)


def test_group_distinct_items_and_duplication():
    sim = run_small()
    distinct = group_distinct_items(sim)
    assert set(distinct) == {0, 1, 2}
    for count in distinct.values():
        # Never more distinct items than the group's summed capacity.
        assert 1 <= count <= 4 * 20
    duplication = cache_duplication(sim)
    assert duplication >= 1.0


def test_cache_overlap_matrix_properties():
    sim = run_small()
    matrix = cache_overlap_matrix(sim)
    assert matrix.shape == (12, 12)
    assert np.allclose(matrix, matrix.T)
    assert np.allclose(np.diag(matrix), 1.0)
    assert ((0.0 <= matrix) & (matrix <= 1.0)).all()


def same_group_mean_overlap(sim):
    matrix = cache_overlap_matrix(sim)
    groups = np.asarray(sim.group_of)
    same = groups[:, None] == groups[None, :]
    np.fill_diagonal(same, False)
    upper = np.triu(np.ones_like(same, dtype=bool), k=1)
    return matrix[same & upper].mean(), matrix[~same & upper].mean()


def test_coca_members_duplicate_but_grococa_suppresses_it():
    """Plain COCA members share hot sets, so their caches overlap more than
    strangers'; GroCoCa's admission control + cooperative replacement
    actively suppress exactly that same-group duplication."""
    cc_same, cc_cross = same_group_mean_overlap(run_small(CachingScheme.CC))
    gc_same, _gc_cross = same_group_mean_overlap(run_small(CachingScheme.GC))
    assert cc_same > cc_cross  # natural duplication under plain COCA
    assert gc_same < cc_same  # GroCoCa removes it
