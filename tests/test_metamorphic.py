"""Metamorphic and differential properties of the simulation entry points.

Three relations that must hold for *every* configuration:

* serialisation is lossless — a config survives ``as_dict`` -> JSON ->
  ``from_dict`` with its identity, cache key and simulated results intact;
* an all-zero fault plan is indistinguishable from no fault plan;
* re-running the same config (serially or through the result cache)
  reproduces the results bit for bit.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.golden import results_to_dict
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import run_simulation
from repro.experiments.cache import ResultCache, canonical_config, config_key
from repro.net.faults import CrashFaults, FaultPlan, LinkFaults

# -- strategies ---------------------------------------------------------------

link_faults = st.builds(
    LinkFaults,
    loss=st.floats(min_value=0.0, max_value=0.5),
    burst_loss=st.floats(min_value=0.0, max_value=0.5),
    burst_on=st.floats(min_value=0.0, max_value=1.0),
    burst_off=st.floats(min_value=0.0, max_value=1.0),
)

fault_plans = st.builds(
    FaultPlan,
    p2p=link_faults,
    uplink=link_faults,
    downlink=link_faults,
    crash=st.builds(
        CrashFaults,
        rate=st.floats(min_value=0.0, max_value=0.01),
        down_min=st.just(1.0),
        down_max=st.floats(min_value=1.0, max_value=10.0),
    ),
)

configs = st.builds(
    SimulationConfig,
    scheme=st.sampled_from(list(CachingScheme)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_clients=st.integers(min_value=2, max_value=30),
    n_data=st.integers(min_value=100, max_value=2000),
    cache_size=st.integers(min_value=1, max_value=60),
    access_range=st.integers(min_value=10, max_value=100),
    theta=st.floats(min_value=0.0, max_value=1.0),
    group_size=st.integers(min_value=1, max_value=8),
    p_disc=st.floats(min_value=0.0, max_value=0.5),
    hop_dist=st.integers(min_value=1, max_value=4),
    ndp_enabled=st.booleans(),
    faults=fault_plans,
    search_retry_limit=st.integers(min_value=0, max_value=2),
)


# -- pure (cheap) properties --------------------------------------------------


@given(configs)
def test_config_survives_dict_and_json_round_trip(config):
    payload = json.loads(json.dumps(config.as_dict()))
    rebuilt = SimulationConfig.from_dict(payload)
    assert rebuilt == config
    assert canonical_config(rebuilt) == canonical_config(config)
    assert config_key(rebuilt) == config_key(config)


@given(configs, st.integers(min_value=0, max_value=2**31 - 1))
def test_cache_key_separates_seeds_and_tracks_identity(config, other_seed):
    same = SimulationConfig.from_dict(config.as_dict())
    assert config_key(same) == config_key(config)
    reseeded = config.replace(seed=other_seed)
    if other_seed != config.seed:
        assert config_key(reseeded) != config_key(config)
    else:
        assert config_key(reseeded) == config_key(config)


@given(st.sampled_from(list(CachingScheme)))
def test_explicit_zero_fault_plan_is_the_default_plan(scheme):
    implicit = SimulationConfig(scheme=scheme)
    explicit = SimulationConfig(
        scheme=scheme,
        faults=FaultPlan(
            p2p=LinkFaults(),
            uplink=LinkFaults(),
            downlink=LinkFaults(),
            crash=CrashFaults(),
        ),
    )
    assert explicit == implicit
    assert not explicit.faults.enabled
    assert config_key(explicit) == config_key(implicit)


# -- simulating (expensive) properties: few, tiny, deadline-free --------------

_TINY = dict(
    n_clients=6,
    n_data=150,
    access_range=30,
    cache_size=6,
    group_size=3,
    measure_requests=5,
    warmup_min_time=20.0,
    warmup_max_time=40.0,
    ndp_enabled=False,
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scheme=st.sampled_from(list(CachingScheme)),
)
@settings(max_examples=4, deadline=None)
def test_seed_stability_across_config_round_trips(seed, scheme):
    config = SimulationConfig(scheme=scheme, seed=seed, **_TINY)
    rebuilt = SimulationConfig.from_dict(json.loads(json.dumps(config.as_dict())))
    first = results_to_dict(run_simulation(config))
    second = results_to_dict(run_simulation(rebuilt))
    first.pop("profile")
    second.pop("profile")
    assert second == first


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=3, deadline=None)
def test_zero_fault_plan_runs_bit_identical_to_no_plan(seed):
    base = SimulationConfig(scheme=CachingScheme.CC, seed=seed, **_TINY)
    zeroed = base.replace(
        faults=FaultPlan(
            p2p=LinkFaults(loss=0.0),
            uplink=LinkFaults(loss=0.0),
            downlink=LinkFaults(loss=0.0),
            crash=CrashFaults(rate=0.0),
        )
    )
    first = results_to_dict(run_simulation(base))
    second = results_to_dict(run_simulation(zeroed))
    assert second == first


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=3, deadline=None)
def test_cached_rerun_returns_identical_results(tmp_path_factory, seed):
    config = SimulationConfig(scheme=CachingScheme.LC, seed=seed, **_TINY)
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    fresh = run_simulation(config)
    cache.put(config, fresh)
    cached = cache.get(config)
    assert cached is not None
    assert results_to_dict(cached) == results_to_dict(fresh)
    assert cache.hits == 1 and cache.stores == 1
