"""Tests for VLFL compression (Algorithm 4) and the peer counter vector."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures import (
    PeerSignature,
    SignatureScheme,
    expected_compressed_bits,
    find_optimal_r,
    should_compress,
    vlfl_decode,
    vlfl_encode,
)
from repro.signatures.vlfl import expected_run_length, zero_probability


def scheme(size=1024, k=2, seed=0):
    return SignatureScheme(np.random.default_rng(seed), size, k)


# -- vlfl encoding ---------------------------------------------------------------


def test_encode_decode_simple():
    bits = np.array([0, 0, 1, 0, 0, 0, 0, 1, 0, 0], dtype=bool)
    compressed = vlfl_encode(bits, run_cap=3)
    assert np.array_equal(vlfl_decode(compressed), bits)


def test_encode_all_zeros():
    bits = np.zeros(100, dtype=bool)
    compressed = vlfl_encode(bits, run_cap=7)
    assert np.array_equal(vlfl_decode(compressed), bits)
    # 100 zeros = 14 full runs of 7 + tail of 2 -> 15 symbols of 3 bits.
    assert compressed.symbol_count == 15
    assert compressed.size_bits == 45


def test_encode_all_ones():
    bits = np.ones(32, dtype=bool)
    compressed = vlfl_encode(bits, run_cap=3)
    assert np.array_equal(vlfl_decode(compressed), bits)
    assert compressed.symbol_count == 32  # every bit its own (L=0, 1) run


def test_encode_empty_vector():
    bits = np.zeros(0, dtype=bool)
    compressed = vlfl_encode(bits, run_cap=3)
    assert vlfl_decode(compressed).size == 0


def test_run_cap_must_be_power_of_two_minus_one():
    bits = np.zeros(8, dtype=bool)
    for bad in (0, 2, 4, 5, 6):
        with pytest.raises(ValueError):
            vlfl_encode(bits, run_cap=bad)
    for good in (1, 3, 7, 15):
        vlfl_encode(bits, run_cap=good)


def test_sparse_signature_compresses_well():
    rng = np.random.default_rng(1)
    bits = np.zeros(10_000, dtype=bool)
    bits[rng.choice(10_000, size=200, replace=False)] = True
    run_cap = find_optimal_r(100, 10_000, 2)
    compressed = vlfl_encode(bits, run_cap)
    assert compressed.size_bytes < 10_000 // 8  # beats the raw signature
    assert np.array_equal(vlfl_decode(compressed), bits)


@given(
    st.lists(st.booleans(), max_size=300),
    st.sampled_from([1, 3, 7, 15, 31]),
)
@settings(max_examples=80)
def test_roundtrip_property(bit_list, run_cap):
    bits = np.array(bit_list, dtype=bool)
    assert np.array_equal(vlfl_decode(vlfl_encode(bits, run_cap)), bits)


def test_codeword_bits():
    assert vlfl_encode(np.zeros(4, dtype=bool), 1).codeword_bits == 1
    assert vlfl_encode(np.zeros(4, dtype=bool), 7).codeword_bits == 3
    assert vlfl_encode(np.zeros(4, dtype=bool), 15).codeword_bits == 4


# -- analytics / algorithm 4 ----------------------------------------------------------


def test_zero_probability_bounds():
    phi = zero_probability(100, 10_000, 2)
    assert 0.97 < phi < 1.0
    assert zero_probability(0, 10_000, 2) == 1.0


def test_expected_run_length_uniform_zeros():
    # φ -> 1: every run maxes out at R.
    assert expected_run_length(1.0, 7) == 7.0
    # φ = 0: runs are single terminators.
    assert expected_run_length(0.0, 7) == 1.0


def test_find_optimal_r_sparse_beats_dense():
    sparse = find_optimal_r(cache_items=100, size_bits=10_000, k=2)
    dense = find_optimal_r(cache_items=5000, size_bits=10_000, k=2)
    assert sparse > dense


def test_find_optimal_r_matches_exhaustive_search():
    for cache_items, size_bits, k in [(100, 10_000, 2), (50, 1024, 4), (10, 512, 2)]:
        phi = zero_probability(cache_items, size_bits, k)
        best = min(
            ((1 << l) - 1 for l in range(1, 20)),
            key=lambda r: expected_compressed_bits(size_bits, phi, r),
        )
        assert find_optimal_r(cache_items, size_bits, k) == best


def test_should_compress_decision():
    assert should_compress(cache_items=100, size_bits=10_000, k=2)
    assert not should_compress(cache_items=5000, size_bits=10_000, k=2)


def test_expected_size_predicts_actual_size():
    rng = np.random.default_rng(2)
    size_bits, items, k = 10_000, 150, 2
    s = SignatureScheme(rng, size_bits, k)
    bloom = s.make_filter()
    bloom.add_all(range(items))
    run_cap = find_optimal_r(items, size_bits, k)
    compressed = vlfl_encode(bloom.bits, run_cap)
    phi = zero_probability(items, size_bits, k)
    predicted = expected_compressed_bits(size_bits, phi, run_cap)
    assert compressed.size_bits == pytest.approx(predicted, rel=0.15)


# -- peer signature ---------------------------------------------------------------------


def test_peer_signature_starts_empty():
    peer = PeerSignature(scheme())
    assert peer.counter_bits == 0
    assert peer.memory_bits == 0


def test_merge_signature_sets_counters_and_width():
    s = scheme()
    peer = PeerSignature(s)
    member = s.make_filter()
    member.add_all([1, 2, 3])
    peer.merge_signature(member)
    assert peer.counter_bits == 1
    assert peer.covers(s.data_signature(2))


def test_width_expands_with_overlapping_members():
    s = scheme()
    peer = PeerSignature(s)
    member = s.make_filter()
    member.add_all([1, 2, 3])
    for _ in range(3):  # three identical members -> counters reach 3
        peer.merge_signature(member)
    assert peer.counter_bits == 2
    assert peer.expansions >= 2


def test_width_contracts_after_evictions():
    s = scheme()
    peer = PeerSignature(s)
    member = s.make_filter()
    member.add(1)
    peer.merge_signature(member)
    peer.merge_signature(member)
    assert peer.counter_bits == 2
    positions = list(s.positions(1))
    peer.apply_update([], positions)  # one eviction of item 1 somewhere
    assert peer.counter_bits == 1
    assert peer.contractions >= 1


def test_apply_update_insertions_and_floor_at_zero():
    s = scheme()
    peer = PeerSignature(s)
    positions = list(s.positions(9))
    peer.apply_update(positions, [])
    assert peer.matches_positions(positions)
    peer.apply_update([], positions)
    peer.apply_update([], positions)  # extra evictions must not underflow
    assert not peer.matches_positions(positions)
    assert peer.counters.min() == 0


def test_reset():
    s = scheme()
    peer = PeerSignature(s)
    member = s.make_filter()
    member.add_all(range(10))
    peer.merge_signature(member)
    peer.reset()
    assert peer.counter_bits == 0
    assert peer.counters.sum() == 0


def test_covers_and_bloom_view():
    s = scheme()
    peer = PeerSignature(s)
    member = s.make_filter()
    member.add_all([5, 6])
    peer.merge_signature(member)
    assert peer.covers(s.data_signature(5))
    collapsed = peer.bloom()
    assert collapsed.might_contain(6)


def test_cross_scheme_merge_rejected():
    peer = PeerSignature(scheme(seed=1))
    foreign = scheme(seed=2).make_filter()
    with pytest.raises(ValueError):
        peer.merge_signature(foreign)


@given(st.lists(st.integers(0, 30), max_size=40))
@settings(max_examples=40)
def test_peer_counters_never_negative_property(items):
    s = scheme(size=512, seed=5)
    peer = PeerSignature(s)
    for item in items:
        peer.apply_update(list(s.positions(item)), [])
    for item in items + items:  # evict more than inserted
        peer.apply_update([], list(s.positions(item)))
    assert peer.counters.min() >= 0
    assert peer.counter_bits == (
        int(peer.counters.max()).bit_length() if peer.counters.max() else 0
    )
