"""Unit + property tests for the mobility substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import (
    GroupMemberTrajectory,
    MobilityField,
    RandomWaypointTrajectory,
    Rectangle,
    StationaryTrajectory,
    build_group_mobility,
)
from repro.mobility.geometry import euclidean, random_point_in_disc
from repro.mobility.trajectory import PiecewiseLinearTrajectory, Segment

AREA = Rectangle(1000.0, 1000.0)


def rng(seed=0):
    return np.random.default_rng(seed)


# -- geometry ---------------------------------------------------------------


def test_rectangle_rejects_degenerate():
    with pytest.raises(ValueError):
        Rectangle(0.0, 10.0)


def test_rectangle_contains_and_clamp():
    area = Rectangle(10.0, 20.0)
    assert area.contains(np.array([5.0, 5.0]))
    assert not area.contains(np.array([11.0, 5.0]))
    clamped = area.clamp(np.array([-3.0, 25.0]))
    assert clamped.tolist() == [0.0, 20.0]


def test_rectangle_random_point_inside():
    area = Rectangle(10.0, 20.0)
    generator = rng()
    for _ in range(100):
        assert area.contains(area.random_point(generator))


def test_rectangle_center_diagonal():
    area = Rectangle(30.0, 40.0)
    assert area.center.tolist() == [15.0, 20.0]
    assert area.diagonal == pytest.approx(50.0)


def test_euclidean():
    assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)


@given(st.floats(min_value=0.1, max_value=100.0), st.integers(0, 2**32 - 1))
@settings(max_examples=30)
def test_random_point_in_disc_within_radius(radius, seed):
    x, y = random_point_in_disc(np.random.default_rng(seed), radius)
    assert math.hypot(x, y) <= radius + 1e-9


# -- trajectories -----------------------------------------------------------


def test_segment_position_and_clamp():
    segment = Segment(1.0, 3.0, np.array([0.0, 0.0]), np.array([2.0, 0.0]))
    assert segment.position(2.0).tolist() == [2.0, 0.0]
    assert segment.position(0.0).tolist() == [0.0, 0.0]  # clamped to start
    assert segment.position(99.0).tolist() == [4.0, 0.0]  # clamped to end
    assert segment.endpoint.tolist() == [4.0, 0.0]


def test_stationary_trajectory():
    trajectory = StationaryTrajectory([3.0, 4.0])
    assert trajectory.position(0.0).tolist() == [3.0, 4.0]
    assert trajectory.position(1e6).tolist() == [3.0, 4.0]


def test_waypoint_stays_in_area():
    trajectory = RandomWaypointTrajectory(rng(), AREA, 1.0, 5.0)
    for t in np.linspace(0.0, 2000.0, 400):
        assert AREA.contains(trajectory.position(t), tolerance=1e-6)


def test_waypoint_is_continuous():
    trajectory = RandomWaypointTrajectory(rng(1), AREA, 1.0, 5.0)
    previous = trajectory.position(0.0)
    dt = 0.25
    for step in range(1, 2000):
        current = trajectory.position(step * dt)
        # speed bound: at most v_max * dt between samples.
        assert euclidean(previous, current) <= 5.0 * dt + 1e-9
        previous = current


def test_waypoint_moves_at_bounded_speed():
    trajectory = RandomWaypointTrajectory(rng(2), AREA, 2.0, 3.0, pause_time=0.0)
    t, dt = 0.0, 0.01
    speeds = []
    for _ in range(500):
        a = trajectory.position(t)
        b = trajectory.position(t + dt)
        speeds.append(euclidean(a, b) / dt)
        t += dt
    # Sampling may straddle a waypoint change, so test the bulk.
    speeds = sorted(speeds)
    assert speeds[10] >= 1.9
    assert speeds[-1] <= 3.0 + 1e-6


def test_waypoint_pause_segments_present():
    trajectory = RandomWaypointTrajectory(rng(3), AREA, 5.0, 5.0, pause_time=1.0)
    trajectory.position(2000.0)
    pauses = [
        segment
        for segment in trajectory._segments
        if np.allclose(segment.velocity, 0.0)
    ]
    assert pauses
    assert all(
        segment.end - segment.start == pytest.approx(1.0) for segment in pauses
    )


def test_waypoint_rejects_bad_speeds():
    with pytest.raises(ValueError):
        RandomWaypointTrajectory(rng(), AREA, 0.0, 5.0)
    with pytest.raises(ValueError):
        RandomWaypointTrajectory(rng(), AREA, 5.0, 1.0)


def test_waypoint_rejects_start_outside_area():
    with pytest.raises(ValueError):
        RandomWaypointTrajectory(
            rng(), AREA, 1.0, 2.0, start_point=np.array([2000.0, 0.0])
        )


def test_trajectory_rejects_past_query():
    trajectory = RandomWaypointTrajectory(rng(), AREA, 1.0, 2.0, start_time=10.0)
    trajectory.position(20.0)
    with pytest.raises(ValueError):
        trajectory.position(5.0)


def test_trajectory_lazy_generation():
    trajectory = RandomWaypointTrajectory(rng(4), AREA, 1.0, 5.0)
    assert trajectory.segment_count == 0
    trajectory.position(1.0)
    few = trajectory.segment_count
    trajectory.position(1000.0)
    assert trajectory.segment_count > few


def test_bad_subclass_segment_contract():
    class Broken(PiecewiseLinearTrajectory):
        def _next_segment(self, start, origin):
            return Segment(start + 1.0, start + 2.0, origin, np.zeros(2))

    broken = Broken(0.0, np.zeros(2))
    with pytest.raises(ValueError):
        broken.position(5.0)


# -- group mobility -----------------------------------------------------------


def test_group_member_tracks_reference_within_span():
    reference = RandomWaypointTrajectory(rng(5), AREA, 1.0, 5.0)
    member = GroupMemberTrajectory(reference, rng(6), span=50.0)
    for t in np.linspace(0.0, 500.0, 200):
        offset = euclidean(member.position(t), reference.position(t))
        assert offset <= 50.0 + 1e-6


def test_group_member_zero_span_equals_reference():
    reference = RandomWaypointTrajectory(rng(7), AREA, 1.0, 5.0)
    member = GroupMemberTrajectory(reference, rng(8), span=0.0)
    for t in (0.0, 10.0, 123.4):
        assert np.allclose(member.position(t), reference.position(t))


def test_group_member_rejects_bad_params():
    reference = StationaryTrajectory([0.0, 0.0])
    with pytest.raises(ValueError):
        GroupMemberTrajectory(reference, rng(), span=-1.0)
    with pytest.raises(ValueError):
        GroupMemberTrajectory(reference, rng(), span=1.0, leg_min=5.0, leg_max=1.0)


def test_group_members_stay_mutually_close():
    field, group_of = build_group_mobility(
        rng(9), n_clients=10, group_size=5, area=AREA, v_min=1.0, v_max=5.0
    )
    for t in np.linspace(0.0, 300.0, 50):
        positions = field.positions(t)
        for i in range(10):
            for j in range(i + 1, 10):
                if group_of[i] == group_of[j]:
                    assert euclidean(positions[i], positions[j]) <= 100.0 + 1e-6


def test_build_group_mobility_group_assignment():
    field, group_of = build_group_mobility(
        rng(10), n_clients=7, group_size=3, area=AREA, v_min=1.0, v_max=2.0
    )
    assert len(field) == 7
    assert group_of == [0, 0, 0, 1, 1, 1, 2]


def test_build_group_mobility_validates():
    with pytest.raises(ValueError):
        build_group_mobility(rng(), 0, 1, AREA, 1.0, 2.0)
    with pytest.raises(ValueError):
        build_group_mobility(rng(), 5, 0, AREA, 1.0, 2.0)


# -- field queries -------------------------------------------------------------


def grid_field():
    points = [(0.0, 0.0), (30.0, 0.0), (90.0, 0.0), (0.0, 40.0)]
    return MobilityField([StationaryTrajectory(p) for p in points])


def test_field_positions_shape_and_cache():
    field = grid_field()
    a = field.positions(1.0)
    assert a.shape == (4, 2)
    refreshes = field.snapshot_refreshes
    assert field.positions(1.0) is a  # cached
    assert field.snapshot_refreshes == refreshes
    field.positions(2.0)
    assert field.snapshot_refreshes == refreshes + 1  # refilled in place


def test_field_distance():
    field = grid_field()
    assert field.distance(0, 1, 0.0) == pytest.approx(30.0)
    assert field.distance(0, 3, 0.0) == pytest.approx(40.0)


def test_field_neighbors_of():
    field = grid_field()
    assert field.neighbors_of(0, 0.0, radius=50.0).tolist() == [1, 3]
    assert field.neighbors_of(0, 0.0, radius=100.0).tolist() == [1, 2, 3]
    assert field.neighbors_of(2, 0.0, radius=50.0).tolist() == []


def test_field_neighbors_respects_mask():
    field = grid_field()
    mask = np.array([True, False, True, True])
    assert field.neighbors_of(0, 0.0, radius=50.0, include_mask=mask).tolist() == [3]


def test_field_within_range_includes_center_host():
    field = grid_field()
    found = field.within_range(np.array([0.0, 0.0]), 0.0, radius=35.0)
    assert found.tolist() == [0, 1]


def test_field_pairwise_distances_symmetric():
    field = grid_field()
    matrix = field.pairwise_distances(0.0)
    assert np.allclose(matrix, matrix.T)
    assert np.allclose(np.diag(matrix), 0.0)
    assert matrix[0, 2] == pytest.approx(90.0)


def test_field_neighbor_symmetry_random():
    field, _ = build_group_mobility(
        rng(11), n_clients=20, group_size=4, area=AREA, v_min=1.0, v_max=5.0
    )
    for t in (0.0, 50.0, 100.0):
        for i in range(20):
            for j in field.neighbors_of(i, t, radius=100.0):
                assert i in field.neighbors_of(int(j), t, radius=100.0)


def test_field_requires_trajectories():
    with pytest.raises(ValueError):
        MobilityField([])


# -- vectorised snapshot bit-identity --------------------------------------


class _OpaqueTrajectory:
    """Hides the concrete type so the field takes the scalar fallback."""

    def __init__(self, inner):
        self._inner = inner

    def position(self, t):
        return self._inner.position(t)


def _paired_fields(seed, group_size, resolution):
    """Two same-seeded fields: one vectorised, one forced onto the fallback."""
    fast, _ = build_group_mobility(
        rng(seed), 12, group_size, AREA, 1.0, 5.0, resolution=resolution
    )
    slow, _ = build_group_mobility(
        rng(seed), 12, group_size, AREA, 1.0, 5.0, resolution=resolution
    )
    slow = MobilityField(
        [_OpaqueTrajectory(t) for t in slow.trajectories], resolution=resolution
    )
    assert fast._fast and not slow._fast
    return fast, slow


@given(
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from([1, 3, 4]),
    st.sampled_from([0.0, 0.1, 1.0]),
    st.lists(
        st.floats(min_value=0.0, max_value=400.0), min_size=1, max_size=25
    ),
)
@settings(max_examples=25, deadline=None)
def test_vectorised_snapshots_are_bitwise_identical_to_scalar(
    seed, group_size, resolution, times
):
    """The incremental fast path is a pure optimisation: every coordinate,
    including signed zeros, matches the per-host scalar rebuild bit for
    bit, and the shared RNG stream sees identical draws."""
    fast, slow = _paired_fields(seed, group_size, resolution)
    for t in sorted(times):
        a = fast.positions(t)
        b = slow.positions(t)
        assert a.tobytes() == b.tobytes(), f"snapshot diverged at t={t}"
    assert fast.snapshot_rebuilds == 0
    assert slow.snapshot_refreshes == 0


def test_vectorised_snapshot_handles_backward_queries_bitwise():
    """Out-of-order queries (cache-busting replays) still match exactly."""
    fast, slow = _paired_fields(7, 4, 0.1)
    for t in [0.0, 120.0, 30.0, 120.0, 0.05, 400.0, 399.95]:
        assert fast.positions(t).tobytes() == slow.positions(t).tobytes()
