"""Statistical properties of the workload engines (Hypothesis + KS).

Three distributional contracts from the workload spec:

* ``stationary-zipf`` — empirical rank frequencies match the analytic
  Zipf CDF within Kolmogorov-Smirnov tolerance, across seeds;
* ``diurnal`` — the sinusoidal rate factor integrates to exactly the
  configured mean over each period (and the drawn request rate stays on
  the nominal mean over whole periods);
* ``popularity-drift`` — reshuffling which item holds which rank leaves
  the *marginal* skew untouched: the sorted item-frequency profile still
  matches the analytic Zipf profile in every epoch, while the
  permutation itself genuinely changes between epochs.

All draws go through the real engines via ``build_workload`` — the same
objects a simulation binds — not through private re-implementations.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.data.zipf import ZipfGenerator
from repro.sim.random import RandomStreams
from repro.workloads.factory import build_workload
from repro.workloads.synthetic import diurnal_rate_factor

N_CLIENTS = 6
GROUP_SIZE = 3
N_DATA = 120
ACCESS_RANGE = 30


def small_config(seed, workload, theta=0.5, **params):
    return SimulationConfig(
        n_clients=N_CLIENTS,
        n_data=N_DATA,
        access_range=ACCESS_RANGE,
        cache_size=6,
        group_size=GROUP_SIZE,
        theta=theta,
        measure_requests=5,
        warmup_min_time=20.0,
        warmup_max_time=40.0,
        max_sim_time=400.0,
        ndp_enabled=False,
        seed=seed,
        workload=workload,
        workload_params=dict(params),
    )


def bound_stream(config):
    """The engine and host 0's stream, bound exactly as a simulation would."""
    streams = RandomStreams(config.seed)
    group_of = [index // config.group_size for index in range(config.n_clients)]
    engine = build_workload(config, streams, group_of)
    return engine, engine.bind(0, streams.stream("stats-host"))


def analytic_zipf_cdf(n, theta):
    zipf = ZipfGenerator(np.random.default_rng(0), n, theta)
    return np.cumsum([zipf.probability(rank) for rank in range(n)])


# -- stationary-zipf -------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    theta=st.sampled_from([0.0, 0.5, 0.95]),
)
@settings(max_examples=12, deadline=None)
def test_stationary_zipf_ranks_match_analytic_cdf(seed, theta):
    config = small_config(seed, "stationary-zipf", theta=theta)
    engine, stream = bound_stream(config)
    pattern = engine.patterns[0]
    n = 4_000
    ranks = np.array(
        [(stream.next_item(0.0) - pattern.start) % N_DATA for _ in range(n)]
    )
    assert ranks.max() < ACCESS_RANGE  # every draw lands in the group window
    empirical = np.cumsum(np.bincount(ranks, minlength=ACCESS_RANGE)) / n
    analytic = analytic_zipf_cdf(ACCESS_RANGE, theta)
    ks = float(np.max(np.abs(empirical - analytic)))
    # 1.95/sqrt(n) is the alpha ~= 0.001 KS critical value; the discrete
    # statistic is conservative against it.
    assert ks < 1.95 / math.sqrt(n), f"KS={ks:.4f} at theta={theta}"


# -- diurnal ---------------------------------------------------------------------


@given(
    amplitude=st.floats(min_value=0.0, max_value=0.95),
    period=st.floats(min_value=10.0, max_value=2_000.0),
)
@settings(max_examples=50, deadline=None)
def test_diurnal_factor_integrates_to_the_configured_mean(amplitude, period):
    ts = np.linspace(0.0, period, 20_001)
    factors = np.array([diurnal_rate_factor(t, amplitude, period) for t in ts])
    assert float(factors.min()) > 0.0  # amplitude < 1 keeps the rate positive
    mean = float(np.trapezoid(factors, ts)) / period
    assert mean == pytest.approx(1.0, abs=1e-6)


def test_diurnal_drawn_rate_stays_on_the_nominal_mean():
    period = 100.0
    config = small_config(
        42, "diurnal", amplitude=0.6, period=period
    )
    _, stream = bound_stream(config)
    horizon = 50 * period  # whole periods only, so modulation averages out
    now, count = 0.0, 0
    while now < horizon:
        now += stream.next_delay(now)
        stream.next_item(now)
        count += 1
    nominal = horizon / config.think_time_mean
    assert count == pytest.approx(nominal, rel=0.10)


# -- popularity-drift ------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_drift_preserves_marginal_skew_across_epochs(seed):
    period = 50.0
    config = small_config(seed, "popularity-drift", period=period)
    engine, stream = bound_stream(config)
    analytic = analytic_zipf_cdf(ACCESS_RANGE, config.theta)
    n = 3_000
    for epoch in (0, 3):
        now = epoch * period + 1.0
        items = [stream.next_item(now) for _ in range(n)]
        counts = np.bincount(np.array(items) % N_DATA, minlength=N_DATA)
        profile = np.sort(counts)[::-1][:ACCESS_RANGE] / n
        ks = float(np.max(np.abs(np.cumsum(profile) - analytic)))
        # Sorting the empirical profile biases it slightly hot, so the
        # tolerance is looser than the raw KS critical value.
        assert ks < 0.05, f"epoch {epoch}: KS={ks:.4f}"


def test_drift_permutation_changes_between_epochs():
    period = 50.0
    config = small_config(7, "popularity-drift", period=period)
    engine, _ = bound_stream(config)
    first = np.array(engine.permutation(1.0))
    second = np.array(engine.permutation(period + 1.0))
    assert sorted(first) == sorted(second) == list(range(ACCESS_RANGE))
    assert not np.array_equal(first, second)


def test_drift_epochs_are_monotone_and_order_independent():
    period = 50.0
    config = small_config(9, "popularity-drift", period=period)
    engine_a, _ = bound_stream(config)
    engine_b, _ = bound_stream(config)
    # Jumping straight to epoch 4 consumes the skipped epochs' draws, so
    # the mapping matches an engine that visited every epoch in turn.
    direct = np.array(engine_a.permutation(4 * period + 1.0))
    for epoch in range(4):
        engine_b.permutation(epoch * period + 1.0)
    stepped = np.array(engine_b.permutation(4 * period + 1.0))
    assert np.array_equal(direct, stepped)
    # Asking about an earlier time never rolls the epoch back.
    assert np.array_equal(np.array(engine_a.permutation(1.0)), direct)
