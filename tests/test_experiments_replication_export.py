"""Tests for multi-replication summaries and CSV export."""

import csv
import io
import math

import numpy as np
import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.experiments import (
    SweepTable,
    run_replications,
    sweep_to_csv,
    sweep_to_rows,
)
from repro.experiments.replication import MetricSummary, summarise
from tests.test_experiments import make_results


# -- summarise ----------------------------------------------------------------


def test_summarise_single_value():
    summary = summarise([3.0], confidence=0.95)
    assert summary.mean == 3.0
    assert summary.half_width == 0.0
    assert summary.n == 1


def test_summarise_matches_scipy_t_interval():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    summary = summarise(values, confidence=0.95)
    assert summary.mean == pytest.approx(3.0)
    expected_std = np.std(values, ddof=1)
    assert summary.stddev == pytest.approx(expected_std)
    # t(0.975, df=4) = 2.7764
    assert summary.half_width == pytest.approx(
        2.7764 * expected_std / math.sqrt(5), rel=1e-3
    )
    assert summary.low < summary.mean < summary.high


def test_summarise_skips_non_finite():
    summary = summarise([1.0, math.inf, 2.0], confidence=0.9)
    assert summary.n == 2
    assert summary.mean == pytest.approx(1.5)


def test_summarise_all_non_finite():
    summary = summarise([math.inf, math.inf], confidence=0.9)
    assert summary.n == 0
    assert math.isinf(summary.mean)


def test_metric_summary_str():
    text = str(MetricSummary(mean=1.5, stddev=0.1, half_width=0.2, n=4))
    assert "1.5" in text and "n=4" in text


# -- run_replications -------------------------------------------------------------


def small_config():
    return SimulationConfig(
        scheme=CachingScheme.CC,
        n_clients=8,
        n_data=200,
        access_range=40,
        cache_size=8,
        group_size=4,
        measure_requests=10,
        warmup_min_time=60.0,
        warmup_max_time=90.0,
        ndp_enabled=False,
        seed=100,
    )


def test_run_replications_paired_and_summarised():
    outcome = run_replications(
        small_config(),
        replications=3,
        schemes=(CachingScheme.LC, CachingScheme.CC),
    )
    assert set(outcome) == {"LC", "CC"}
    for summary in outcome.values():
        assert len(summary.runs) == 3
        assert summary["server_request_ratio"].n == 3
        assert 0 <= summary["server_request_ratio"].mean <= 100
    # Replications differ (different seeds) so the stddev is meaningful.
    lc = outcome["LC"]
    assert lc["server_request_ratio"].stddev >= 0.0


def test_run_replications_reproducible():
    kwargs = dict(replications=2, schemes=(CachingScheme.LC,))
    first = run_replications(small_config(), **kwargs)
    second = run_replications(small_config(), **kwargs)
    assert (
        first["LC"]["server_request_ratio"].mean
        == second["LC"]["server_request_ratio"].mean
    )


def test_run_replications_validation():
    with pytest.raises(ValueError):
        run_replications(small_config(), replications=0)
    with pytest.raises(ValueError):
        run_replications(small_config(), confidence=1.5)


# -- CSV export ----------------------------------------------------------------------


def make_table():
    table = SweepTable(figure="Fig2", parameter="cache_size", values=[50, 100])
    table.rows["LC"] = [make_results(scheme="LC"), make_results(scheme="LC")]
    table.rows["GC"] = [make_results(scheme="GC"), make_results(scheme="GC", gch=20)]
    return table


def test_sweep_to_rows_shape():
    rows = sweep_to_rows(make_table())
    assert len(rows) == 4
    assert {row["scheme"] for row in rows} == {"LC", "GC"}
    assert {row["value"] for row in rows} == {50, 100}
    assert all(row["figure"] == "Fig2" for row in rows)


def test_sweep_to_csv_roundtrip(tmp_path):
    path = tmp_path / "fig2.csv"
    text = sweep_to_csv(make_table(), path)
    assert path.read_text() == text
    reader = csv.DictReader(io.StringIO(text))
    rows = list(reader)
    assert len(rows) == 4
    gc_100 = next(
        r for r in rows if r["scheme"] == "GC" and r["value"] == "100"
    )
    assert float(gc_100["gch_ratio"]) == pytest.approx(20.0)
