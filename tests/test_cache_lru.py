"""Tests for the LRU cache with TTL entries."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheEntry, LRUCache


def entry(item, **kwargs):
    return CacheEntry(item=item, **kwargs)


def test_entry_validity_and_remaining_ttl():
    e = entry(1, expiry=10.0)
    assert e.is_valid(5.0)
    assert e.is_valid(10.0)
    assert not e.is_valid(10.1)
    assert e.remaining_ttl(4.0) == pytest.approx(6.0)
    assert e.remaining_ttl(50.0) == 0.0


def test_entry_infinite_ttl_by_default():
    e = entry(1)
    assert e.expiry == math.inf
    assert e.is_valid(1e12)


def test_insert_and_get():
    cache = LRUCache(2)
    cache.insert(entry(1), now=0.0)
    assert 1 in cache
    assert cache.get(1).item == 1
    assert cache.get(2) is None


def test_lru_eviction_order():
    cache = LRUCache(2)
    cache.insert(entry(1), now=0.0)
    cache.insert(entry(2), now=1.0)
    evicted = cache.insert(entry(3), now=2.0)
    assert evicted.item == 1
    assert cache.items() == [2, 3]


def test_touch_promotes_to_mru():
    cache = LRUCache(2)
    cache.insert(entry(1), now=0.0)
    cache.insert(entry(2), now=1.0)
    cache.touch(1, now=2.0)
    evicted = cache.insert(entry(3), now=3.0)
    assert evicted.item == 2
    assert cache.get(1).last_access == 2.0


def test_touch_missing_raises():
    cache = LRUCache(1)
    with pytest.raises(KeyError):
        cache.touch(5, now=0.0)


def test_reinsert_existing_does_not_evict():
    cache = LRUCache(2)
    cache.insert(entry(1), now=0.0)
    cache.insert(entry(2), now=1.0)
    evicted = cache.insert(entry(1, version=2), now=2.0)
    assert evicted is None
    assert cache.get(1).version == 2
    assert cache.items() == [2, 1]


def test_explicit_evict():
    cache = LRUCache(2)
    cache.insert(entry(1), now=0.0)
    removed = cache.evict(1)
    assert removed.item == 1
    assert 1 not in cache
    with pytest.raises(KeyError):
        cache.evict(1)


def test_evict_lru_empty_raises():
    cache = LRUCache(1)
    with pytest.raises(KeyError):
        cache.evict_lru()


def test_lru_entries_window():
    cache = LRUCache(5)
    for item in range(5):
        cache.insert(entry(item), now=float(item))
    least = cache.lru_entries(3)
    assert [e.item for e in least] == [0, 1, 2]
    assert [e.item for e in cache.lru_entries(99)] == [0, 1, 2, 3, 4]


def test_counters():
    cache = LRUCache(1)
    cache.insert(entry(1), now=0.0)
    cache.insert(entry(2), now=1.0)
    assert cache.insertions == 2
    assert cache.evictions == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_iteration_order_is_lru_to_mru():
    cache = LRUCache(3)
    for item in (1, 2, 3):
        cache.insert(entry(item), now=0.0)
    cache.touch(1, now=1.0)
    assert list(cache) == [2, 3, 1]


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "evict"]), st.integers(0, 9)),
        max_size=200,
    ),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_lru_invariants_random_operations(operations, capacity):
    """Size never exceeds capacity; eviction victim is always the LRU item."""
    cache = LRUCache(capacity)
    model = []  # items LRU -> MRU
    for step, (op, item) in enumerate(operations):
        now = float(step)
        if op == "insert":
            evicted = cache.insert(entry(item), now=now)
            if item in model:
                model.remove(item)
                assert evicted is None
            elif len(model) >= capacity:
                assert evicted is not None and evicted.item == model.pop(0)
            else:
                assert evicted is None
            model.append(item)
        elif op == "touch":
            if item in model:
                cache.touch(item, now=now)
                model.remove(item)
                model.append(item)
            else:
                with pytest.raises(KeyError):
                    cache.touch(item, now=now)
        else:  # evict
            if item in model:
                cache.evict(item)
                model.remove(item)
            else:
                with pytest.raises(KeyError):
                    cache.evict(item)
        assert len(cache) <= capacity
        assert cache.items() == model
