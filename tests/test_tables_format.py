"""Edge cases of the table number formatter."""

import math

from repro.experiments.tables import _fmt


def test_fmt_zero():
    assert _fmt(0) == "        0"


def test_fmt_inf_and_nan():
    assert _fmt(math.inf).strip() == "inf"
    assert _fmt(float("nan")).strip() == "n/a"
    assert _fmt(None).strip() == "n/a"


def test_fmt_magnitude_bands():
    assert _fmt(12345.6).strip() == "12346"
    assert _fmt(12.345).strip() == "12.35"
    assert _fmt(0.01234).strip() == "0.0123"
    assert _fmt(-5000).strip() == "-5000"


def test_fmt_width_is_stable():
    for value in (0, 1.5, 123456.0, 0.001, math.inf):
        assert len(_fmt(value)) == 9
