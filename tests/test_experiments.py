"""Tests for the experiment harness (profiles, sweeps, table rendering)."""

import math

import pytest

from repro.core.config import CachingScheme
from repro.core.metrics import Results
from repro.experiments import (
    SweepTable,
    active_profile,
    base_config,
    format_results_row,
    format_sweep_table,
    run_sweep,
)
from repro.experiments.runner import _PROFILES


def make_results(scheme="GC", latency=0.01, gch=10, server=40, requests=100):
    return Results(
        scheme=scheme,
        requests=requests,
        local_hits=requests - gch - server,
        global_hits=gch,
        global_hits_tcg=gch // 2,
        server_requests=server,
        failures=0,
        access_latency=latency,
        latency_stddev=0.0,
        power_data=1000.0,
        power_signature=100.0,
        power_beacon=10.0,
        power_per_gch=1100.0 / gch if gch else math.inf,
        validations=0,
        validation_refreshes=0,
        bypassed_searches=0,
        peer_searches=0,
        measured_time=60.0,
        sim_time=360.0,
    )


def test_active_profile_default(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert active_profile() == "bench"


def test_active_profile_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    assert active_profile() == "quick"
    monkeypatch.setenv("REPRO_FULL", "1")
    assert active_profile() == "full"  # REPRO_FULL wins


def test_active_profile_rejects_unknown(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    monkeypatch.setenv("REPRO_PROFILE", "bogus")
    with pytest.raises(ValueError):
        active_profile()


def test_base_config_applies_profile_and_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    config = base_config(theta=0.9)
    assert config.n_clients == _PROFILES["quick"]["n_clients"]
    assert config.theta == 0.9


def test_profiles_keep_paper_ratios():
    for name, profile in _PROFILES.items():
        assert profile["access_range"] / profile["n_data"] == pytest.approx(0.1)
        # Cache covers 10% of the group's access range... within a factor.
        ratio = profile["cache_size"] / profile["access_range"]
        assert 0.05 <= ratio <= 0.2, name


def test_sweep_table_series_and_lookup():
    table = SweepTable(figure="FigX", parameter="p", values=[1, 2])
    table.rows["GC"] = [make_results(gch=10), make_results(gch=20)]
    assert table.series("GC", "gch_ratio") == [10.0, 20.0]
    assert table.result("GC", 2).global_hits == 20
    with pytest.raises(ValueError):
        table.result("GC", 99)


def test_run_sweep_executes_every_cell(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    seen = []
    table = run_sweep(
        "FigT",
        "cache_size",
        [5, 10],
        lambda v: base_config(
            cache_size=v,
            n_clients=4,
            n_data=100,
            access_range=10,
            measure_requests=3,
            warmup_min_time=0.0,
            warmup_max_time=30.0,
        ),
        schemes=[CachingScheme.LC, CachingScheme.CC],
        progress=seen.append,
    )
    assert set(table.rows) == {"LC", "CC"}
    assert len(table.rows["LC"]) == 2
    assert len(seen) == 4
    assert all(r.requests >= 12 for r in table.rows["LC"])


def test_format_results_row():
    text = format_results_row(make_results())
    assert "GC" in text and "lat=" in text and "power/gch" in text


def test_format_sweep_table_contains_all_panels():
    table = SweepTable(figure="Fig2", parameter="cache_size", values=[50, 100])
    for scheme in ("LC", "CC", "GC"):
        table.rows[scheme] = [make_results(scheme=scheme), make_results(scheme=scheme)]
    text = format_sweep_table(table, "effect of cache size")
    assert "Fig2" in text
    assert "(a) Access Latency" in text
    assert "(b) Server Request Ratio" in text
    assert "(c) GCH Ratio" in text
    assert "(d) Power per GCH" in text
    for scheme in ("LC", "CC", "GC"):
        assert scheme in text


def test_format_sweep_table_handles_inf_and_zero():
    table = SweepTable(figure="FigZ", parameter="x", values=[1])
    zero_gch = make_results(gch=0)
    table.rows["LC"] = [zero_gch]
    text = format_sweep_table(table)
    assert "inf" in text
