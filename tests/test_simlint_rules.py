"""Every simlint rule catches its seeded fixture violation (id + line)."""

from pathlib import Path

import pytest

from repro.analysis.engine import ModuleSource, all_rules, lint_source

FIXTURES = Path(__file__).parent / "lint_fixtures"


def findings_for(name):
    module = ModuleSource.from_path(FIXTURES / name)
    return lint_source(module, all_rules())


def marker_line(name, marker):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        if marker in line:
            return number
    raise AssertionError(f"marker {marker!r} not found in {name}")


DETERMINISM_CASES = [
    ("no-stdlib-random", "MARK:no-stdlib-random"),
    ("no-direct-rng", "MARK:no-direct-rng"),
    ("no-wall-clock", "MARK:no-wall-clock"),
    ("no-wall-clock", "MARK:no-wall-clock-datetime"),
    ("set-iteration-order", "MARK:set-iteration-order"),
]


@pytest.mark.parametrize("rule_id,marker", DETERMINISM_CASES)
def test_determinism_rules_catch_seeded_violations(rule_id, marker):
    findings = findings_for("determinism_violations.py")
    line = marker_line("determinism_violations.py", marker)
    assert any(
        f.rule == rule_id and f.line == line for f in findings
    ), f"{rule_id} not reported at line {line}: {findings}"


def test_stdlib_random_import_itself_is_flagged():
    findings = findings_for("determinism_violations.py")
    import_line = marker_line("determinism_violations.py", "import random")
    assert any(
        f.rule == "no-stdlib-random" and f.line == import_line for f in findings
    )


KERNEL_CASES = [
    ("kernel-yield-non-event", "MARK:kernel-yield-non-event"),
    ("kernel-blocking-call", "MARK:kernel-blocking-call"),
    ("kernel-stale-now", "MARK:kernel-stale-now"),
]


@pytest.mark.parametrize("rule_id,marker", KERNEL_CASES)
def test_kernel_rules_catch_seeded_violations(rule_id, marker):
    findings = findings_for("kernel_violations.py")
    line = marker_line("kernel_violations.py", marker)
    assert any(
        f.rule == rule_id and f.line == line for f in findings
    ), f"{rule_id} not reported at line {line}: {findings}"


def test_elapsed_time_subtraction_is_not_flagged():
    findings = findings_for("kernel_violations.py")
    lines = {
        marker_line("kernel_violations.py", "return env.now - started"),
    }
    assert not any(f.line in lines for f in findings)


CONFIG_CASES = [
    ("unknown-config-field", "MARK:unknown-config-field-profile"),
    ("unknown-config-field", "MARK:unknown-config-field-kwarg"),
    ("unknown-config-field", "MARK:unknown-config-field-replace"),
    ("unknown-results-field", "MARK:unknown-results-field"),
]


@pytest.mark.parametrize("rule_id,marker", CONFIG_CASES)
def test_config_rules_catch_seeded_violations(rule_id, marker):
    findings = findings_for("config_violations.py")
    line = marker_line("config_violations.py", marker)
    assert any(
        f.rule == rule_id and f.line == line for f in findings
    ), f"{rule_id} not reported at line {line}: {findings}"


POLICY_CASES = [
    ("policy-direct-instantiation", "MARK:policy-direct-admission"),
    ("policy-direct-instantiation", "MARK:policy-direct-replacement"),
    ("policy-direct-instantiation", "MARK:policy-direct-attribute"),
]


@pytest.mark.parametrize("rule_id,marker", POLICY_CASES)
def test_policy_rule_catches_seeded_violations(rule_id, marker):
    findings = findings_for("policy_violations.py")
    line = marker_line("policy_violations.py", marker)
    assert any(
        f.rule == rule_id and f.line == line for f in findings
    ), f"{rule_id} not reported at line {line}: {findings}"


def test_policy_rule_spares_registry_resolution():
    findings = findings_for("policy_violations.py")
    policy = [f for f in findings if f.rule == "policy-direct-instantiation"]
    flagged = {f.line for f in policy}
    allowed = {
        marker_line("policy_violations.py", "build_replacement(config, cache)"),
        marker_line("policy_violations.py", "registry.resolve(namespace, key)"),
    }
    assert not flagged & allowed, policy


def test_known_config_fields_are_not_flagged():
    findings = findings_for("config_violations.py")
    ok_line = marker_line("config_violations.py", '"n_clients": 4')
    assert not any(f.line == ok_line for f in findings)


OBS_CASES = [
    ("obs-raw-time", "MARK:obs-raw-time-wall-clock"),
    ("obs-raw-time", "MARK:obs-raw-time-datetime"),
    ("obs-raw-time", "MARK:obs-raw-time-positional"),
    ("obs-raw-time", "MARK:obs-raw-time-keyword"),
    ("obs-raw-time", "MARK:obs-raw-time-derived"),
]


@pytest.mark.parametrize("rule_id,marker", OBS_CASES)
def test_obs_rules_catch_seeded_violations(rule_id, marker):
    findings = findings_for("obs_violations.py")
    line = marker_line("obs_violations.py", marker)
    assert any(
        f.rule == rule_id and f.line == line for f in findings
    ), f"{rule_id} not reported at line {line}: {findings}"


def test_obs_rule_accepts_sim_time_arguments():
    findings = findings_for("obs_violations.py")
    ok_lines = {
        marker_line("obs_violations.py", "ok: env.now is the kernel clock"),
        marker_line("obs_violations.py", "ok: a bare `now` local"),
        marker_line("obs_violations.py", "ok: no timestamp keywords"),
    }
    obs_findings = [f for f in findings if f.rule == "obs-raw-time"]
    assert not any(f.line in ok_lines for f in obs_findings)


def test_obs_rule_is_clean_on_the_obs_package():
    package = Path(__file__).parent.parent / "src" / "repro" / "obs"
    for path in sorted(package.glob("*.py")):
        module = ModuleSource.from_path(path)
        findings = [
            f
            for f in lint_source(module, all_rules())
            if f.rule == "obs-raw-time"
        ]
        assert findings == [], f"{path.name}: {findings}"


def test_unvalidated_config_field_rule_fires_on_synthetic_class(tmp_path):
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class SimulationConfig:\n"
        "    checked: int = 1\n"
        "    unchecked: int = 2\n"
        "    flag: bool = True\n"
        "    def __post_init__(self):\n"
        "        if self.checked < 0:\n"
        "            raise ValueError('checked')\n"
    )
    path = tmp_path / "synthetic_config.py"
    path.write_text(source)
    findings = lint_source(ModuleSource.from_path(path), all_rules())
    flagged = [f for f in findings if f.rule == "config-field-unvalidated"]
    assert [f.line for f in flagged] == [5]  # unchecked only; bools exempt
    assert flagged[0].severity == "warning"


def test_rules_have_descriptions_and_hints():
    for rule in all_rules():
        assert rule.id
        assert rule.description
        assert rule.hint


HOT_ALLOC_MARKS = [
    "MARK:kernel-hot-alloc-display",
    "MARK:kernel-hot-alloc-call",
    "MARK:kernel-hot-alloc-comp",
]


@pytest.mark.parametrize("marker", HOT_ALLOC_MARKS)
def test_hot_alloc_rule_catches_dispatch_loop_allocations(marker):
    findings = findings_for("kernel_violations.py")
    line = marker_line("kernel_violations.py", marker)
    assert any(
        f.rule == "kernel-hot-alloc" and f.line == line for f in findings
    ), f"kernel-hot-alloc not reported at line {line}: {findings}"


def test_hot_alloc_rule_spares_non_dispatch_code_and_honors_pragmas():
    findings = [
        f for f in findings_for("kernel_violations.py")
        if f.rule == "kernel-hot-alloc"
    ]
    flagged_lines = {f.line for f in findings}
    hoisted = marker_line("kernel_violations.py", "hoisted = []")
    escaped = marker_line("kernel_violations.py", "reason=fixture shows")
    quiet = marker_line("kernel_violations.py", "dict(a=1)")
    assert hoisted not in flagged_lines  # allocation outside any loop
    assert escaped not in flagged_lines  # pragma suppression works
    assert quiet not in flagged_lines  # methods other than run/step
    assert len(findings) == len(HOT_ALLOC_MARKS)


RETRY_CASES = [
    ("unbounded-retry", "MARK:unbounded-retry"),
    ("unbounded-retry", "MARK:unbounded-retry-additive"),
]


@pytest.mark.parametrize("rule_id,marker", RETRY_CASES)
def test_retry_rule_catches_seeded_violations(rule_id, marker):
    findings = findings_for("retry_violations.py")
    line = marker_line("retry_violations.py", marker)
    assert any(
        f.rule == rule_id and f.line == line for f in findings
    ), f"{rule_id} not reported at line {line}: {findings}"


def test_retry_rule_spares_bounded_loops():
    findings = [
        f for f in findings_for("retry_violations.py")
        if f.rule == "unbounded-retry"
    ]
    # Only the two seeded violations fire; the attempt-bounded,
    # deadline-bounded, range-based and non-backoff loops stay clean.
    assert len(findings) == len(RETRY_CASES), findings


def test_retry_rule_is_clean_on_the_source_tree():
    package = Path(__file__).parent.parent / "src" / "repro"
    for path in sorted(package.rglob("*.py")):
        module = ModuleSource.from_path(path)
        findings = [
            f
            for f in lint_source(module, all_rules())
            if f.rule == "unbounded-retry"
        ]
        assert findings == [], f"{path}: {findings}"
