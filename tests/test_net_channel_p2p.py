"""Tests for the server channels and the P2P medium."""

import pytest

from repro.mobility import MobilityField, StationaryTrajectory
from repro.net import (
    Message,
    MessageKind,
    P2PNetwork,
    PowerLedger,
    PowerModel,
    ServerChannel,
)
from repro.sim import Environment


# -- message basics -----------------------------------------------------------


def test_message_positive_size_required():
    with pytest.raises(ValueError):
        Message(MessageKind.REQUEST, 0, None, 0)


def test_message_uids_unique():
    a = Message(MessageKind.REQUEST, 0, None, 10)
    b = Message(MessageKind.REQUEST, 0, None, 10)
    assert a.uid != b.uid


def test_message_sizes_helpers():
    from repro.net import MessageSizes

    sizes = MessageSizes(data=3072, header=32)
    assert sizes.data_message() == 3104
    assert sizes.server_reply(membership_changes=3) == 3104 + 3 * 8
    assert sizes.sig_reply(100) == 132


# -- server channel -----------------------------------------------------------


def test_server_channel_transfer_times():
    env = Environment()
    channel = ServerChannel(env, downlink_bps=8000.0, uplink_bps=800.0)
    assert channel.downlink_time(1000) == pytest.approx(1.0)
    assert channel.uplink_time(100) == pytest.approx(1.0)


def test_server_channel_fcfs_queueing():
    env = Environment()
    channel = ServerChannel(env, downlink_bps=8000.0, uplink_bps=8000.0)
    done = []

    def sender(tag):
        yield from channel.send_downlink(1000)  # 1 s each
        done.append((tag, env.now))

    for tag in range(3):
        env.process(sender(tag))
    env.run()
    assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]
    assert channel.bytes_down == 3000


def test_server_channel_up_and_down_independent():
    env = Environment()
    channel = ServerChannel(env, downlink_bps=8000.0, uplink_bps=8000.0)
    log = []

    def up():
        yield from channel.send_uplink(1000)
        log.append(("up", env.now))

    def down():
        yield from channel.send_downlink(1000)
        log.append(("down", env.now))

    env.process(up())
    env.process(down())
    env.run()
    assert sorted(log) == [("down", 1.0), ("up", 1.0)]


def test_server_channel_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        ServerChannel(Environment(), 0, 100)


def test_server_channel_request_counters_and_queue_wait():
    env = Environment()
    channel = ServerChannel(env, downlink_bps=8000.0, uplink_bps=8000.0)

    def sender():
        yield from channel.send_downlink(1000)  # 1 s each

    for _ in range(3):
        env.process(sender())
    env.run()
    # Three back-to-back 1 s holds: the queue waits are 0, 1 and 2 s.
    assert channel.downlink_requests == 3
    assert channel.uplink_requests == 0
    assert channel.downlink_wait == pytest.approx(3.0)
    assert channel.downlink_mean_wait == pytest.approx(1.0)
    assert channel.uplink_mean_wait == 0.0  # no requests -> no division
    assert channel.downlink_drops == 0 and channel.uplink_drops == 0


def test_server_channel_injected_loss_counts_drops():
    from repro.net.faults import FaultInjector, FaultPlan, LinkFaults
    from repro.sim.random import RandomStreams

    env = Environment()
    injector = FaultInjector(
        FaultPlan(uplink=LinkFaults(loss=1.0)), RandomStreams(1), n_hosts=4
    )
    channel = ServerChannel(
        env, downlink_bps=8000.0, uplink_bps=8000.0, faults=injector
    )
    outcomes = []

    def up():
        sent = yield from channel.send_uplink(1000)
        outcomes.append(sent)

    def down():
        received = yield from channel.send_downlink(1000)
        outcomes.append(received)

    env.process(up())
    env.process(down())
    env.run()
    # The uplink message occupied the link, then was lost; the fault-free
    # downlink delivered.
    assert sorted(outcomes) == [False, True]
    assert channel.uplink_drops == 1 and channel.downlink_drops == 0
    assert channel.bytes_up == 1000  # the transmission still happened
    assert env.now == pytest.approx(1.0)


# -- p2p fixtures ---------------------------------------------------------------


def make_net(points, bandwidth=8000.0, tran_range=50.0):
    env = Environment()
    field = MobilityField([StationaryTrajectory(p) for p in points])
    ledger = PowerLedger(len(points))
    net = P2PNetwork(env, field, bandwidth, tran_range, ledger, PowerModel())
    return env, net, ledger


LINE = [(0.0, 0.0), (40.0, 0.0), (80.0, 0.0), (500.0, 0.0)]


def test_broadcast_reaches_in_range_only():
    env, net, _ = make_net(LINE)
    received = []
    for node in range(4):
        net.register_handler(node, lambda m, n=node: received.append(n))

    def proc():
        msg = Message(MessageKind.REQUEST, 0, None, 100)
        receivers = yield from net.broadcast(0, msg)
        assert receivers == [1]

    env.process(proc())
    env.run()
    assert received == [1]


def test_broadcast_air_time_advances_clock():
    env, net, _ = make_net(LINE, bandwidth=8000.0)
    times = []

    def proc():
        yield from net.broadcast(0, Message(MessageKind.REQUEST, 0, None, 1000))
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [pytest.approx(1.0)]  # 1000 B * 8 / 8000 bps


def test_broadcast_power_accounting():
    env, net, ledger = make_net(LINE)
    size = 100

    def proc():
        yield from net.broadcast(0, Message(MessageKind.REQUEST, 0, None, size))

    env.process(proc())
    env.run()
    model = net.model
    assert ledger.host_total(0) == pytest.approx(model.bc_send(size))
    assert ledger.host_total(1) == pytest.approx(model.bc_recv(size))
    assert ledger.host_total(2) == 0.0  # out of range
    assert ledger.host_total(3) == 0.0


def test_broadcast_skips_disconnected_receiver():
    env, net, _ = make_net(LINE)
    received = []
    net.register_handler(1, lambda m: received.append(1))
    net.set_connected(1, False)

    def proc():
        receivers = yield from net.broadcast(0, Message(MessageKind.REQUEST, 0, None, 64))
        assert receivers == []

    env.process(proc())
    env.run()
    assert received == []


def test_broadcast_by_disconnected_sender_is_noop():
    env, net, ledger = make_net(LINE)
    net.set_connected(0, False)

    def proc():
        receivers = yield from net.broadcast(0, Message(MessageKind.REQUEST, 0, None, 64))
        assert receivers == []

    env.process(proc())
    env.run()
    assert ledger.total() == 0.0


def test_unicast_delivery_and_power():
    # Geometry: 0-1 in range; 2 in range of both 0 and 1; 3 far away.
    points = [(0.0, 0.0), (30.0, 0.0), (15.0, 20.0), (500.0, 0.0)]
    env, net, ledger = make_net(points, tran_range=50.0)
    received = []
    net.register_handler(1, lambda m: received.append(m.uid))
    size = 200

    def proc():
        ok = yield from net.unicast(0, 1, Message(MessageKind.DATA, 0, 1, size))
        assert ok

    env.process(proc())
    env.run()
    model = net.model
    assert len(received) == 1
    assert ledger.host_total(0) == pytest.approx(model.ptp_send(size))
    assert ledger.host_total(1) == pytest.approx(model.ptp_recv(size))
    assert ledger.host_total(2) == pytest.approx(model.ptp_discard_sd(size))
    assert ledger.host_total(3) == 0.0


def test_unicast_discard_source_only_and_dest_only():
    # 0 -> 1 at distance 40.  Node 2 near 0 only; node 3 near 1 only.
    points = [(0.0, 0.0), (40.0, 0.0), (-30.0, 0.0), (70.0, 0.0)]
    env, net, ledger = make_net(points, tran_range=45.0)

    def proc():
        yield from net.unicast(0, 1, Message(MessageKind.DATA, 0, 1, 100))

    env.process(proc())
    env.run()
    model = net.model
    assert ledger.host_total(2) == pytest.approx(model.ptp_discard_s(100))
    assert ledger.host_total(3) == pytest.approx(model.ptp_discard_d(100))


def test_unicast_out_of_range_fails_but_costs_sender():
    env, net, ledger = make_net(LINE)

    def proc():
        ok = yield from net.unicast(0, 3, Message(MessageKind.DATA, 0, 3, 100))
        assert not ok

    env.process(proc())
    env.run()
    assert net.failed_unicasts == 1
    assert ledger.host_total(0) > 0


def test_unicast_to_self_rejected():
    env, net, _ = make_net(LINE)

    def proc():
        yield from net.unicast(0, 0, Message(MessageKind.DATA, 0, 0, 10))

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_medium_contention_serialises_nearby_senders():
    # Nodes 0 and 1 are in range: 1 hears 0's transmission and must defer.
    points = [(0.0, 0.0), (30.0, 0.0), (60.0, 0.0)]
    env, net, _ = make_net(points, bandwidth=8000.0, tran_range=50.0)
    ends = {}

    def sender(node, dst):
        yield from net.unicast(node, dst, Message(MessageKind.DATA, node, dst, 1000))
        ends[node] = env.now

    env.process(sender(0, 1))
    env.process(sender(1, 2))
    env.run()
    assert ends[0] == pytest.approx(1.0)
    assert ends[1] == pytest.approx(2.0)  # deferred behind 0's transmission


def test_far_senders_transmit_concurrently():
    points = [(0.0, 0.0), (30.0, 0.0), (1000.0, 0.0), (1030.0, 0.0)]
    env, net, _ = make_net(points, bandwidth=8000.0, tran_range=50.0)
    ends = {}

    def sender(node, dst):
        yield from net.unicast(node, dst, Message(MessageKind.DATA, node, dst, 1000))
        ends[node] = env.now

    env.process(sender(0, 1))
    env.process(sender(2, 3))
    env.run()
    assert ends[0] == pytest.approx(1.0)
    assert ends[2] == pytest.approx(1.0)


def test_unicast_route_multi_hop():
    points = [(0.0, 0.0), (40.0, 0.0), (80.0, 0.0)]
    env, net, _ = make_net(points, tran_range=50.0)
    delivered = []
    net.register_handler(1, lambda m: delivered.append(("relay", m.uid)))
    net.register_handler(2, lambda m: delivered.append(("final", m.uid)))

    def proc():
        ok = yield from net.unicast_route(
            [0, 1, 2], Message(MessageKind.DATA, 0, 2, 100)
        )
        assert ok

    env.process(proc())
    env.run()
    # Only the final destination's handler fires; the relay is transparent.
    assert [tag for tag, _ in delivered] == ["final"]


def test_unicast_route_fails_when_hop_breaks():
    points = [(0.0, 0.0), (40.0, 0.0), (500.0, 0.0)]
    env, net, _ = make_net(points, tran_range=50.0)

    def proc():
        ok = yield from net.unicast_route(
            [0, 1, 2], Message(MessageKind.DATA, 0, 2, 100)
        )
        assert not ok

    env.process(proc())
    env.run()


def test_unicast_route_validates_path():
    env, net, _ = make_net(LINE)
    with pytest.raises(ValueError):
        list(net.unicast_route([0], Message(MessageKind.DATA, 0, 0, 10)))


def test_reachable_bfs():
    points = [(0.0, 0.0), (40.0, 0.0), (80.0, 0.0), (500.0, 0.0)]
    env, net, _ = make_net(points, tran_range=50.0)
    assert net.reachable(0, 0, 0)
    assert net.reachable(0, 1, 1)
    assert not net.reachable(0, 2, 1)
    assert net.reachable(0, 2, 2)
    assert not net.reachable(0, 3, 5)
    net.set_connected(1, False)
    assert not net.reachable(0, 2, 2)  # relay offline


def test_network_validates_parameters():
    env = Environment()
    field = MobilityField([StationaryTrajectory((0, 0))])
    ledger = PowerLedger(1)
    with pytest.raises(ValueError):
        P2PNetwork(env, field, 0, 50.0, ledger)
    with pytest.raises(ValueError):
        P2PNetwork(env, field, 100.0, 0, ledger)
