"""Every GroCoCa mechanism must actually engage during a normal run.

These tests guard against silent dead code: a refactor that accidentally
stops exercising admission control, cooperative replacement, signature
compression or the piggyback path would still pass shape tests (the
simulation would quietly degenerate toward COCA), so we assert on the
mechanism counters directly.
"""

from repro import CachingScheme, SimulationConfig
from repro.core.simulation import Simulation


def run_gc(**overrides):
    settings = dict(
        scheme=CachingScheme.GC,
        n_clients=15,
        n_data=1000,
        access_range=120,
        cache_size=20,
        group_size=5,
        measure_requests=40,
        warmup_min_time=150.0,
        warmup_max_time=250.0,
        ndp_enabled=False,
        seed=41,
    )
    settings.update(overrides)
    sim = Simulation(SimulationConfig(**settings))
    sim.run()
    return sim


def test_admission_control_engages():
    sim = run_gc()
    rejections = sum(client.admission.rejected for client in sim.clients)
    admissions = sum(client.admission.admitted for client in sim.clients)
    assert rejections > 0  # full caches refused TCG-supplied items
    assert admissions > 0


def test_cooperative_replacement_engages():
    sim = run_gc()
    replica = sum(client.replacement.replica_evictions for client in sim.clients)
    lru = sum(client.replacement.lru_evictions for client in sim.clients)
    assert replica > 0  # likely-replicas were evicted preferentially
    assert replica + lru > 0


def test_singlet_ttl_drops_occur_with_small_delay():
    sim = run_gc(replace_delay=1)
    drops = sum(client.replacement.singlet_drops for client in sim.clients)
    assert drops > 0


def test_signature_compression_engages():
    sim = run_gc()
    compressed = sum(
        client.signatures.signatures_sent_compressed for client in sim.clients
    )
    assert compressed > 0
    # sigma=10,000 with 20-item caches: compression always wins.
    raw = sum(client.signatures.signatures_sent_raw for client in sim.clients)
    assert raw == 0


def test_peer_vector_width_adapts():
    sim = run_gc()
    expansions = sum(client.signatures.peer.expansions for client in sim.clients)
    assert expansions > 0  # overlapping member signatures pushed pi_p past 1


def test_filter_both_passes_and_bypasses():
    sim = run_gc()
    results = sim.metrics.results(sim.env.now, sim.ledger)
    assert results.peer_searches > 0
    assert results.bypassed_searches > 0


def test_own_signature_rebuilds_are_rare():
    """Counting-bloom bookkeeping should almost never hit the rebuild path
    (it only triggers on counter saturation anomalies)."""
    sim = run_gc()
    rebuilds = sum(client.signatures.own.rebuilds for client in sim.clients)
    insertions = sum(client.cache.insertions for client in sim.clients)
    assert rebuilds <= insertions * 0.01 + 1
