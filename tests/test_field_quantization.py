"""The snapshot-quantisation error bound used by the simulator.

DESIGN.md claims that quantising snapshot times to ``resolution`` bounds
the position error by ``v_max * resolution``; these tests hold the code to
that claim.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import MobilityField, RandomWaypointTrajectory, Rectangle

AREA = Rectangle(500.0, 500.0)
V_MAX = 5.0
RESOLUTION = 0.1


def build_fields(seed, n=5):
    rng_a = np.random.default_rng(seed)
    exact = MobilityField(
        [RandomWaypointTrajectory(rng_a, AREA, 1.0, V_MAX) for _ in range(n)],
        resolution=0.0,
    )
    rng_b = np.random.default_rng(seed)  # identical trajectories
    quantised = MobilityField(
        [RandomWaypointTrajectory(rng_b, AREA, 1.0, V_MAX) for _ in range(n)],
        resolution=RESOLUTION,
    )
    return exact, quantised


@given(st.floats(min_value=0.0, max_value=500.0), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_quantised_positions_within_speed_bound(t, seed):
    exact, quantised = build_fields(seed)
    error = np.linalg.norm(exact.positions(t) - quantised.positions(t), axis=1)
    assert (error <= V_MAX * RESOLUTION + 1e-9).all()


def test_quantisation_bucket_shares_snapshot():
    _, quantised = build_fields(3)
    a = quantised.positions(10.01)
    b = quantised.positions(10.09)
    assert a is b  # same 0.1 s bucket
    c = quantised.positions(10.11)
    assert c is not a


def test_zero_resolution_is_exact():
    exact, _ = build_fields(4)
    a = exact.positions(1.23456)
    b = exact.positions(1.23457)
    assert a is not b


def test_negative_resolution_rejected():
    import pytest

    with pytest.raises(ValueError):
        MobilityField(
            [RandomWaypointTrajectory(np.random.default_rng(0), AREA, 1.0, 2.0)],
            resolution=-1.0,
        )
