"""The snapshot-quantisation error bound used by the simulator.

DESIGN.md claims that quantising snapshot times to ``resolution`` bounds
the position error by ``v_max * resolution``; these tests hold the code to
that claim.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import MobilityField, RandomWaypointTrajectory, Rectangle

AREA = Rectangle(500.0, 500.0)
V_MAX = 5.0
RESOLUTION = 0.1


def build_fields(seed, n=5):
    # Each trajectory gets its own seeded generator: segments are generated
    # lazily up to the queried time, so a generator *shared* across the
    # population would interleave differently in the two fields whenever a
    # segment boundary falls inside the quantisation gap, desynchronising
    # every later trajectory.
    def trajectories():
        streams = np.random.default_rng(seed).integers(0, 2**32, size=n)
        return [
            RandomWaypointTrajectory(
                np.random.default_rng(stream), AREA, 1.0, V_MAX
            )
            for stream in streams
        ]

    exact = MobilityField(trajectories(), resolution=0.0)
    quantised = MobilityField(trajectories(), resolution=RESOLUTION)
    return exact, quantised


@given(st.floats(min_value=0.0, max_value=500.0), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_quantised_positions_within_speed_bound(t, seed):
    exact, quantised = build_fields(seed)
    error = np.linalg.norm(exact.positions(t) - quantised.positions(t), axis=1)
    assert (error <= V_MAX * RESOLUTION + 1e-9).all()


def test_quantisation_bucket_shares_snapshot():
    _, quantised = build_fields(3)
    a = quantised.positions(10.01)
    refreshes = quantised.snapshot_refreshes
    reuses = quantised.snapshot_reuses
    b = quantised.positions(10.09)
    assert a is b  # same 0.1 s bucket: cached, no refresh
    assert quantised.snapshot_refreshes == refreshes
    assert quantised.snapshot_reuses == reuses + 1
    values_before = a.copy()
    quantised.positions(10.11)
    # Next bucket: the preallocated buffer is refilled in place.
    assert quantised.snapshot_refreshes == refreshes + 1
    assert (quantised.positions(10.11) != values_before).any()


def test_zero_resolution_is_exact():
    exact, _ = build_fields(4)
    exact.positions(1.23456)
    refreshes = exact.snapshot_refreshes
    exact.positions(1.23457)
    assert exact.snapshot_refreshes == refreshes + 1  # every instant is fresh


def test_negative_resolution_rejected():
    import pytest

    with pytest.raises(ValueError):
        MobilityField(
            [RandomWaypointTrajectory(np.random.default_rng(0), AREA, 1.0, 2.0)],
            resolution=-1.0,
        )
