"""Tests for the multi-disk broadcast schedule."""

import numpy as np
import pytest

from repro.delivery import BroadcastSchedule, MultiDiskSchedule


def two_disk(
    hot=(0, 1), cold=(2, 3, 4, 5), freqs=(2, 1), item_bytes=1000, bw=8000.0, m=4
):
    # item_time = 1 s, index_time = 0.25 s.
    return MultiDiskSchedule([list(hot), list(cold)], list(freqs), item_bytes, 250, bw, m)


def test_slot_sequence_interleaves_disks():
    schedule = two_disk()
    # L = 2 minor cycles; hot disk chunk = all of (0,1) each cycle; cold
    # disk split into 2 chunks (2,3) and (4,5).
    assert schedule.slots == [0, 1, 2, 3, 0, 1, 4, 5]


def test_hot_items_broadcast_more_often():
    schedule = two_disk()
    assert schedule.broadcasts_per_cycle(0) == 2
    assert schedule.broadcasts_per_cycle(3) == 1


def test_cycle_time_and_segments():
    schedule = two_disk()
    # 8 data slots, index every 4 -> 2 segments of 0.25 + 4 s.
    assert schedule.segments == 2
    assert schedule.segment_time == pytest.approx(4.25)
    assert schedule.cycle_time == pytest.approx(8.5)


def test_tune_finds_earliest_occurrence():
    schedule = two_disk()
    # Tune at t=0: index ends 0.25; item 0's first slot begins at 0.25.
    outcome = schedule.tune(0, 0.0)
    assert outcome.latency == pytest.approx(1.25)
    # Item 4 is in the second segment: slot starts at 4.25+0.25+2 = 6.5.
    outcome4 = schedule.tune(4, 0.0)
    assert outcome4.latency == pytest.approx(7.5)


def test_tune_mid_cycle_catches_second_occurrence():
    schedule = two_disk()
    # At t=2.0 the next index ends at 4.5; item 0's next slot is the
    # second-segment occurrence at 4.5 -> received 5.5.
    outcome = schedule.tune(0, 2.0)
    assert outcome.latency == pytest.approx(3.5)


def test_tune_wraps_to_next_cycle():
    schedule = two_disk()
    # At t=6.0, index ends 8.75 (next cycle); item 2's slot at 8.75+1... it
    # is the third data slot of cycle 2: starts 8.5+0.25+2 = 10.75.
    outcome = schedule.tune(2, 6.0)
    assert outcome.latency == pytest.approx(10.75 + 1.0 - 6.0)


def test_unknown_item_rejected():
    schedule = two_disk()
    with pytest.raises(KeyError):
        schedule.tune(99, 0.0)


def test_validation():
    with pytest.raises(ValueError):
        MultiDiskSchedule([], [], 10, 10, 100.0, 1)
    with pytest.raises(ValueError):
        MultiDiskSchedule([[1]], [0], 10, 10, 100.0, 1)
    with pytest.raises(ValueError):
        MultiDiskSchedule([[1], []], [1, 1], 10, 10, 100.0, 1)
    with pytest.raises(ValueError):
        MultiDiskSchedule([[1], [1]], [1, 1], 10, 10, 100.0, 1)  # duplicate
    with pytest.raises(ValueError):
        MultiDiskSchedule([[1]], [1], 0, 10, 100.0, 1)


def test_hot_latency_beats_cold_latency_statistically():
    hot = list(range(10))
    cold = list(range(10, 100))
    schedule = MultiDiskSchedule([hot, cold], [4, 1], 1000, 250, 8000.0, 10)
    rng = np.random.default_rng(0)
    times = rng.uniform(0, 4 * schedule.cycle_time, size=300)
    hot_latency = np.mean([schedule.tune(0, t).latency for t in times])
    cold_latency = np.mean([schedule.tune(50, t).latency for t in times])
    assert hot_latency < cold_latency / 2


def test_multidisk_beats_flat_disk_on_skewed_workload():
    """The broadcast-disks payoff: mean latency under Zipf accesses."""
    n_items, m = 60, 10
    hot, cold = list(range(12)), list(range(12, n_items))
    multi = MultiDiskSchedule([hot, cold], [4, 1], 1000, 250, 8000.0, m)
    flat = BroadcastSchedule(n_items, 1000, 250, 8000.0, m)
    rng = np.random.default_rng(1)
    # Skewed accesses: 80% of requests go to the hot set.
    items = np.where(
        rng.random(400) < 0.8,
        rng.integers(0, 12, size=400),
        rng.integers(12, n_items, size=400),
    )
    times = rng.uniform(0, 10 * flat.cycle_time, size=400)
    multi_mean = np.mean(
        [multi.tune(int(i), float(t)).latency for i, t in zip(items, times)]
    )
    flat_mean = np.mean(
        [flat.tune(int(i), float(t)).latency for i, t in zip(items, times)]
    )
    assert multi_mean < flat_mean


def test_tune_outcome_times_consistent():
    schedule = two_disk()
    rng = np.random.default_rng(2)
    for _ in range(100):
        item = int(rng.integers(0, 6))
        t = float(rng.uniform(0, 30))
        outcome = schedule.tune(item, t)
        assert outcome.active_time + outcome.doze_time == pytest.approx(
            outcome.latency
        )
        assert outcome.latency > 0
