"""The failure-aware retrieve layer: EWMA, breaker, policies, tracker.

The circuit breaker's contract is exercised two ways: directed unit
tests for each documented transition, and a Hypothesis rule-based state
machine driving arbitrary interleavings of attempts, successes, failures
and clock advances against a reference model of the closed/open/half-open
automaton.
"""

import math

import pytest
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.net.health import (
    BREAKER_STATES,
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    CircuitBreaker,
    Ewma,
    PeerHealthTracker,
    SCORING_POLICIES,
)
from repro.sim.random import RandomStreams


def reply(peer, path=None):
    return {"peer": peer, "path": path if path is not None else [0, peer]}


def tracker(policy="arrival", threshold=0, cooldown=1.0, rng=None, alpha=0.3):
    return PeerHealthTracker(
        alpha=alpha,
        breaker_threshold=threshold,
        breaker_cooldown=cooldown,
        policy=policy,
        rng=rng,
    )


# -- Ewma ---------------------------------------------------------------------


def test_ewma_none_until_first_observation():
    ewma = Ewma(0.5)
    assert ewma.value is None
    ewma.observe(4.0)
    assert ewma.value == 4.0
    ewma.observe(8.0)
    assert ewma.value == pytest.approx(6.0)


def test_ewma_rejects_bad_alpha():
    with pytest.raises(ValueError):
        Ewma(0.0)
    with pytest.raises(ValueError):
        Ewma(1.5)


# -- CircuitBreaker: directed transitions -------------------------------------


def test_breaker_trips_after_consecutive_failures():
    breaker = CircuitBreaker(threshold=3, cooldown=2.0)
    assert breaker.record_failure(0.0) == []
    assert breaker.record_failure(1.0) == []
    assert breaker.record_failure(2.0) == [(CLOSED, OPEN)]
    assert breaker.state == OPEN
    assert breaker.trips == 1
    assert not breaker.can_attempt(3.0)
    assert breaker.can_attempt(4.0)  # cooldown elapsed


def test_breaker_success_resets_the_failure_streak():
    breaker = CircuitBreaker(threshold=2, cooldown=1.0)
    breaker.record_failure(0.0)
    breaker.record_success(0.5)
    assert breaker.record_failure(1.0) == []  # streak restarted
    assert breaker.state == CLOSED


def test_breaker_probe_success_closes():
    breaker = CircuitBreaker(threshold=1, cooldown=1.0)
    breaker.record_failure(0.0)
    assert breaker.begin_attempt(1.5) == [(OPEN, HALF_OPEN)]
    assert breaker.probe_in_flight
    assert not breaker.can_attempt(1.6)  # one probe at a time
    assert breaker.record_success(2.0) == [(HALF_OPEN, CLOSED)]
    assert breaker.state == CLOSED


def test_breaker_probe_failure_reopens():
    breaker = CircuitBreaker(threshold=1, cooldown=1.0)
    breaker.record_failure(0.0)
    breaker.begin_attempt(1.5)
    assert breaker.record_failure(2.0) == [(HALF_OPEN, OPEN)]
    assert breaker.trips == 2
    assert not breaker.can_attempt(2.5)  # fresh cooldown from the re-trip
    assert breaker.can_attempt(3.1)


def test_breaker_ignores_stale_outcomes_while_open():
    breaker = CircuitBreaker(threshold=1, cooldown=10.0)
    breaker.record_failure(0.0)
    assert breaker.record_success(1.0) == []  # pre-trip attempt resolving late
    assert breaker.record_failure(1.0) == []
    assert breaker.state == OPEN


def test_breaker_begin_attempt_guards_against_misuse():
    breaker = CircuitBreaker(threshold=1, cooldown=10.0)
    breaker.record_failure(0.0)
    with pytest.raises(RuntimeError):
        breaker.begin_attempt(1.0)


# -- CircuitBreaker: Hypothesis state machine ---------------------------------


class BreakerMachine(RuleBasedStateMachine):
    """Arbitrary interleavings never violate the breaker contract."""

    def __init__(self):
        super().__init__()
        self.breaker = CircuitBreaker(threshold=2, cooldown=5.0)
        self.now = 0.0
        self.transitions = []

    @rule(delta=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def advance_clock(self, delta):
        self.now += delta

    @precondition(lambda self: self.breaker.can_attempt(self.now))
    @rule()
    def attempt(self):
        self.transitions.extend(self.breaker.begin_attempt(self.now))

    @rule()
    def succeed(self):
        self.transitions.extend(self.breaker.record_success(self.now))

    @rule()
    def fail(self):
        self.transitions.extend(self.breaker.record_failure(self.now))

    @invariant()
    def state_is_legal(self):
        assert self.breaker.state in BREAKER_STATES

    @invariant()
    def transitions_are_legal_and_chain(self):
        previous = CLOSED
        for old, new in self.transitions:
            assert (old, new) in LEGAL_TRANSITIONS
            assert old == previous
            previous = new
        assert previous == self.breaker.state

    @invariant()
    def open_means_no_attempt_during_cooldown(self):
        if self.breaker.state == OPEN:
            before_cooldown = self.breaker.opened_at + self.breaker.cooldown
            assert not self.breaker.can_attempt(
                min(self.now, before_cooldown - 1e-9)
            )

    @invariant()
    def probe_exclusivity(self):
        if self.breaker.probe_in_flight:
            assert self.breaker.state == HALF_OPEN
            assert not self.breaker.can_attempt(self.now)

    @invariant()
    def counters_consistent(self):
        trips = sum(1 for _old, new in self.transitions if new == OPEN)
        # The very first trip happens without a begin_attempt transition
        # (CLOSED -> OPEN), so trips recorded by the breaker must match
        # the OPEN-entering transitions it returned.
        assert self.breaker.trips == trips
        assert self.breaker.consecutive_failures < self.breaker.threshold


TestBreakerStateMachine = BreakerMachine.TestCase


# -- scoring policies ---------------------------------------------------------


def test_arrival_policy_matches_legacy_first_reply():
    t = tracker("arrival")
    replies = [reply(3), reply(1), reply(2)]
    assert t.select(replies, 0.0) is replies[0]


def test_least_pending_prefers_idle_peer_then_arrival_order():
    t = tracker("least-pending")
    t.begin_attempt(3, 0.0)  # peer 3 now has one outstanding retrieve
    replies = [reply(3), reply(1), reply(2)]
    assert t.select(replies, 0.0) is replies[1]
    # All equal: falls back to arrival order.
    t2 = tracker("least-pending")
    assert t2.select(replies, 0.0) is replies[0]


def test_latency_aware_prefers_fast_peer_and_explores_unknown():
    t = tracker("latency-aware")
    t.begin_attempt(1, 0.0)
    t.record_success(1, 1.0, latency=1.0, hops=1)
    t.begin_attempt(2, 1.0)
    t.record_success(2, 1.1, latency=0.1, hops=1)
    assert t.select([reply(1), reply(2)], 2.0) is not None
    assert t.select([reply(1), reply(2)], 2.0)["peer"] == 2
    # An unknown peer scores 0 and is explored before any known one.
    assert t.select([reply(1), reply(9)], 2.0)["peer"] == 9


def test_power_aware_prefers_short_paths():
    t = tracker("power-aware")
    far = reply(1, path=[0, 5, 1])  # two hops
    near = reply(2, path=[0, 2])  # one hop
    assert t.select([far, near], 0.0) is near


def test_epsilon_greedy_needs_a_stream_and_is_deterministic():
    t = tracker("epsilon-greedy")
    with pytest.raises(RuntimeError):
        t.select([reply(1), reply(2)], 0.0)
    picks = []
    for _ in range(2):
        rng = RandomStreams(7).stream("peer-policy")
        t = tracker("epsilon-greedy", rng=rng)
        picks.append(
            [t.select([reply(1), reply(2)], 0.0)["peer"] for _ in range(20)]
        )
    assert picks[0] == picks[1]  # same seed, same exploration sequence


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown scoring policy"):
        tracker("fastest-first")
    assert "arrival" in SCORING_POLICIES


# -- tracker lifecycle --------------------------------------------------------


def test_select_skips_circuit_broken_peers_and_reports_exhaustion():
    t = tracker("arrival", threshold=1, cooldown=100.0)
    t.begin_attempt(1, 0.0)
    t.record_failure(1, 0.0)  # trips peer 1 open
    assert t.counts["breaker_trips"] == 1
    replies = [reply(1), reply(2)]
    assert t.select(replies, 1.0)["peer"] == 2
    t.begin_attempt(2, 1.0)
    t.record_failure(2, 1.0)
    assert t.select(replies, 2.0) is None  # everyone broken -> MSS fallback


def test_probe_attempt_counts_and_pending_balances():
    t = tracker("arrival", threshold=1, cooldown=1.0)
    t.begin_attempt(1, 0.0)
    t.record_failure(1, 0.0)
    state, transitions = t.begin_attempt(1, 2.0)
    assert state == "half-open"
    assert transitions == [(OPEN, HALF_OPEN)]
    assert t.counts["breaker_probes"] == 1
    t.record_success(1, 2.5, latency=0.5, hops=1)
    assert t.peer(1).pending == 0
    assert t.peer(1).breaker.state == CLOSED


def test_note_abandoned_releases_slot_without_penalty():
    t = tracker("arrival")
    t.begin_attempt(1, 0.0)
    t.note_abandoned(1)
    assert t.peer(1).pending == 0
    assert t.peer(1).failure_rate.value is None


def test_hedge_delay_requires_an_estimate():
    t = tracker("arrival")
    assert t.hedge_delay(1, 0.9) is None  # never hedge blind
    t.begin_attempt(1, 0.0)
    t.record_success(1, 1.0, latency=2.0, hops=1)
    delay = t.hedge_delay(1, 0.9)
    assert delay == pytest.approx(2.0 * -math.log(0.1))


def test_counters_snapshot():
    t = tracker("arrival")
    t.note("hedges")
    t.note("hedge_wins")
    snapshot = t.counters()
    assert snapshot["hedges"] == 1
    snapshot["hedges"] = 99
    assert t.counts["hedges"] == 1  # counters() returns a copy
