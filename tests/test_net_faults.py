"""Unit tests of the fault-injection layer (repro.net.faults)."""

import numpy as np
import pytest

from repro.net.faults import (
    CrashFaults,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    LinkInjector,
)
from repro.sim.random import RandomStreams


# -- plan validation ----------------------------------------------------------


@pytest.mark.parametrize(
    "overrides",
    [
        {"loss": -0.1},
        {"loss": 1.5},
        {"burst_loss": 2.0},
        {"burst_on": -1.0},
        {"burst_off": 1.01},
    ],
)
def test_link_faults_validation(overrides):
    with pytest.raises(ValueError):
        LinkFaults(**overrides)


@pytest.mark.parametrize(
    "overrides",
    [
        {"rate": -0.1},
        {"down_min": 0.0},
        {"down_min": 10.0, "down_max": 5.0},
    ],
)
def test_crash_faults_validation(overrides):
    with pytest.raises(ValueError):
        CrashFaults(**overrides)


def test_enabled_flags():
    assert not LinkFaults().enabled
    assert LinkFaults(loss=0.1).enabled
    assert LinkFaults(burst_loss=0.5, burst_on=0.1).enabled
    # A bursty component needs both the chain and the extra loss.
    assert not LinkFaults(burst_on=0.1).enabled
    assert not LinkFaults(burst_loss=0.5).enabled
    assert not CrashFaults().enabled
    assert CrashFaults(rate=0.01).enabled
    assert not FaultPlan().enabled
    assert FaultPlan(uplink=LinkFaults(loss=0.2)).enabled
    assert FaultPlan(crash=CrashFaults(rate=0.01)).enabled


# -- link injector ------------------------------------------------------------


def test_disabled_injector_never_draws():
    rng = np.random.default_rng(0)
    state_before = rng.bit_generator.state
    injector = LinkInjector(LinkFaults(), rng)
    assert not any(injector.drop() for _ in range(100))
    assert injector.checks == 0 and injector.drops == 0
    assert rng.bit_generator.state == state_before


def test_total_loss_drops_everything():
    injector = LinkInjector(LinkFaults(loss=1.0), np.random.default_rng(0))
    assert all(injector.drop() for _ in range(50))
    assert injector.drops == injector.checks == 50


def test_iid_loss_rate_converges():
    injector = LinkInjector(LinkFaults(loss=0.3), np.random.default_rng(1))
    trials = 20_000
    drops = sum(injector.drop() for _ in range(trials))
    assert drops / trials == pytest.approx(0.3, abs=0.02)


def test_bursty_chain_adds_loss_only_in_bad_state():
    # burst_on=1 forces the chain bad on the first advance; burst_off=0
    # keeps it there; with loss=0 every drop comes from the burst.
    faults = LinkFaults(loss=0.0, burst_loss=1.0, burst_on=1.0, burst_off=0.0)
    injector = LinkInjector(faults, np.random.default_rng(2))
    assert all(injector.drop() for _ in range(20))


def test_bursty_chains_are_per_state():
    faults = LinkFaults(loss=0.0, burst_loss=1.0, burst_on=0.5, burst_off=0.0)
    injector = LinkInjector(faults, np.random.default_rng(3), n_states=64)
    outcomes = {state: injector.drop(state) for state in range(64)}
    # With P(bad)=0.5 per chain, both fates must appear across 64 receivers.
    assert any(outcomes.values()) and not all(outcomes.values())
    # A chain stuck bad (burst_off=0) keeps dropping for its receiver.
    stuck = next(state for state, dropped in outcomes.items() if dropped)
    assert all(injector.drop(stuck) for _ in range(10))


def test_loss_sequence_is_reproducible():
    def sequence():
        injector = LinkInjector(
            LinkFaults(loss=0.2, burst_loss=0.5, burst_on=0.1),
            np.random.default_rng(42),
        )
        return [injector.drop() for _ in range(200)]

    assert sequence() == sequence()


# -- full injector ------------------------------------------------------------


def make_injector(plan, seed=7, n_hosts=8):
    return FaultInjector(plan, RandomStreams(seed), n_hosts)


def test_injector_validates_hosts():
    with pytest.raises(ValueError):
        make_injector(FaultPlan(), n_hosts=0)


def test_injector_counters_keys():
    injector = make_injector(FaultPlan(p2p=LinkFaults(loss=1.0)))
    injector.drop_p2p(0)
    injector.drop_p2p(1)
    injector.drop_uplink()
    counters = injector.counters()
    assert counters == {
        "fault_p2p_drops": 2,
        "fault_uplink_drops": 0,
        "fault_downlink_drops": 0,
        "fault_crashes": 0,
    }


def test_injector_components_use_independent_streams():
    plan = FaultPlan(
        p2p=LinkFaults(loss=0.5),
        uplink=LinkFaults(loss=0.5),
        crash=CrashFaults(rate=0.01),
    )
    # Draining one component must not perturb another: the uplink sequence
    # is the same whether or not p2p/crash draws happen in between.
    lonely = make_injector(plan)
    uplink_alone = [lonely.drop_uplink() for _ in range(100)]
    busy = make_injector(plan)
    uplink_mixed = []
    for _ in range(100):
        busy.drop_p2p(3)
        busy.next_crash_delay()
        uplink_mixed.append(busy.drop_uplink())
    assert uplink_alone == uplink_mixed


def test_crash_process_sampling():
    plan = FaultPlan(crash=CrashFaults(rate=0.02, down_min=4.0, down_max=9.0))
    injector = make_injector(plan, n_hosts=10)
    delays = [injector.next_crash_delay() for _ in range(200)]
    assert all(d > 0 for d in delays)
    # Aggregate rate = 0.02 * 10 hosts -> mean inter-crash time of 5 s.
    assert np.mean(delays) == pytest.approx(5.0, rel=0.25)
    victims = {injector.crash_victim() for _ in range(200)}
    assert victims <= set(range(10)) and len(victims) > 5
    durations = [injector.outage_duration() for _ in range(200)]
    assert all(4.0 <= d <= 9.0 for d in durations)
