"""Edge-case tests for client internals: history reporting, signature
recollection batching, OutstandSigList triggers and warm-up mechanics."""


from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import Simulation

from tests.test_core_client_protocol import NEAR, World


def test_take_history_portion_respects_rho():
    world = World(NEAR, scheme=CachingScheme.GC, explicit_update_portion=0.5)
    client = world.clients[0]
    client._peer_history = list(range(10))
    report = client._take_history_portion()
    assert len(report) == 5
    assert set(report) <= set(range(10))
    assert client._peer_history == []  # history cleared after reporting


def test_take_history_portion_empty():
    world = World(NEAR, scheme=CachingScheme.GC)
    assert world.clients[0]._take_history_portion() == []


def test_take_history_portion_zero_rho_reports_nothing():
    world = World(NEAR, scheme=CachingScheme.GC, explicit_update_portion=0.0)
    client = world.clients[0]
    client._peer_history = [1, 2, 3]
    assert client._take_history_portion() == []
    assert client._peer_history == []


def test_take_history_portion_reports_at_least_one():
    world = World(NEAR, scheme=CachingScheme.GC, explicit_update_portion=0.1)
    client = world.clients[0]
    client._peer_history = [7]
    assert client._take_history_portion() == [7]


def test_membership_add_triggers_signature_collection():
    world = World(NEAR, scheme=CachingScheme.GC)
    client = world.clients[0]
    world.give_item(1, item=9)
    client._apply_membership_changes({1}, set())
    world.env.run(until=5.0)
    assert client.signatures.likely_cached_by_members(9)
    assert client.signatures.outstanding == set()


def test_membership_departure_recollects_from_remaining():
    world = World(
        [(0.0, 0.0), (30.0, 0.0), (0.0, 30.0)], scheme=CachingScheme.GC
    )
    client = world.clients[0]
    world.give_item(1, item=9)
    world.give_item(2, item=11)
    client._apply_membership_changes({1, 2}, set())
    world.env.run(until=5.0)
    assert client.signatures.likely_cached_by_members(9)
    # Member 2 departs: the vector resets and is recollected from member 1.
    client._apply_membership_changes(set(), {2})
    world.env.run(until=10.0)
    assert client.signatures.likely_cached_by_members(9)
    assert not client.signatures.likely_cached_by_members(11)


def test_outstanding_peer_request_triggers_sig_request():
    world = World(NEAR, scheme=CachingScheme.GC)
    listener, talker = world.clients
    world.give_item(talker.index, item=9)
    listener.signatures.members.add(talker.index)
    listener.signatures.outstanding.add(talker.index)
    # The talker broadcasts a search; the listener hears a message from an
    # OutstandSigList peer and must fetch its signature.
    world.config.signature_filtering = False
    world.access(talker.index, 42)
    world.env.run(until=world.env.now + 10.0)
    assert listener.signatures.outstanding == set()
    assert listener.signatures.likely_cached_by_members(9)


def test_disconnected_client_unreachable_for_search():
    from repro.core.metrics import RequestOutcome

    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(1, item=7)
    world.network.set_connected(1, False)
    world.clients[1].connected = False
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1


def test_simulation_warmup_respects_min_time():
    config = SimulationConfig(
        scheme=CachingScheme.LC,
        n_clients=4,
        n_data=100,
        access_range=20,
        cache_size=3,  # fills almost immediately
        warmup_min_time=120.0,
        warmup_max_time=200.0,
        ndp_enabled=False,
        measure_requests=2,
    )
    sim = Simulation(config)
    end_of_warmup = sim.warm_up()
    assert end_of_warmup >= 120.0


def test_simulation_warmup_gives_up_at_cap():
    config = SimulationConfig(
        scheme=CachingScheme.LC,
        n_clients=4,
        n_data=100,
        access_range=20,
        cache_size=50,  # larger than the access range: never fills
        warmup_min_time=0.0,
        warmup_max_time=60.0,
        ndp_enabled=False,
        measure_requests=2,
    )
    sim = Simulation(config)
    end_of_warmup = sim.warm_up()
    assert 60.0 <= end_of_warmup < 80.0
    assert not sim.caches_full()


def test_simulation_hard_stop_at_max_sim_time():
    config = SimulationConfig(
        scheme=CachingScheme.LC,
        n_clients=3,
        n_data=100,
        access_range=20,
        cache_size=3,
        warmup_min_time=0.0,
        warmup_max_time=30.0,
        ndp_enabled=False,
        measure_requests=100_000,  # unreachable
        max_sim_time=100.0,
    )
    results = Simulation(config).run()
    assert results.sim_time <= 110.0
    assert results.requests > 0
