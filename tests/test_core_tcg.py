"""Tests for TCG discovery (Algorithms 1-3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tcg import TCGManager


def manager(n=4, n_data=100, delta=50.0, sim=0.5, omega=0.5):
    return TCGManager(n, n_data, delta, sim, omega)


def test_initial_state_no_groups():
    m = manager()
    assert m.tcg_of(0) == set()
    assert math.isinf(m.weighted_distance(0, 1))
    assert m.similarity(0, 1) == 0.0


def test_first_location_pair_sets_distance_directly():
    m = manager()
    m.record_location(0, (0.0, 0.0))
    m.record_location(1, (30.0, 40.0))
    assert m.weighted_distance(0, 1) == pytest.approx(50.0)
    assert m.weighted_distance(1, 0) == pytest.approx(50.0)


def test_ewma_distance_blending():
    m = manager(omega=0.5)
    m.record_location(0, (0.0, 0.0))
    m.record_location(1, (100.0, 0.0))  # initial 100
    m.record_location(0, (60.0, 0.0))  # new distance 40 -> 0.5*40 + 0.5*100 = 70
    assert m.weighted_distance(0, 1) == pytest.approx(70.0)


def test_omega_one_tracks_latest_distance_only():
    m = manager(omega=1.0)
    m.record_location(0, (0.0, 0.0))
    m.record_location(1, (100.0, 0.0))
    m.record_location(0, (90.0, 0.0))
    assert m.weighted_distance(0, 1) == pytest.approx(10.0)


def test_similarity_identical_patterns():
    m = manager()
    for item in (1, 2, 3):
        m.record_access(0, item)
        m.record_access(1, item)
    assert m.similarity(0, 1) == pytest.approx(1.0)


def test_similarity_disjoint_patterns_zero():
    m = manager()
    m.record_access(0, 1)
    m.record_access(1, 2)
    assert m.similarity(0, 1) == 0.0


def test_similarity_self_is_one():
    m = manager()
    assert m.similarity(2, 2) == 1.0


def test_similarity_symmetric_and_bounded():
    m = manager()
    rng = np.random.default_rng(0)
    for _ in range(200):
        m.record_access(int(rng.integers(0, 4)), int(rng.integers(0, 100)))
    for i in range(4):
        for j in range(4):
            assert m.similarity(i, j) == pytest.approx(m.similarity(j, i))
            assert -1e-9 <= m.similarity(i, j) <= 1.0 + 1e-9


def test_incremental_similarity_matches_direct_cosine():
    m = manager(n=3, n_data=20)
    rng = np.random.default_rng(1)
    for _ in range(300):
        m.record_access(int(rng.integers(0, 3)), int(rng.integers(0, 20)))
    counts = m.access_counts
    for i in range(3):
        for j in range(i + 1, 3):
            direct = float(
                counts[i] @ counts[j]
                / (np.linalg.norm(counts[i]) * np.linalg.norm(counts[j]))
            )
            assert m.similarity(i, j) == pytest.approx(direct, rel=1e-9)


def test_membership_requires_both_conditions():
    m = manager(delta=50.0, sim=0.5)
    # Close but dissimilar.
    m.record_location(0, (0.0, 0.0))
    m.record_location(1, (10.0, 0.0))
    m.record_access(0, 1)
    m.record_access(1, 2)
    assert m.tcg_of(0) == set()
    # Now make them similar -> pair forms.
    for _ in range(5):
        m.record_access(0, 3)
        m.record_access(1, 3)
    assert 1 in m.tcg_of(0)
    assert 0 in m.tcg_of(1)  # symmetric


def test_membership_breaks_when_distance_grows():
    m = manager(delta=50.0, sim=0.5, omega=1.0)
    m.record_location(0, (0.0, 0.0))
    m.record_location(1, (10.0, 0.0))
    for _ in range(3):
        m.record_access(0, 7)
        m.record_access(1, 7)
    assert 1 in m.tcg_of(0)
    m.record_location(1, (500.0, 0.0))
    assert 1 not in m.tcg_of(0)
    assert 0 not in m.tcg_of(1)


def test_no_membership_without_location():
    m = manager()
    for _ in range(3):
        m.record_access(0, 7)
        m.record_access(1, 7)
    assert m.tcg_of(0) == set()  # similarity alone is not enough


def test_drain_changes_delivers_asynchronously():
    m = manager(delta=50.0, sim=0.4)
    m.record_location(0, (0.0, 0.0))
    m.record_location(1, (5.0, 0.0))
    m.record_access(0, 1)
    m.record_access(1, 1)
    added, removed = m.drain_changes(0)
    assert added == {1}
    assert removed == set()
    # A second drain with no changes is empty.
    assert m.drain_changes(0) == (set(), set())
    # Break the pair; the removal is announced on next contact.
    m.record_location(1, (500.0, 0.0))
    m.record_location(1, (500.0, 0.0))  # EWMA needs two reports at ω=0.5
    added, removed = m.drain_changes(0)
    assert removed == {1}


def test_full_view_marks_announced():
    m = manager(delta=50.0, sim=0.4)
    m.record_location(0, (0.0, 0.0))
    m.record_location(1, (5.0, 0.0))
    m.record_access(0, 1)
    m.record_access(1, 1)
    assert m.full_view(0) == {1}
    assert m.drain_changes(0) == (set(), set())


def test_record_access_count_batch():
    m = manager()
    m.record_access(0, 5, count=4)
    m.record_access(1, 5, count=4)
    assert m.similarity(0, 1) == pytest.approx(1.0)
    assert m.access_counts[0, 5] == 4


def test_validation():
    with pytest.raises(ValueError):
        TCGManager(0, 10, 1.0, 0.5, 0.5)
    with pytest.raises(ValueError):
        TCGManager(2, 10, -1.0, 0.5, 0.5)
    with pytest.raises(ValueError):
        TCGManager(2, 10, 1.0, 2.0, 0.5)
    with pytest.raises(ValueError):
        TCGManager(2, 10, 1.0, 0.5, 2.0)
    m = manager()
    with pytest.raises(ValueError):
        m.record_access(0, 1, count=0)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 9)), max_size=120))
@settings(max_examples=40)
def test_member_matrix_always_symmetric_no_self(accesses):
    m = manager(n=4, n_data=10, delta=1000.0, sim=0.3)
    rng = np.random.default_rng(2)
    for index, (client, item) in enumerate(accesses):
        if index % 5 == 0:
            m.record_location(client, tuple(rng.uniform(0, 100, size=2)))
        m.record_access(client, item)
    assert np.array_equal(m.member, m.member.T)
    assert not m.member.diagonal().any()
