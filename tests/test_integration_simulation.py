"""End-to-end integration tests over the full simulation.

Small populations and short windows keep these fast (~seconds each) while
still exercising every protocol path: COCA searches, GroCoCa signatures,
TCG discovery, admission/replacement, consistency and disconnection.
"""


import pytest

from repro import CachingScheme, SimulationConfig, run_simulation
from repro.core.simulation import Simulation, compare_schemes


def small_config(**overrides):
    base = dict(
        scheme=CachingScheme.GC,
        n_clients=12,
        n_data=400,
        access_range=80,
        cache_size=20,
        group_size=4,
        measure_requests=40,
        warmup_min_time=120.0,
        warmup_max_time=150.0,
        ndp_enabled=False,
        seed=7,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def outcome_sum_is_total(results):
    return (
        results.local_hits
        + results.global_hits
        + results.server_requests
        + results.failures
        == results.requests
    )


def test_lc_runs_and_never_uses_peers():
    results = run_simulation(small_config(scheme=CachingScheme.LC))
    assert results.requests >= 12 * 40
    assert results.global_hits == 0
    assert results.peer_searches == 0
    assert results.power_data == 0.0  # no P2P traffic at all
    assert results.power_signature == 0.0
    assert outcome_sum_is_total(results)


def test_cc_runs_and_gets_global_hits():
    results = run_simulation(small_config(scheme=CachingScheme.CC))
    assert results.global_hits > 0
    assert results.peer_searches > 0
    assert results.bypassed_searches == 0  # no signature filter in COCA
    assert results.power_data > 0
    assert results.power_signature == 0.0
    assert outcome_sum_is_total(results)


def test_gc_runs_with_tcg_hits_and_signature_power():
    results = run_simulation(small_config())
    assert results.global_hits > 0
    assert results.global_hits_tcg > 0
    assert results.power_signature > 0
    assert results.bypassed_searches > 0  # the filter does bypass something
    assert outcome_sum_is_total(results)


def test_scheme_ordering_on_server_requests():
    """The paper's headline: cooperation cuts server requests (GC <= CC < LC)."""
    outcomes = compare_schemes(small_config(measure_requests=60))
    assert outcomes["CC"].server_request_ratio < outcomes["LC"].server_request_ratio
    assert (
        outcomes["GC"].server_request_ratio
        < outcomes["LC"].server_request_ratio
    )


def test_same_seed_reproducible():
    a = run_simulation(small_config())
    b = run_simulation(small_config())
    assert a.requests == b.requests
    assert a.global_hits == b.global_hits
    assert a.access_latency == pytest.approx(b.access_latency)
    assert a.power_data == pytest.approx(b.power_data)


def test_different_seed_differs():
    a = run_simulation(small_config())
    b = run_simulation(small_config(seed=8))
    assert (a.global_hits, a.server_requests) != (b.global_hits, b.server_requests)


def test_caches_never_exceed_capacity():
    sim = Simulation(small_config())
    sim.run()
    for client in sim.clients:
        assert len(client.cache) <= sim.config.cache_size


def test_gc_own_signature_consistent_with_cache():
    """Every cached item must be present in the client's own signature."""
    sim = Simulation(small_config())
    sim.run()
    for client in sim.clients:
        for item in client.cache.items():
            assert client.signatures.own.might_contain(item)


def test_data_updates_cause_validations_and_refreshes():
    results = run_simulation(
        small_config(data_update_rate=2.0, measure_requests=60)
    )
    assert results.validations > 0
    assert results.validation_refreshes > 0
    assert outcome_sum_is_total(results)


def test_no_updates_no_validations():
    results = run_simulation(small_config(data_update_rate=0.0))
    assert results.validations == 0


def test_disconnection_cycles_run():
    sim = Simulation(
        small_config(p_disc=0.2, disc_min=2.0, disc_max=5.0, measure_requests=50)
    )
    results = sim.run()
    assert sum(client.disconnections for client in sim.clients) > 0
    assert sim.server.membership_syncs > 0  # reconnection protocol ran
    assert outcome_sum_is_total(results)


def test_ndp_enabled_run_charges_beacon_power():
    results = run_simulation(
        small_config(ndp_enabled=True, measure_requests=20, warmup_min_time=60.0)
    )
    assert results.power_beacon > 0


def test_group_size_one_still_runs():
    results = run_simulation(small_config(group_size=1, measure_requests=30))
    assert results.requests >= 12 * 30
    assert outcome_sum_is_total(results)


def test_hop_dist_one_limits_search_depth():
    results = run_simulation(
        small_config(scheme=CachingScheme.CC, hop_dist=1, measure_requests=30)
    )
    assert results.requests > 0
    assert outcome_sum_is_total(results)


def test_latencies_positive_and_finite():
    results = run_simulation(small_config())
    assert 0.0 <= results.access_latency < 10.0
    assert results.measured_time > 0


def test_explicit_updates_reach_server():
    sim = Simulation(small_config(explicit_update_period=10.0))
    sim.run()
    assert sim.server.explicit_updates > 0


def test_ablation_flags_disable_machinery():
    config = small_config(
        admission_control=False,
        cooperative_replacement=False,
        signature_filtering=False,
    )
    sim = Simulation(config)
    results = sim.run()
    assert results.bypassed_searches == 0  # filter off -> nothing bypassed
    for client in sim.clients:
        assert not client.admission.enabled
        assert not client.replacement.enabled
    assert outcome_sum_is_total(results)
