"""Differential pin: the registry path vs the legacy demand path.

``workload=""`` and ``workload="stationary-zipf"`` must be *the same
process*, bit for bit: same Results, same golden-trace fixtures, with no
re-record.  The committed goldens were recorded before the workload
registry existed, so replaying them here under an explicit
``workload="stationary-zipf"`` proves the refactor moved the legacy
draw chain without disturbing a single draw.

The flip side: a genuinely different engine (``flash-crowd``) must
visibly diverge on the same seed — otherwise this test file would pass
vacuously.
"""

import json

import pytest

from repro.check.golden import (
    GOLDEN_CASES,
    default_fixtures_dir,
    diff_fixture,
    fixture_results,
    results_to_dict,
)
from repro.core.config import SimulationConfig
from repro.core.simulation import run_simulation

SMALL = SimulationConfig(
    n_clients=6,
    n_data=120,
    access_range=30,
    cache_size=6,
    group_size=3,
    measure_requests=5,
    warmup_min_time=20.0,
    warmup_max_time=40.0,
    max_sim_time=400.0,
    ndp_enabled=False,
    seed=11,
)


def test_empty_workload_equals_stationary_zipf_bitwise():
    legacy = results_to_dict(run_simulation(SMALL))
    registry = results_to_dict(
        run_simulation(SMALL.replace(workload="stationary-zipf"))
    )
    assert legacy == registry


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_fixtures_replay_under_explicit_stationary_zipf(name):
    path = default_fixtures_dir() / f"{name}.json"
    with path.open("r", encoding="utf-8") as handle:
        fixture = json.load(handle)
    config = SimulationConfig.from_dict(fixture["config"])
    assert config.workload == ""  # recorded before the registry existed
    replayed = results_to_dict(
        run_simulation(config.replace(workload="stationary-zipf"))
    )
    diffs = diff_fixture(fixture_results(fixture), replayed)
    assert diffs == [], f"{name}: {diffs[:5]}"


def test_flash_crowd_diverges_from_the_stationary_process():
    stationary = results_to_dict(run_simulation(SMALL))
    crowd = results_to_dict(
        run_simulation(SMALL.replace(workload="flash-crowd"))
    )
    assert stationary != crowd


def test_workload_field_does_not_leak_into_results():
    # Results carry no workload-dependent *shape*: both runs expose the
    # same metric fields, so sweep tables mix workloads freely.
    stationary = results_to_dict(run_simulation(SMALL))
    ycsb = results_to_dict(run_simulation(SMALL.replace(workload="ycsb")))
    assert set(stationary) == set(ycsb)
